//! Flat Recursive-Doubling Allgather.
//!
//! `log₂ N` steps; in step `k`, rank `r` exchanges its entire gathered
//! region (2ᵏ blocks) with partner `r XOR 2ᵏ`, so the transferred size
//! doubles every step (Section 2.2). Power-of-two rank counts only — the
//! paper notes non-powers need extra steps; callers fall back to Bruck or
//! Ring (as the library surrogates do).

use mha_sched::{ProcGrid, RankId};

use crate::ctx::{BuildError, Built, Ctx};

/// Builds a flat Recursive-Doubling Allgather.
///
/// # Errors
///
/// [`BuildError::RequiresPowerOfTwo`] unless `grid.nranks()` is a power of
/// two.
pub fn build_recursive_doubling(grid: ProcGrid, msg: usize) -> Result<Built, BuildError> {
    let r = grid.nranks();
    if !r.is_power_of_two() {
        return Err(BuildError::RequiresPowerOfTwo {
            what: "ranks",
            got: r,
        });
    }
    let mut ctx = Ctx::new(grid, msg, "flat-recursive-doubling");
    if ctx.is_degenerate() {
        return Ok(ctx.finish_degenerate());
    }
    emit_recursive_doubling(&mut ctx);
    Ok(ctx.finish())
}

/// Emits the RD exchange into an existing context. The caller has already
/// checked the power-of-two precondition and non-degeneracy.
pub(crate) fn emit_recursive_doubling(ctx: &mut Ctx) {
    let r = ctx.grid().nranks();
    let msg = ctx.msg;
    ctx.self_copies_all(0);
    let steps = r.trailing_zeros();
    for k in 0..steps {
        let dist = 1u32 << k;
        // Build both directions of every pairwise exchange, reading
        // cursors (= state after step k−1) before advancing anyone.
        let mut new_ops = Vec::with_capacity(r as usize);
        for me in 0..r {
            let partner = me ^ dist;
            let src_base = partner & !(dist - 1);
            let (src_r, dst_r) = (RankId(partner), RankId(me));
            let ch = ctx.channel_between(src_r, dst_r);
            // The sendrecv blocks both sides: depend on both cursors.
            let deps = {
                let mut d = ctx.cur.deps_of(dst_r);
                d.extend(ctx.cur.deps_of(src_r));
                d
            };
            let t = ctx.b.transfer(
                src_r,
                dst_r,
                ctx.recv_block(src_r, src_base),
                ctx.recv_block(dst_r, src_base),
                dist as usize * msg,
                ch,
                &deps,
                k + 1,
            );
            new_ops.push(t);
        }
        for me in 0..r {
            ctx.cur.advance(RankId(me), new_ops[me as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn rd_is_correct_for_powers_of_two() {
        for (nodes, ppn) in [(1, 2), (1, 8), (2, 2), (2, 8), (4, 4), (1, 1)] {
            let built = build_recursive_doubling(ProcGrid::new(nodes, ppn), 12).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn rd_rejects_non_powers_of_two() {
        let err = build_recursive_doubling(ProcGrid::new(1, 6), 8).unwrap_err();
        assert_eq!(
            err,
            BuildError::RequiresPowerOfTwo {
                what: "ranks",
                got: 6
            }
        );
    }

    #[test]
    fn rd_takes_log2_steps() {
        let built = build_recursive_doubling(ProcGrid::new(2, 8), 8).unwrap();
        // self-copy step + log2(16) = 4 exchange steps.
        assert_eq!(built.sched.stats().steps, 5);
    }

    #[test]
    fn rd_message_sizes_double_per_step() {
        let built = build_recursive_doubling(ProcGrid::new(1, 8), 10).unwrap();
        for op in built.sched.ops() {
            if let mha_sched::OpKind::Transfer { len, .. } = op.kind {
                assert_eq!(len, 10 << (op.step - 1));
            }
        }
    }

    #[test]
    fn rd_moves_same_total_bytes_as_ring() {
        // Both are bandwidth-optimal: (N-1) * msg received per rank.
        let grid = ProcGrid::new(2, 4);
        let rd = build_recursive_doubling(grid, 8).unwrap();
        let ring = crate::flat::build_ring(grid, 8);
        let rd_bytes = rd.sched.stats().cma_bytes + rd.sched.stats().rail_bytes;
        let ring_bytes = ring.sched.stats().cma_bytes + ring.sched.stats().rail_bytes;
        assert_eq!(rd_bytes, ring_bytes);
    }
}
