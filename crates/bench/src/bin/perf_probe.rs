//! Quick performance probe: full-scale flat ring at 1024 ranks.
use std::time::Instant;

fn main() {
    mha_bench::apply_check_flag();
    let spec = mha_simnet::ClusterSpec::thor();
    let sim = mha_simnet::Simulator::new(spec).unwrap();
    for (nodes, ppn, msg) in [(8u32, 32u32, 64 * 1024usize), (32, 32, 64 * 1024)] {
        let grid = mha_sched::ProcGrid::new(nodes, ppn);
        let t0 = Instant::now();
        let built = mha_collectives::AllgatherAlgo::Ring
            .build(grid, msg, sim.spec())
            .unwrap();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        let res = sim.run(&built.sched).unwrap();
        println!(
            "{nodes}x{ppn} msg={msg}: ops={} build={:?} sim={:?} events={} latency={:.0}us",
            built.sched.ops().len(),
            t_build,
            t0.elapsed(),
            res.events,
            res.latency_us()
        );
    }
}
