//! Worker-count and cache-state independence of the campaign runner.
//!
//! Every golden paper-figure workload (the same 14 constants as the root
//! `golden_latencies` suite) goes through [`run_campaign`] at 1, 2 and 8
//! workers, cold- and warm-cache, and must land on the *bit-identical*
//! makespan the serial engine produces — the campaign pool is a pure
//! scheduling layer with zero numeric surface.

use mha_bench::campaign::{
    run_campaign, run_campaign_with, CampaignConfig, CampaignPoint, ConfigKey, ScheduleCache,
};
use mha_collectives::mha::{InterAlgo, MhaInterConfig, Offload};
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

struct Workload {
    name: &'static str,
    golden: f64,
    grid: ProcGrid,
    msg: usize,
    algo: AllgatherAlgo,
}

/// The `golden_dump` workload list with its captured constants.
fn workloads() -> Vec<Workload> {
    let auto_cfg = |inter| MhaInterConfig {
        inter,
        offload: Offload::Auto,
        overlap: true,
    };
    let w = |name, bits, grid, msg, algo| Workload {
        name,
        golden: f64::from_bits(bits),
        grid,
        msg,
        algo,
    };
    vec![
        w(
            "fig02/ring_2x2_1M",
            0x3f3834699899a5d2,
            ProcGrid::new(2, 2),
            1 << 20,
            AllgatherAlgo::Ring,
        ),
        w(
            "fig08/ring_16x32_4096",
            0x3f5c48ef52b1f2a9,
            ProcGrid::new(16, 32),
            4096,
            AllgatherAlgo::MhaInter(auto_cfg(InterAlgo::Ring)),
        ),
        w(
            "fig08/ring_16x32_65536",
            0x3f9bcd308c4d7c52,
            ProcGrid::new(16, 32),
            64 * 1024,
            AllgatherAlgo::MhaInter(auto_cfg(InterAlgo::Ring)),
        ),
        w(
            "fig08/rd_16x32_4096",
            0x3f5d08bd5a0dc992,
            ProcGrid::new(16, 32),
            4096,
            AllgatherAlgo::MhaInter(auto_cfg(InterAlgo::RecursiveDoubling)),
        ),
        w(
            "fig08/rd_16x32_65536",
            0x3f9c98ec44950569,
            ProcGrid::new(16, 32),
            64 * 1024,
            AllgatherAlgo::MhaInter(auto_cfg(InterAlgo::RecursiveDoubling)),
        ),
        w(
            "fig12/ring_8x32_4096",
            0x3f5ca8fab664b88f,
            ProcGrid::new(8, 32),
            4096,
            AllgatherAlgo::Ring,
        ),
        w(
            "fig12/bruck_8x32_4096",
            0x3f61a542613c5e41,
            ProcGrid::new(8, 32),
            4096,
            AllgatherAlgo::Bruck,
        ),
        w(
            "fig12/mha_8x32_4096",
            0x3f4e4ff3af34a934,
            ProcGrid::new(8, 32),
            4096,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ),
        w(
            "fig11/mha_intra_1x16_262144",
            0x3f67d19a32d7357b,
            ProcGrid::single_node(16),
            256 * 1024,
            AllgatherAlgo::MhaIntra {
                offload: Offload::Auto,
            },
        ),
        w(
            "fig11/mha_intra_1x16_4194304",
            0x3fa6180840780799,
            ProcGrid::single_node(16),
            4 << 20,
            AllgatherAlgo::MhaIntra {
                offload: Offload::Auto,
            },
        ),
        w(
            "fig13/ring_16x32_16384",
            0x3f8a2cb47614aa3e,
            ProcGrid::new(16, 32),
            16 * 1024,
            AllgatherAlgo::Ring,
        ),
        w(
            "fig13/mha_16x32_16384",
            0x3f7bffc5daeef453,
            ProcGrid::new(16, 32),
            16 * 1024,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ),
        w(
            "fig14/mha_32x32_4096",
            0x3f6b456d24709764,
            ProcGrid::new(32, 32),
            4096,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ),
        w(
            "fig14/mha_32x32_65536",
            0x3faafe1dd5f3f5e9,
            ProcGrid::new(32, 32),
            64 * 1024,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ),
    ]
}

fn points(spec: &ClusterSpec) -> Vec<CampaignPoint> {
    workloads()
        .into_iter()
        .map(|w| {
            let spec2 = spec.clone();
            CampaignPoint::sim(
                w.name,
                ConfigKey::new(format!("golden/{}", w.name), w.grid, w.msg, spec),
                spec.clone(),
                move || {
                    w.algo
                        .build(w.grid, w.msg, &spec2)
                        .map(|b| b.sched)
                        .map_err(|e| format!("{e:?}"))
                },
            )
        })
        .collect()
}

fn assert_report_matches_goldens(report: &mha_bench::campaign::CampaignReport, tag: &str) {
    for (i, w) in workloads().iter().enumerate() {
        let got = report.makespan(i);
        assert_eq!(
            got.to_bits(),
            w.golden.to_bits(),
            "[{tag}] {}: got {:.9} us (0x{:016x}), golden {:.9} us (0x{:016x})",
            w.name,
            got * 1e6,
            got.to_bits(),
            w.golden * 1e6,
            w.golden.to_bits()
        );
    }
}

#[test]
fn golden_workloads_are_bit_identical_through_every_pool_width() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();

    // The serial reference: direct build + simulate, no campaign involved.
    for w in workloads() {
        let built = w.algo.build(w.grid, w.msg, &spec).unwrap();
        let direct = sim.run(&built.sched).unwrap().makespan;
        assert_eq!(
            direct.to_bits(),
            w.golden.to_bits(),
            "[direct] {}: serial engine drifted off the golden constant",
            w.name
        );
    }

    for workers in [1usize, 2, 8] {
        let cfg = CampaignConfig::default().with_workers(workers);
        let report = run_campaign(&points(&spec), &cfg).unwrap();
        assert_report_matches_goldens(&report, &format!("workers={workers}"));
    }
}

#[test]
fn golden_workloads_are_bit_identical_cold_and_warm() {
    let spec = ClusterSpec::thor();
    let cfg = CampaignConfig::default().with_workers(4);
    let cache = ScheduleCache::new(true);

    let cold = run_campaign_with(&points(&spec), &cfg, &cache).unwrap();
    assert_report_matches_goldens(&cold, "cold");
    assert_eq!(cold.cache_misses, workloads().len() as u64);

    // Same cache, second sweep: every schedule is a hit, every makespan
    // still lands on the golden bits.
    let warm = run_campaign_with(&points(&spec), &cfg, &cache).unwrap();
    assert_report_matches_goldens(&warm, "warm");
    assert_eq!(warm.cache_misses, cold.cache_misses);
    assert_eq!(
        warm.cache_hits,
        cold.cache_hits + workloads().len() as u64,
        "warm sweep should have hit the cache once per workload"
    );
}

#[test]
fn cache_off_matches_cache_on() {
    let spec = ClusterSpec::thor();
    let on = run_campaign(&points(&spec), &CampaignConfig::default().with_cache(true)).unwrap();
    let off = run_campaign(&points(&spec), &CampaignConfig::default().with_cache(false)).unwrap();
    for i in 0..workloads().len() {
        assert_eq!(on.makespan(i).to_bits(), off.makespan(i).to_bits());
    }
    // A disabled cache never hits — every lookup builds (and counts as a
    // miss).
    assert_eq!(off.cache_hits, 0);
    assert_eq!(off.cache_misses, workloads().len() as u64);
}
