//! Arena-reset regression: replaying one frozen schedule through a single
//! [`EngineArena`] must be a pure reset — every repetition lands on the
//! same makespan bits as a fresh-state run and passes the full invariant
//! audit. This is the property the campaign runner's per-worker arenas
//! lean on.

use mha_sched::{Channel, InvariantProbe, Loc, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::{ClusterSpec, EngineArena, Simulator};

/// A small but non-trivial schedule: a 4-rank inter-node ring step with a
/// dependent intra-node copy fan-out, exercising rails, CMA and deps.
fn ring_step_schedule(msg: usize) -> mha_sched::FrozenSchedule {
    let grid = ProcGrid::new(2, 2);
    let mut b = ScheduleBuilder::new(grid, "arena-reset");
    for node in 0..2u32 {
        let src = RankId(node * 2);
        let dst = RankId(((node + 1) % 2) * 2);
        let s = b.private_buf(src, msg, "s");
        let d = b.private_buf(dst, msg, "d");
        let t = b.transfer(
            src,
            dst,
            Loc::new(s, 0),
            Loc::new(d, 0),
            msg,
            Channel::AllRails,
            &[],
            0,
        );
        let leader = RankId(((node + 1) % 2) * 2);
        let peer = RankId(((node + 1) % 2) * 2 + 1);
        let p = b.private_buf(peer, msg, "p");
        b.transfer(
            leader,
            peer,
            Loc::new(d, 0),
            Loc::new(p, 0),
            msg,
            Channel::Cma,
            &[t],
            1,
        );
    }
    b.finish().freeze()
}

#[test]
fn a_hundred_replays_through_one_arena_are_bit_identical_and_clean() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec).unwrap();
    let sch = ring_step_schedule(256 * 1024);

    // Fresh-state reference.
    let reference = sim.run(&sch).unwrap().makespan;

    let mut arena = EngineArena::new();
    for rep in 0..100 {
        let mut audit = InvariantProbe::new();
        let r = sim.run_probed_in(&sch, &mut audit, &mut arena).unwrap();
        audit.assert_clean();
        assert_eq!(
            r.makespan.to_bits(),
            reference.to_bits(),
            "rep {rep}: arena replay drifted off the fresh-state makespan"
        );
    }
}

#[test]
fn one_arena_serves_different_schedules_and_clusters() {
    // The arena revalidates its cached resource map against (grid, spec);
    // interleaving two schedules and two cluster models through one arena
    // must still match fresh-state runs bit-for-bit.
    let thor = Simulator::new(ClusterSpec::thor()).unwrap();
    let single = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let small = ring_step_schedule(4096);
    let big = ring_step_schedule(1 << 20);

    let fresh: Vec<f64> = [
        thor.run(&small).unwrap().makespan,
        thor.run(&big).unwrap().makespan,
        single.run(&small).unwrap().makespan,
        single.run(&big).unwrap().makespan,
    ]
    .to_vec();

    let mut arena = EngineArena::new();
    for round in 0..5 {
        let replayed = [
            thor.run_in(&small, &mut arena).unwrap().makespan,
            thor.run_in(&big, &mut arena).unwrap().makespan,
            single.run_in(&small, &mut arena).unwrap().makespan,
            single.run_in(&big, &mut arena).unwrap().makespan,
        ];
        for (i, (f, r)) in fresh.iter().zip(&replayed).enumerate() {
            assert_eq!(
                f.to_bits(),
                r.to_bits(),
                "round {round}, workload {i}: interleaved arena reuse drifted"
            );
        }
    }
}
