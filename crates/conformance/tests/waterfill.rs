//! The waterfill-equivalence acceptance bar: ≥ 100 random schedules —
//! a third of them under random rail-fault timelines — simulated by both
//! the incremental and the scratch engine with zero bitwise divergence.

use mha_conformance::{run_waterfill_oracle, WaterfillOracleConfig};

#[test]
fn incremental_engine_matches_scratch_on_random_schedules() {
    let cfg = WaterfillOracleConfig::from_env();
    assert!(cfg.cases >= 100, "acceptance bar requires >= 100 cases");
    let report = run_waterfill_oracle(&cfg);
    assert_eq!(report.cases, cfg.cases, "every sampled case must build");
    assert!(
        report.faulted >= cfg.cases / 4,
        "too few faulted cases: {}",
        report.faulted
    );
    assert!(
        report.is_clean(),
        "{} divergence(s):\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n")
    );
}
