//! The tuned-choice acceptance bar: the shipped tuning table serves a
//! correct Allgather for every seeded random query — on-grid and off.

use mha_collectives::TunedTable;
use mha_conformance::{run_tuned_oracle, TunedOracleConfig};

#[test]
fn shipped_table_serves_only_correct_allgathers() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/tuned_thor.mtab");
    let table = TunedTable::load(&path).unwrap_or_else(|e| {
        panic!(
            "shipped table {} unusable ({e}); regenerate with `cargo run --release -p mha-tune --bin mha_tune`",
            path.display()
        )
    });
    let spec = mha_simnet::ClusterSpec::thor();
    let cfg = TunedOracleConfig::from_env();
    assert!(cfg.cases >= 200, "acceptance bar requires >= 200 queries");
    let report = run_tuned_oracle(&table, &spec, &cfg);
    assert_eq!(report.cases, cfg.cases);
    // The query sampler roams off the tuned grid on purpose: both serving
    // regimes must be exercised.
    assert!(report.exact_hits > 0, "no query ever hit the table");
    assert!(report.fallbacks > 0, "no query ever exercised the fallback");
    assert!(
        report.is_clean(),
        "{} incorrect serve(s):\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}
