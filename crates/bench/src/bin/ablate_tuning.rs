//! Ablation: Eq. 1's analytic offload versus the Figure 5 empirical tuner
//! across process counts — quantifying how much the congestion-blind
//! model leaves on the table (the gap that motivates the paper's tuner).

use mha_apps::report::Table;
use mha_collectives::mha::{build_mha_intra, optimal_offload, tune_offload, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let msg = 1 << 20;
    let mut t = Table::new(
        "Ablation: Eq.1 analytic offload vs empirical tuner, 1 MB blocks",
        "processes",
        vec![
            "d_eq1".into(),
            "d_tuned".into(),
            "eq1_us".into(),
            "tuned_us".into(),
            "tuner_gain_pct".into(),
        ],
    );
    for l in [2u32, 4, 8, 16, 32] {
        let grid = ProcGrid::single_node(l);
        let d_eq1 = optimal_offload(&spec, l, msg);
        let (d_tuned, _) = tune_offload(&spec, l, msg).unwrap();
        let eq1 = build_mha_intra(grid, msg, Offload::Fixed(d_eq1), &spec).unwrap();
        let tuned = build_mha_intra(grid, msg, Offload::Fixed(d_tuned), &spec).unwrap();
        let t_eq1 = sim.run(&eq1.sched).unwrap().latency_us();
        let t_tuned = sim.run(&tuned.sched).unwrap().latency_us();
        t.push(
            l.to_string(),
            vec![
                f64::from(d_eq1),
                f64::from(d_tuned),
                t_eq1,
                t_tuned,
                (1.0 - t_tuned / t_eq1) * 100.0,
            ],
        );
    }
    mha_bench::emit(&t, "ablate_tuning");
}
