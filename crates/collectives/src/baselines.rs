//! Library surrogates: the algorithm-selection behaviour of the two MPI
//! implementations the paper compares against (Section 5.1).
//!
//! The real libraries are closed tuning tables over the same algorithm
//! space this crate implements; what determines a collective's *shape* is
//! which algorithm the library picks at each (layout, message size) point.
//! The selection rules below model the publicly documented behaviour:
//!
//! * **HPC-X** (Open MPI's `coll/tuned`): Bruck for small messages,
//!   Recursive Doubling for mid sizes on power-of-two communicators, Ring
//!   for large messages. Flat throughout — no hierarchy, no HCA-aware
//!   collective logic (multi-rail striping happens only at pt2pt level).
//! * **MVAPICH2-X**: Bruck/RD for small messages; the two-level
//!   multi-leader design of Kandalla et al. \[14\] for large messages, with
//!   strictly sequential phases (the behaviour the paper's Section 1.1
//!   attributes to it).
//!
//! See DESIGN.md ("The hardware gate and our substitution") for why this
//! surrogate preserves the comparisons.

use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::algo::AllgatherAlgo;
use crate::allreduce::{build_ring_allreduce, AllgatherPhase};
use crate::ctx::{BuildError, Built};
use crate::mha::Offload;

/// An MPI library whose Allgather behaviour we emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Library {
    /// NVIDIA HPC-X (Open MPI derivative).
    HpcX,
    /// MVAPICH2-X.
    Mvapich2X,
}

impl Library {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Library::HpcX => "HPC-X",
            Library::Mvapich2X => "MVAPICH2-X",
        }
    }

    /// The Allgather algorithm the library would select for this layout
    /// and per-rank message size.
    pub fn select_allgather(&self, grid: ProcGrid, msg: usize) -> AllgatherAlgo {
        let p2_ranks = grid.nranks().is_power_of_two();
        match self {
            Library::HpcX => {
                if msg < 4096 {
                    AllgatherAlgo::Bruck
                } else if msg < 64 * 1024 && p2_ranks {
                    AllgatherAlgo::RecursiveDoubling
                } else {
                    AllgatherAlgo::Ring
                }
            }
            Library::Mvapich2X => {
                if msg < 4096 {
                    if p2_ranks {
                        AllgatherAlgo::RecursiveDoubling
                    } else {
                        AllgatherAlgo::Bruck
                    }
                } else if grid.nodes() > 1 && grid.ppn().is_multiple_of(2) {
                    AllgatherAlgo::MultiLeader { groups: 2 }
                } else if grid.nodes() > 1 {
                    AllgatherAlgo::MultiLeader { groups: 1 }
                } else {
                    AllgatherAlgo::Ring
                }
            }
        }
    }

    /// Builds the library's Allgather for this point.
    pub fn build_allgather(
        &self,
        grid: ProcGrid,
        msg: usize,
        spec: &ClusterSpec,
    ) -> Result<Built, BuildError> {
        self.select_allgather(grid, msg).build(grid, msg, spec)
    }

    /// Builds the library's large-message Allreduce: Ring-Allreduce with a
    /// flat-ring Allgather phase (both libraries behave this way for the
    /// sizes in Figure 15).
    pub fn build_allreduce(
        &self,
        grid: ProcGrid,
        elems: usize,
        spec: &ClusterSpec,
    ) -> Result<Built, BuildError> {
        build_ring_allreduce(grid, elems, AllgatherPhase::FlatRing, spec)
    }
}

/// The paper's proposed configuration at a given point: MHA-intra on one
/// node, tuned MHA-inter across nodes (the tuned Ring/RD choice lives in
/// [`crate::tuning`]).
pub fn mha_default_allgather(grid: ProcGrid) -> AllgatherAlgo {
    if grid.nodes() == 1 {
        AllgatherAlgo::MhaIntra {
            offload: Offload::Auto,
        }
    } else {
        AllgatherAlgo::MhaInter(crate::mha::MhaInterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn hpcx_selection_moves_bruck_rd_ring() {
        let grid = ProcGrid::new(2, 8);
        assert_eq!(
            Library::HpcX.select_allgather(grid, 256),
            AllgatherAlgo::Bruck
        );
        assert_eq!(
            Library::HpcX.select_allgather(grid, 16 * 1024),
            AllgatherAlgo::RecursiveDoubling
        );
        assert_eq!(
            Library::HpcX.select_allgather(grid, 256 * 1024),
            AllgatherAlgo::Ring
        );
        // Non-power-of-two falls back from RD to Ring mid-range.
        let odd = ProcGrid::new(3, 5);
        assert_eq!(
            Library::HpcX.select_allgather(odd, 16 * 1024),
            AllgatherAlgo::Ring
        );
    }

    #[test]
    fn mvapich_uses_multi_leader_for_large_multi_node() {
        let grid = ProcGrid::new(4, 8);
        assert_eq!(
            Library::Mvapich2X.select_allgather(grid, 128 * 1024),
            AllgatherAlgo::MultiLeader { groups: 2 }
        );
        let single = ProcGrid::single_node(8);
        assert_eq!(
            Library::Mvapich2X.select_allgather(single, 128 * 1024),
            AllgatherAlgo::Ring
        );
        let odd_ppn = ProcGrid::new(4, 5);
        assert_eq!(
            Library::Mvapich2X.select_allgather(odd_ppn, 128 * 1024),
            AllgatherAlgo::MultiLeader { groups: 1 }
        );
    }

    #[test]
    fn surrogates_build_correct_schedules_across_the_sweep() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        for lib in [Library::HpcX, Library::Mvapich2X] {
            for msg in [256usize, 4096, 16 * 1024, 256 * 1024] {
                let built = lib.build_allgather(grid, msg, &spec).unwrap();
                assert_allgather_correct(&built);
            }
        }
    }

    #[test]
    fn mha_default_picks_intra_vs_inter_by_layout() {
        assert!(matches!(
            mha_default_allgather(ProcGrid::single_node(8)),
            AllgatherAlgo::MhaIntra { .. }
        ));
        assert!(matches!(
            mha_default_allgather(ProcGrid::new(4, 8)),
            AllgatherAlgo::MhaInter(_)
        ));
    }

    #[test]
    fn library_names_match_paper() {
        assert_eq!(Library::HpcX.name(), "HPC-X");
        assert_eq!(Library::Mvapich2X.name(), "MVAPICH2-X");
    }
}
