//! Crash-path regression pins — the crash analogue of `fault_golden.rs`.
//!
//! One canonical kill-at-op-k/resume run (thor, the default MHA-inter 4×4
//! build at 64 KB, sequential executor killed halfway) is pinned
//! **bit-exactly**: the journal length at the kill, the completed journal's
//! order-sensitive digest, and an FNV-1a hash over every recovered buffer
//! byte. The recovery machinery must stay deterministic; on an intentional
//! schedule or journal change, re-pin from the bits printed by the
//! assertion failure.

use mha::collectives::mha::{build_mha_inter, MhaInterConfig};
use mha::exec::{
    resume_single, run_single, run_single_killed, BufferStore, CompletionJournal, ExecError,
};
use mha::sched::{FrozenSchedule, ProcGrid};
use mha::simnet::ClusterSpec;

/// FNV-1a over every buffer of the store, in buffer-id order.
fn store_hash(sch: &FrozenSchedule, store: &BufferStore) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sch.buffers() {
        for byte in store.read_all(b.id) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[test]
fn canonical_kill_resume_run_is_bit_identical() {
    const WANT_OPS: usize = 124;
    const WANT_KILL: usize = 62;
    const WANT_JOURNAL_DIGEST: u64 = 0x99230d19d7061cc5;
    const WANT_STORE_HASH: u64 = 0x80c8643ed99954a9;

    let spec = ClusterSpec::thor();
    let built = build_mha_inter(
        ProcGrid::new(4, 4),
        64 * 1024,
        MhaInterConfig::default(),
        &spec,
    )
    .unwrap();
    let sch = &built.sched;
    assert_eq!(sch.n_ops(), WANT_OPS, "canonical schedule changed shape");

    let store = BufferStore::new(sch);
    for (rank, &buf) in built.send.iter().enumerate() {
        store.fill(buf, 0, &mha::exec::rank_pattern(rank, built.msg));
    }

    let k = sch.n_ops() / 2;
    assert_eq!(k, WANT_KILL);
    let journal = CompletionJournal::for_schedule(sch);
    match run_single_killed(sch, &store, &journal, k) {
        Err(ExecError::Killed { done, total }) => {
            assert_eq!((done, total), (WANT_KILL, WANT_OPS));
        }
        other => panic!("kill at {k} did not fire: {other:?}"),
    }
    assert_eq!(
        journal.len(),
        WANT_KILL,
        "journal length at the kill drifted"
    );

    resume_single(sch, &store, &journal).unwrap();
    assert!(journal.is_complete());

    // The recovered bytes must equal an unfailed run...
    let ref_store = BufferStore::new(sch);
    for (rank, &buf) in built.send.iter().enumerate() {
        ref_store.fill(buf, 0, &mha::exec::rank_pattern(rank, built.msg));
    }
    run_single(sch, &ref_store).unwrap();
    assert_eq!(
        store_hash(sch, &store),
        store_hash(sch, &ref_store),
        "recovery diverged from the unfailed run"
    );

    // ...and both are pinned bit-exactly against history.
    let got_digest = journal.digest();
    let got_hash = store_hash(sch, &store);
    assert_eq!(
        got_digest, WANT_JOURNAL_DIGEST,
        "journal digest drifted: got 0x{got_digest:016x}, golden 0x{WANT_JOURNAL_DIGEST:016x}"
    );
    assert_eq!(
        got_hash, WANT_STORE_HASH,
        "recovered store hash drifted: got 0x{got_hash:016x}, golden 0x{WANT_STORE_HASH:016x}"
    );
}
