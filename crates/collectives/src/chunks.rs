//! Chunk partitioning math shared by the collective algorithms.

/// Byte bounds `(start, end)` of chunk `i` when `total` bytes are split into
/// `parts` chunks as evenly as possible (the first `total % parts` chunks
/// get one extra byte). Used by reduce-scatter, which must partition an
/// arbitrary vector across all ranks.
pub fn chunk_bounds(total: usize, parts: usize, i: usize) -> (usize, usize) {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(i < parts, "chunk index out of range");
    let base = total / parts;
    let extra = total % parts;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    (start, start + len)
}

/// Length of chunk `i` under [`chunk_bounds`].
pub fn chunk_len(total: usize, parts: usize, i: usize) -> usize {
    let (s, e) = chunk_bounds(total, parts, i);
    e - s
}

/// Aligned variant: bounds in *elements* scaled by `elem` bytes, keeping
/// every chunk boundary on an element boundary (needed when chunks feed
/// typed reductions).
pub fn chunk_bounds_aligned(
    total_elems: usize,
    parts: usize,
    i: usize,
    elem: usize,
) -> (usize, usize) {
    let (s, e) = chunk_bounds(total_elems, parts, i);
    (s * elem, e * elem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        assert_eq!(chunk_bounds(12, 4, 0), (0, 3));
        assert_eq!(chunk_bounds(12, 4, 3), (9, 12));
        assert_eq!(chunk_len(12, 4, 2), 3);
    }

    #[test]
    fn uneven_split_spreads_remainder_to_front() {
        // 10 into 4: 3,3,2,2
        assert_eq!(chunk_bounds(10, 4, 0), (0, 3));
        assert_eq!(chunk_bounds(10, 4, 1), (3, 6));
        assert_eq!(chunk_bounds(10, 4, 2), (6, 8));
        assert_eq!(chunk_bounds(10, 4, 3), (8, 10));
    }

    #[test]
    fn chunks_tile_the_whole_range() {
        for total in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut pos = 0;
                for i in 0..parts {
                    let (s, e) = chunk_bounds(total, parts, i);
                    assert_eq!(s, pos);
                    assert!(e >= s);
                    pos = e;
                }
                assert_eq!(pos, total);
            }
        }
    }

    #[test]
    fn more_parts_than_bytes_yields_empty_tail_chunks() {
        assert_eq!(chunk_bounds(2, 4, 0), (0, 1));
        assert_eq!(chunk_bounds(2, 4, 1), (1, 2));
        assert_eq!(chunk_bounds(2, 4, 2), (2, 2));
        assert_eq!(chunk_len(2, 4, 3), 0);
    }

    #[test]
    fn aligned_bounds_scale_by_element() {
        assert_eq!(chunk_bounds_aligned(10, 4, 0, 4), (0, 12));
        assert_eq!(chunk_bounds_aligned(10, 4, 3, 4), (32, 40));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        chunk_bounds(4, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_rejected() {
        chunk_bounds(4, 2, 2);
    }
}
