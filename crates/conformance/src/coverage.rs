//! Static byte-coverage check for Allgather schedules.
//!
//! MPI_Allgather semantics fix the destination layout exactly: rank `r`'s
//! receive buffer ends up holding `nranks · msg` bytes, block `k` coming
//! from rank `k`, each byte written *exactly once*. Because the schedule IR
//! names every write range explicitly (transfer destinations, copy
//! destinations, reduce accumulators), that can be checked without running
//! anything: the write ranges into each receive buffer must tile
//! `[0, nranks · msg)` with no gap and no overlap — the static complement
//! to [`mha_exec::verify_allgather`]'s dynamic byte comparison, and the
//! check that catches the off-by-one-chunk striping bugs decomposition
//! designs are prone to.

use std::collections::HashMap;

use mha_collectives::Built;
use mha_sched::OpKind;

/// Checks that the write ops into each rank's receive buffer exactly
/// partition it (no byte missed, no byte written twice).
///
/// Only valid for *plain* Allgather schedules ([`Built`] as produced by
/// [`mha_collectives::AllgatherAlgo::build`]); Allreduce schedules
/// legitimately rewrite receive-buffer ranges while reducing.
pub fn check_allgather_coverage(built: &Built) -> Result<(), String> {
    let sch = &built.sched;
    let nranks = sch.grid().nranks() as usize;
    let total = nranks * built.msg;
    let mut recv_rank: HashMap<u32, usize> = HashMap::new();
    for (r, &b) in built.recv.iter().enumerate() {
        recv_rank.insert(b.0, r);
    }

    // Per-rank sorted-by-construction write intervals (ops are scanned in
    // id order; sorting happens below anyway).
    let mut writes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nranks];
    for op in sch.ops() {
        let (dst, len) = match &op.kind {
            OpKind::Transfer { dst, len, .. } => (dst, len),
            OpKind::Copy { dst, len, .. } => (dst, len),
            OpKind::Reduce { acc, len, .. } => (acc, len),
            OpKind::Compute { .. } => continue,
        };
        if let Some(&r) = recv_rank.get(&dst.buf.0) {
            writes[r].push((dst.offset, dst.offset + len));
        }
    }

    for (r, mut iv) in writes.into_iter().enumerate() {
        iv.sort_unstable();
        let mut cursor = 0usize;
        for (lo, hi) in iv {
            match lo.cmp(&cursor) {
                std::cmp::Ordering::Greater => {
                    return Err(format!(
                        "rank {r}: recv bytes [{cursor}, {lo}) never written"
                    ));
                }
                std::cmp::Ordering::Less => {
                    return Err(format!(
                        "rank {r}: recv bytes [{lo}, {}) written more than once",
                        cursor.min(hi)
                    ));
                }
                std::cmp::Ordering::Equal => cursor = hi,
            }
        }
        if cursor != total {
            return Err(format!(
                "rank {r}: recv bytes [{cursor}, {total}) never written"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_collectives::mha::MhaInterConfig;
    use mha_collectives::AllgatherAlgo;
    use mha_sched::ProcGrid;
    use mha_simnet::ClusterSpec;

    #[test]
    fn every_family_partitions_the_recv_buffers() {
        let spec = ClusterSpec::thor();
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::DirectSpread,
            AllgatherAlgo::SingleLeader,
            AllgatherAlgo::MultiLeader { groups: 2 },
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ] {
            let built = algo.build(ProcGrid::new(2, 4), 96, &spec).unwrap();
            check_allgather_coverage(&built).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }

    #[test]
    fn a_gap_is_reported() {
        let spec = ClusterSpec::thor();
        let mut built = AllgatherAlgo::Ring
            .build(ProcGrid::new(2, 2), 64, &spec)
            .unwrap();
        // Lie about the message size: every rank now "misses" bytes.
        built.msg = 128;
        let err = check_allgather_coverage(&built).unwrap_err();
        assert!(err.contains("never written"), "{err}");
    }
}
