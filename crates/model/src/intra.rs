//! The MHA-intra cost model (Section 4.1, Eqs. 1–2).

use crate::params::ModelParams;

/// Eq. 1 — the optimal per-rank offload count:
///
/// ```text
/// T_C(M) · (L − 1 − d) = T_H(M) · L · d
///   ⇒ d = T_C(M) · (L − 1) / (T_H(M) · L + T_C(M))
/// ```
///
/// `congested` selects whether `T_C` includes the memory-congestion factor
/// `b(L)`; the paper's Eq. 1 uses the uncontended value (the gap between
/// the two is why the empirical tuner of Figure 5 exists).
pub fn optimal_offload(p: &ModelParams, l: u32, m: usize, congested: bool) -> u32 {
    if l <= 1 {
        return 0;
    }
    let tc = if congested { p.t_c(m, l) } else { p.t_c1(m) };
    let th = p.t_h(m);
    let d = tc * f64::from(l - 1) / (th * f64::from(l) + tc);
    (d.round() as u32).min(l - 1)
}

/// Eq. 2 — predicted MHA-intra Allgather latency (seconds):
///
/// ```text
/// T = T_L(M) + max{ (L − 1 − d) · T_C(M),  L · d · T_H(M) }
/// ```
///
/// `T_C` carries the congestion factor for `L` concurrent CMA streams;
/// `T_L(M)` is the initial self-copy.
pub fn mha_intra_latency(p: &ModelParams, l: u32, m: usize, d: u32) -> f64 {
    let d = d.min(l.saturating_sub(1));
    if l <= 1 {
        return p.t_l(m);
    }
    let cpu = f64::from(l - 1 - d) * p.t_c(m, l);
    let hca = f64::from(l) * f64::from(d) * p.t_h(m);
    p.t_l(m) + cpu.max(hca)
}

/// Eq. 2 with the Eq. 1 offload plugged in (the headline prediction of
/// Figure 9).
pub fn mha_intra_latency_auto(p: &ModelParams, l: u32, m: usize) -> f64 {
    let d = optimal_offload(p, l, m, false);
    mha_intra_latency(p, l, m, d)
}

/// Plain Direct-Spread prediction (d = 0) — the no-offload baseline.
pub fn direct_spread_latency(p: &ModelParams, l: u32, m: usize) -> f64 {
    mha_intra_latency(p, l, m, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_simnet::ClusterSpec;

    fn p() -> ModelParams {
        ModelParams::from_spec(&ClusterSpec::thor())
    }

    #[test]
    fn eq1_matches_collectives_implementation() {
        // The production Eq. 1 in mha-collectives must agree with the
        // model crate's.
        let spec = ClusterSpec::thor();
        let p = p();
        for l in [2u32, 4, 8, 16] {
            for m in [4096usize, 1 << 20, 4 << 20] {
                assert_eq!(
                    optimal_offload(&p, l, m, false),
                    mha_collectives::mha::optimal_offload(&spec, l, m),
                    "L={l} M={m}"
                );
            }
        }
    }

    #[test]
    fn offload_reduces_predicted_latency_for_large_messages() {
        let p = p();
        let m = 4 << 20;
        for l in [2u32, 4, 8] {
            let base = direct_spread_latency(&p, l, m);
            let opt = mha_intra_latency_auto(&p, l, m);
            assert!(opt < base, "L={l}: {opt} !< {base}");
        }
    }

    #[test]
    fn prediction_is_monotone_in_message_size() {
        let p = p();
        let mut prev = 0.0;
        for m in [64 * 1024, 256 * 1024, 1 << 20, 4 << 20] {
            let t = mha_intra_latency_auto(&p, 8, m);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn over_offloading_hurts() {
        // Figure 5's right side: pushing everything to the HCAs makes the
        // HCA term dominate.
        let p = p();
        let l = 8;
        let m = 1 << 20;
        let d_opt = optimal_offload(&p, l, m, true);
        let balanced = mha_intra_latency(&p, l, m, d_opt);
        let all = mha_intra_latency(&p, l, m, l - 1);
        assert!(all > balanced);
    }

    #[test]
    fn single_rank_costs_one_copy() {
        let p = p();
        assert_eq!(mha_intra_latency(&p, 1, 4096, 0), p.t_l(4096));
    }
}
