//! The fault-oracle acceptance bar: ≥ 100 random fault schedules, zero
//! disagreements — degraded builds stay correct on both executors, faulted
//! simulation passes the invariant audit, and k-failed-rail latency stays
//! within the envelope of the α–β model at H − k rails.

use mha_conformance::{run_fault_oracle, FaultOracleConfig};

#[test]
fn fault_oracle_sweep_has_zero_disagreements() {
    let cfg = FaultOracleConfig::from_env();
    assert!(cfg.cases >= 100, "acceptance bar requires >= 100 cases");
    let report = run_fault_oracle(&cfg);
    assert_eq!(report.cases, cfg.cases);
    assert!(
        report.envelope_checked >= cfg.cases / 4,
        "too few bandwidth-regime cases reached the envelope check: {}",
        report.envelope_checked
    );
    assert!(
        report.is_clean(),
        "{} disagreement(s):\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n")
    );
}
