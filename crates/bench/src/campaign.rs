//! Campaign runner: declarative sweeps → a sharded work queue → a
//! deterministic result set.
//!
//! Every `fig*`/`ablate*` binary used to be a nest of `for` loops calling
//! `Simulator::run` cell by cell. A *campaign* replaces the loops with
//! data: a list of [`CampaignPoint`]s (one per table cell, each either a
//! schedule build + simulation or an arbitrary closure), executed by
//! [`run_campaign`] on a thread pool. Three properties make this more than
//! a parallel `for`:
//!
//! * **Build once, run many** — workers draw frozen schedules from a
//!   shared concurrent [`ScheduleCache`] keyed by [`ConfigKey`], the
//!   build-relevant configuration fingerprint (collective family ×
//!   topology × message size × [`ClusterSpec::digest`] × salt). A
//!   schedule is built and frozen exactly once per distinct key and
//!   `Arc`-shared between workers; per-run engine state lives in each
//!   worker's private [`EngineArena`] and is reset, never rebuilt.
//! * **Worker-count independence** — the simulator is deterministic and
//!   every job writes into its own pre-assigned slot of a lock-free
//!   collector, so the assembled output is *bit-identical* whether the
//!   campaign runs on 1, 2 or 8 workers, with a cold or a warm cache.
//!   `tests/campaign_determinism.rs` holds that bar over the golden
//!   workload set.
//! * **Seed policy** — repetitions are first-class: each `(point, rep)`
//!   job receives a seed derived only from `(campaign seed, point index,
//!   rep)` — never from worker identity or scheduling order — so seeded
//!   [`PointWork::Custom`] closures are reproducible too.
//!
//! Environment knobs: `MHA_CAMPAIGN_WORKERS` (pool size),
//! `MHA_CAMPAIGN_CACHE` (`0`/`false` disables schedule sharing),
//! `MHA_CAMPAIGN_REPS`, `MHA_CAMPAIGN_SEED` — see
//! [`CampaignConfig::from_env`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mha_apps::report::{fmt_bytes, Table};
use mha_apps::Contestant;
use mha_collectives::{AlgoConfig, TunedTable};
use mha_sched::{Fingerprinter, FrozenSchedule, ProcGrid};
use mha_simnet::{ClusterSpec, EngineArena, FaultSpec, Simulator};

/// The build-relevant configuration fingerprint a cached schedule is keyed
/// by. Two campaign points share a cache entry **iff** their keys are
/// structurally equal — the key must therefore cover everything the build
/// depends on: the algorithm family (a free-form string, by convention
/// `"collective/variant"`), the process grid, the message size, the
/// cluster model digest ([`ClusterSpec::digest`]) and a caller-chosen
/// `salt` for any remaining build inputs (offload policy, degraded rail
/// sets, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    /// Algorithm family / variant name.
    pub family: String,
    /// Node count of the process grid.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Message size in bytes (or element count, for non-byte sweeps).
    pub msg: usize,
    /// [`ClusterSpec::digest`] of the cluster the schedule is built for.
    pub spec_digest: u64,
    /// Disambiguates build inputs not covered by the other fields
    /// (defaults to 0; see [`ConfigKey::with_salt`]).
    pub salt: u64,
    /// [`mha_sched::Topology::digest`] of the tree a composed schedule was
    /// built over — shape *and* per-level link parameters. Zero for
    /// grid-keyed builds ([`ConfigKey::new`]), whose shape the
    /// `nodes`/`ppn` fields already pin; set by
    /// [`ConfigKey::for_topology`], so a 3-level and a 2-level build of
    /// the same `nodes × ppn` can never share a cache entry.
    pub topo_digest: u64,
    /// `mha_traffic::placement_digest` of the node subset a
    /// relocated schedule occupies on a shared cluster. Zero for the
    /// ordinary whole-cluster builds; set by [`ConfigKey::with_placement`]
    /// for the traffic layer's cached relocations, so two jobs with the
    /// same [`AlgoConfig`] but different placements never alias.
    pub placement: u64,
}

impl ConfigKey {
    /// A key for `family` on `grid` at `msg` bytes against `spec`, salt 0.
    pub fn new(family: impl Into<String>, grid: ProcGrid, msg: usize, spec: &ClusterSpec) -> Self {
        ConfigKey {
            family: family.into(),
            nodes: grid.nodes(),
            ppn: grid.ppn(),
            msg,
            spec_digest: spec.digest(),
            salt: 0,
            topo_digest: 0,
            placement: 0,
        }
    }

    /// A key for a schedule composed over an explicit topology tree: the
    /// grid fields come from the tree's flattening and `topo_digest` pins
    /// the full tree, so distinct trees (deeper, re-shaped, or re-linked)
    /// never alias even when they flatten to the same grid.
    pub fn for_topology(
        family: impl Into<String>,
        topo: &mha_sched::Topology,
        msg: usize,
        spec: &ClusterSpec,
    ) -> Self {
        let grid = topo.flatten();
        ConfigKey {
            topo_digest: topo.digest(),
            ..Self::new(family, grid, msg, spec)
        }
    }

    /// The key of an [`AlgoConfig`]-dispatched build: family string
    /// `"algo/<family token>"`, salt = [`AlgoConfig::digest`] (covering
    /// every remaining knob — inter/overlap/offload/chunk/stripe/rails),
    /// and the spec digest taken from [`AlgoConfig::effective_spec`] so a
    /// stripe-threshold override re-keys exactly like the build and the
    /// pricing see it. One hash path: the tuning table and the schedule
    /// cache derive from the same config digest.
    pub fn for_algo(cfg: &AlgoConfig, grid: ProcGrid, msg: usize, spec: &ClusterSpec) -> Self {
        ConfigKey {
            spec_digest: cfg.effective_spec(spec).digest(),
            salt: cfg.digest(),
            ..Self::new(format!("algo/{}", cfg.family.token()), grid, msg, spec)
        }
    }

    /// Replaces the salt (builder style).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Replaces the placement digest (builder style) — required whenever
    /// the cached artifact is a schedule *relocated* onto a node subset
    /// of a larger cluster, since `nodes`/`ppn` then describe the job
    /// grid, not where it landed.
    pub fn with_placement(mut self, placement: u64) -> Self {
        self.placement = placement;
        self
    }

    /// A stable 64-bit digest of the key (shard selection, diagnostics).
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.push_str(&self.family)
            .push_u32(self.nodes)
            .push_u32(self.ppn)
            .push_usize(self.msg)
            .push_u64(self.spec_digest)
            .push_u64(self.salt)
            .push_u64(self.topo_digest)
            .push_u64(self.placement);
        fp.finish().0
    }
}

/// Shard count of the [`ScheduleCache`]. Power of two, sized so that even
/// an 8-worker campaign rarely contends on a shard lock.
const CACHE_SHARDS: usize = 16;

/// A concurrent build-once cache of frozen schedules, shared by all
/// campaign workers.
///
/// Sharded: each [`ConfigKey`] hashes (via [`ConfigKey::digest`], stable
/// across processes) to one of [`CACHE_SHARDS`] independently locked maps.
/// A miss builds *while holding the shard lock*, so concurrent workers
/// asking for the same key never build twice — the second worker blocks
/// briefly and then shares the first worker's `Arc`. Hit/miss counters are
/// exact and exposed for the cache-correctness tests.
pub struct ScheduleCache {
    shards: Vec<parking_lot::Mutex<HashMap<ConfigKey, Arc<FrozenSchedule>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("enabled", &self.enabled)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ScheduleCache {
    /// An empty cache; when `enabled` is false every lookup builds fresh
    /// (and counts as a miss), which the determinism tests use to compare
    /// cold vs warm campaigns.
    pub fn new(enabled: bool) -> Self {
        ScheduleCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| parking_lot::Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled,
        }
    }

    /// Returns the schedule for `key`, building (and memoizing) it on the
    /// first request.
    pub fn get_or_build(
        &self,
        key: &ConfigKey,
        build: impl FnOnce() -> Result<FrozenSchedule, String>,
    ) -> Result<Arc<FrozenSchedule>, String> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return build().map(Arc::new);
        }
        let shard = &self.shards[(key.digest() as usize) % CACHE_SHARDS];
        let mut map = shard.lock();
        if let Some(s) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(s));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let s = Arc::new(build()?);
        map.insert(key.clone(), Arc::clone(&s));
        Ok(s)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct schedules held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pool size, cache switch and repetition/seed policy of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads (clamped to ≥ 1; results are independent of this).
    pub workers: usize,
    /// Whether workers share built schedules through a [`ScheduleCache`].
    pub cache: bool,
    /// Repetitions per point (each `(point, rep)` is one job).
    pub reps: u32,
    /// Campaign seed; job seeds derive from `(seed, point, rep)` only.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: default_workers(),
            cache: true,
            reps: 1,
            seed: 0,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

impl CampaignConfig {
    /// The defaults overridden by `MHA_CAMPAIGN_WORKERS`,
    /// `MHA_CAMPAIGN_CACHE`, `MHA_CAMPAIGN_REPS` and `MHA_CAMPAIGN_SEED`.
    pub fn from_env() -> Self {
        let mut cfg = CampaignConfig::default();
        if let Some(w) = env_parse::<usize>("MHA_CAMPAIGN_WORKERS") {
            cfg.workers = w.max(1);
        }
        if let Ok(v) = std::env::var("MHA_CAMPAIGN_CACHE") {
            cfg.cache = !matches!(v.trim(), "0" | "false" | "off" | "no");
        }
        if let Some(r) = env_parse::<u32>("MHA_CAMPAIGN_REPS") {
            cfg.reps = r.max(1);
        }
        if let Some(s) = env_parse::<u64>("MHA_CAMPAIGN_SEED") {
            cfg.seed = s;
        }
        cfg
    }

    /// Replaces the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables the schedule cache (builder style).
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One result row produced by a campaign job: a label, numeric values
/// (column cells) and an optional free-form note (rendered artifacts like
/// timelines ride here).
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (table first column).
    pub label: String,
    /// Numeric cells.
    pub values: Vec<f64>,
    /// Free-form rendered payload, if any.
    pub note: Option<String>,
}

impl Row {
    /// A purely numeric row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Row {
            label: label.into(),
            values,
            note: None,
        }
    }

    /// A row carrying only rendered text.
    pub fn note(label: impl Into<String>, text: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
            note: Some(text.into()),
        }
    }
}

/// A schedule-building closure (runs at most once per distinct
/// [`ConfigKey`] when the cache is on).
pub type BuildFn = Arc<dyn Fn() -> Result<FrozenSchedule, String> + Send + Sync>;

/// An arbitrary job body; receives the job seed, returns its rows.
pub type CustomFn = Arc<dyn Fn(u64) -> Result<Vec<Row>, String> + Send + Sync>;

/// What one campaign point executes.
// `Sim` carries its full config inline (a `ClusterSpec` plus key and
// fault timeline) while `Custom` is a single Arc; points live once per
// sweep cell in a `Vec<CampaignPoint>`, so the size gap is harmless and
// boxing would only add an indirection on the hot job path.
#[allow(clippy::large_enum_variant)]
pub enum PointWork {
    /// Build (or fetch) a frozen schedule, simulate it on `spec` under
    /// `faults`, and report `[latency_us, makespan_s]`.
    Sim {
        /// Cache key — must cover every build input.
        key: ConfigKey,
        /// Cluster the simulation prices the schedule on.
        spec: ClusterSpec,
        /// Optional fault timeline. An empty timeline is treated exactly
        /// like `None`: the simulator is constructed fault-free (see
        /// [`simulator_for`]), keeping the engine on its
        /// zero-fault-machinery path.
        faults: Option<FaultSpec>,
        /// Builds the schedule on a cache miss.
        build: BuildFn,
    },
    /// Anything else (microbenchmarks, model curves, rendered artifacts).
    Custom(CustomFn),
}

impl std::fmt::Debug for PointWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointWork::Sim { key, faults, .. } => f
                .debug_struct("Sim")
                .field("key", key)
                .field("faults", faults)
                .finish_non_exhaustive(),
            PointWork::Custom(_) => f.debug_struct("Custom").finish_non_exhaustive(),
        }
    }
}

/// One unit of a campaign (typically one table cell).
#[derive(Debug)]
pub struct CampaignPoint {
    /// Label stamped on the point's rows (for [`PointWork::Sim`]).
    pub label: String,
    /// The work itself.
    pub work: PointWork,
}

impl CampaignPoint {
    /// A fault-free simulation point.
    pub fn sim(
        label: impl Into<String>,
        key: ConfigKey,
        spec: ClusterSpec,
        build: impl Fn() -> Result<FrozenSchedule, String> + Send + Sync + 'static,
    ) -> Self {
        Self::sim_faulty(label, key, spec, None, build)
    }

    /// A simulation point under an optional fault timeline.
    pub fn sim_faulty(
        label: impl Into<String>,
        key: ConfigKey,
        spec: ClusterSpec,
        faults: Option<FaultSpec>,
        build: impl Fn() -> Result<FrozenSchedule, String> + Send + Sync + 'static,
    ) -> Self {
        CampaignPoint {
            label: label.into(),
            work: PointWork::Sim {
                key,
                spec,
                faults,
                build: Arc::new(build),
            },
        }
    }

    /// A custom point.
    pub fn custom(
        label: impl Into<String>,
        f: impl Fn(u64) -> Result<Vec<Row>, String> + Send + Sync + 'static,
    ) -> Self {
        CampaignPoint {
            label: label.into(),
            work: PointWork::Custom(Arc::new(f)),
        }
    }
}

/// The rows of one `(point, rep)` job.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Index into the campaign's point list.
    pub point: usize,
    /// Repetition number (`0..reps`).
    pub rep: u32,
    /// The job's rows.
    pub rows: Vec<Row>,
}

/// Everything a finished campaign produced, in deterministic
/// `(point, rep)` order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One entry per job, sorted by `(point, rep)`.
    pub results: Vec<PointResult>,
    /// Schedule-cache hits across the run.
    pub cache_hits: u64,
    /// Schedule-cache misses (= builds) across the run.
    pub cache_misses: u64,
}

impl CampaignReport {
    /// The rows of `point`'s first repetition.
    pub fn rows_for(&self, point: usize) -> &[Row] {
        self.results
            .iter()
            .find(|r| r.point == point)
            .map(|r| r.rows.as_slice())
            .unwrap_or(&[])
    }

    /// The first value of `point`'s first row, first repetition — the
    /// latency cell of a [`PointWork::Sim`] point.
    pub fn value(&self, point: usize) -> f64 {
        self.rows_for(point)
            .first()
            .and_then(|r| r.values.first().copied())
            .unwrap_or(f64::NAN)
    }

    /// The makespan (seconds) of a [`PointWork::Sim`] point.
    pub fn makespan(&self, point: usize) -> f64 {
        self.rows_for(point)
            .first()
            .and_then(|r| r.values.get(1).copied())
            .unwrap_or(f64::NAN)
    }
}

/// Constructs the simulator for a campaign point: faults machinery is
/// armed **only** when the timeline actually contains events, so
/// fault-free campaign runs (including `ablate_faults`' `k = 0` row) take
/// the engine's zero-allocation fault-free branch.
pub fn simulator_for(spec: &ClusterSpec, faults: Option<&FaultSpec>) -> Result<Simulator, String> {
    match faults {
        Some(f) if !f.events.is_empty() => Simulator::with_faults(spec.clone(), f.clone()),
        _ => Simulator::new(spec.clone()),
    }
    .map_err(|e| e.to_string())
}

/// Runs `points` under `cfg` on a fresh [`ScheduleCache`].
pub fn run_campaign(
    points: &[CampaignPoint],
    cfg: &CampaignConfig,
) -> Result<CampaignReport, String> {
    let cache = ScheduleCache::new(cfg.cache);
    run_campaign_with(points, cfg, &cache)
}

/// Runs `points` under `cfg` against a caller-owned cache (so consecutive
/// campaigns can share warm schedules; the warm/cold Criterion benches and
/// the cache-reuse tests drive this directly).
pub fn run_campaign_with(
    points: &[CampaignPoint],
    cfg: &CampaignConfig,
    cache: &ScheduleCache,
) -> Result<CampaignReport, String> {
    let reps = cfg.reps.max(1);
    let jobs: Vec<(usize, u32)> = (0..points.len())
        .flat_map(|pi| (0..reps).map(move |rep| (pi, rep)))
        .collect();
    // Lock-free collector: every job owns one pre-assigned write-once
    // slot, so assembly order is fixed before the pool starts.
    let slots: Vec<OnceLock<Result<Vec<Row>, String>>> =
        (0..jobs.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = cfg.workers.clamp(1, jobs.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // One arena per worker: engine state is reset between
                // jobs, never reallocated.
                let mut arena = EngineArena::new();
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(pi, rep)) = jobs.get(j) else { break };
                    let seed = job_seed(cfg.seed, pi, rep);
                    let out = run_point(&points[pi], seed, cache, &mut arena);
                    let _ = slots[j].set(out);
                }
            });
        }
    });

    let mut results = Vec::with_capacity(jobs.len());
    for (slot, &(pi, rep)) in slots.into_iter().zip(&jobs) {
        let rows = slot
            .into_inner()
            .unwrap_or_else(|| Err("job never ran".into()))
            .map_err(|e| format!("point {pi} [{}] rep {rep}: {e}", points[pi].label))?;
        results.push(PointResult {
            point: pi,
            rep,
            rows,
        });
    }
    Ok(CampaignReport {
        results,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    })
}

/// The seed handed to job `(point, rep)` — a pure function of the campaign
/// seed and the job's identity, independent of workers and scheduling.
fn job_seed(seed: u64, point: usize, rep: u32) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.push_u64(seed).push_usize(point).push_u32(rep);
    fp.finish().0
}

fn run_point(
    point: &CampaignPoint,
    seed: u64,
    cache: &ScheduleCache,
    arena: &mut EngineArena,
) -> Result<Vec<Row>, String> {
    match &point.work {
        PointWork::Sim {
            key,
            spec,
            faults,
            build,
        } => {
            let sched = cache.get_or_build(key, || build())?;
            let sim = simulator_for(spec, faults.as_ref())?;
            let r = sim.run_in(&sched, arena).map_err(|e| e.to_string())?;
            Ok(vec![Row::new(
                point.label.clone(),
                vec![r.latency_us(), r.makespan],
            )])
        }
        PointWork::Custom(f) => f(seed),
    }
}

/// Runs a row-major grid of points (`row_labels.len() × columns.len()`
/// cells, one point per cell) and assembles the standard sweep [`Table`],
/// each cell being its point's latency value.
#[allow(clippy::too_many_arguments)]
pub fn campaign_table(
    title: &str,
    row_header: &str,
    columns: Vec<String>,
    row_labels: &[String],
    cells: Vec<CampaignPoint>,
    cfg: &CampaignConfig,
) -> Result<Table, String> {
    let ncols = columns.len();
    assert_eq!(
        cells.len(),
        row_labels.len() * ncols,
        "cell grid does not match {} rows x {} columns",
        row_labels.len(),
        ncols
    );
    let report = run_campaign(&cells, cfg)?;
    let mut table = Table::new(title, row_header, columns);
    for (ri, label) in row_labels.iter().enumerate() {
        let row = (0..ncols).map(|ci| report.value(ri * ncols + ci)).collect();
        table.push(label.clone(), row);
    }
    Ok(table)
}

/// Campaign-backed replacement for `mha_apps::allgather_sweep`: same
/// table (titles, labels, values bit-identical), but every cell is a
/// [`PointWork::Sim`] point — built schedules are cached and priced in
/// reused engine arenas across the worker pool.
pub fn allgather_sweep(
    title: &str,
    grid: ProcGrid,
    sizes: &[usize],
    contestants: &[Contestant],
    spec: &ClusterSpec,
    cfg: &CampaignConfig,
) -> Result<Table, String> {
    allgather_sweep_tuned(title, grid, sizes, contestants, None, spec, cfg)
}

/// Column label of the tuning-table column [`allgather_sweep_tuned`]
/// appends.
pub const TUNED_COLUMN: &str = "MHA-tuned";

/// [`allgather_sweep`] plus an optional [`TUNED_COLUMN`]: when `tuned` is
/// a loaded [`TunedTable`], every row gains one extra cell whose config
/// comes from a **pure table probe** ([`TunedTable::lookup`] — no search,
/// no build on the serving path) and whose schedule is the one
/// [`mha_collectives::build`] dispatch call on the served [`AlgoConfig`],
/// priced on the config's effective spec. With `tuned = None` the table is
/// bit-identical to [`allgather_sweep`]'s.
pub fn allgather_sweep_tuned(
    title: &str,
    grid: ProcGrid,
    sizes: &[usize],
    contestants: &[Contestant],
    tuned: Option<&TunedTable>,
    spec: &ClusterSpec,
    cfg: &CampaignConfig,
) -> Result<Table, String> {
    let row_labels: Vec<String> = sizes.iter().map(|&m| fmt_bytes(m)).collect();
    let ncols = contestants.len() + usize::from(tuned.is_some());
    let mut cells = Vec::with_capacity(sizes.len() * ncols);
    for &msg in sizes {
        for &c in contestants {
            let key = ConfigKey::new(format!("allgather/{}", c.name()), grid, msg, spec);
            let spec2 = spec.clone();
            cells.push(CampaignPoint::sim(c.name(), key, spec.clone(), move || {
                c.build_allgather(grid, msg, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| e.to_string())
            }));
        }
        if let Some(table) = tuned {
            let served = table.lookup(grid, msg, spec.rails);
            let key = ConfigKey::for_algo(&served, grid, msg, spec);
            let sim_spec = served.effective_spec(spec).into_owned();
            let build_spec = sim_spec.clone();
            cells.push(CampaignPoint::sim(TUNED_COLUMN, key, sim_spec, move || {
                mha_collectives::build(&served, grid, msg, &build_spec)
                    .map(|b| b.sched)
                    .map_err(|e| e.to_string())
            }));
        }
    }
    let mut columns: Vec<String> = contestants.iter().map(Contestant::name).collect();
    if tuned.is_some() {
        columns.push(TUNED_COLUMN.into());
    }
    campaign_table(title, "msg_bytes", columns, &row_labels, cells, cfg)
}

/// Campaign-backed `osu_allreduce` sweep over vector sizes in bytes (f32
/// elements are `bytes / 4`, padded up to the rank count), with explicit
/// column names (Figure 15 titles its baseline column `FlatRing`).
pub fn allreduce_sweep(
    title: &str,
    grid: ProcGrid,
    sizes_bytes: &[usize],
    contestants: &[Contestant],
    columns: Vec<String>,
    spec: &ClusterSpec,
    cfg: &CampaignConfig,
) -> Result<Table, String> {
    assert_eq!(columns.len(), contestants.len());
    let r = grid.nranks() as usize;
    let row_labels: Vec<String> = sizes_bytes.iter().map(|&b| fmt_bytes(b)).collect();
    let mut cells = Vec::with_capacity(sizes_bytes.len() * contestants.len());
    for &bytes in sizes_bytes {
        let elems = (bytes / 4).div_ceil(r) * r; // pad to divisibility
        for &c in contestants {
            let key = ConfigKey::new(format!("allreduce/{}", c.name()), grid, elems, spec);
            let spec2 = spec.clone();
            cells.push(CampaignPoint::sim(c.name(), key, spec.clone(), move || {
                c.build_allreduce(grid, elems, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| e.to_string())
            }));
        }
    }
    campaign_table(title, "msg_bytes", columns, &row_labels, cells, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_point(label: &str, msg: usize) -> CampaignPoint {
        let spec = ClusterSpec::thor();
        let key = ConfigKey::new("test/pt2pt", ProcGrid::new(2, 1), msg, &spec);
        CampaignPoint::sim(label, key, spec, move || {
            Ok(crate::pt2pt_rails_schedule(msg))
        })
    }

    #[test]
    fn sim_points_report_latency_and_makespan() {
        let points = vec![tiny_point("64K", 64 * 1024)];
        let report = run_campaign(&points, &CampaignConfig::default()).unwrap();
        assert_eq!(report.results.len(), 1);
        let v = report.value(0);
        let m = report.makespan(0);
        assert!(v > 0.0 && m > 0.0);
        assert_eq!(v.to_bits(), (m * 1e6).to_bits());
        assert_eq!(report.cache_misses, 1);
    }

    #[test]
    fn worker_counts_agree_bitwise() {
        let points: Vec<CampaignPoint> = [4096usize, 65536, 1 << 20]
            .iter()
            .map(|&m| tiny_point("p", m))
            .collect();
        let base = run_campaign(&points, &CampaignConfig::default().with_workers(1)).unwrap();
        for workers in [2usize, 8] {
            let r =
                run_campaign(&points, &CampaignConfig::default().with_workers(workers)).unwrap();
            for (a, b) in base.results.iter().zip(&r.results) {
                assert_eq!(a.rows[0].values[0].to_bits(), b.rows[0].values[0].to_bits());
            }
        }
    }

    #[test]
    fn reps_share_one_build_and_seeds_are_stable() {
        let points = vec![tiny_point("p", 4096)];
        let cfg = CampaignConfig {
            reps: 5,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&points, &cfg).unwrap();
        assert_eq!(report.results.len(), 5);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 4);
        // Seed policy: a custom point sees the same per-rep seeds on every
        // run regardless of worker count.
        let seen = |workers| {
            let p = vec![CampaignPoint::custom("s", |seed| {
                Ok(vec![Row::new(format!("{seed:016x}"), vec![])])
            })];
            let cfg = CampaignConfig {
                reps: 3,
                workers,
                ..CampaignConfig::default()
            };
            run_campaign(&p, &cfg)
                .unwrap()
                .results
                .iter()
                .map(|r| r.rows[0].label.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(seen(1), seen(8));
    }

    #[test]
    fn errors_name_the_failing_point() {
        let points = vec![CampaignPoint::custom("boom", |_| Err("nope".into()))];
        let err = run_campaign(&points, &CampaignConfig::default()).unwrap_err();
        assert!(err.contains("boom") && err.contains("nope"), "{err}");
    }

    #[test]
    fn empty_faults_build_a_fault_free_simulator() {
        let spec = ClusterSpec::thor();
        let none = simulator_for(&spec, None).unwrap();
        let empty = simulator_for(&spec, Some(&FaultSpec::new(1e-4))).unwrap();
        let armed = simulator_for(&spec, Some(&FaultSpec::rail_down_at(0, 1e-3))).unwrap();
        assert!(!none.faults_active());
        assert!(!empty.faults_active());
        assert!(armed.faults_active());
    }

    #[test]
    fn campaign_table_assembles_row_major() {
        let cells = vec![
            tiny_point("a", 4096),
            tiny_point("b", 65536),
            tiny_point("c", 4096),
            tiny_point("d", 65536),
        ];
        let t = campaign_table(
            "t",
            "msg",
            vec!["x".into(), "y".into()],
            &["r0".into(), "r1".into()],
            cells,
            &CampaignConfig::default(),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        let rows = t.rows();
        // Same build key -> identical cached latency down each column.
        assert_eq!(rows[0].1[0].to_bits(), rows[1].1[0].to_bits());
        assert_eq!(rows[0].1[1].to_bits(), rows[1].1[1].to_bits());
    }

    #[test]
    fn config_key_distinguishes_every_field() {
        let spec = ClusterSpec::thor();
        let base = ConfigKey::new("f", ProcGrid::new(2, 4), 1024, &spec);
        assert_ne!(base, ConfigKey::new("g", ProcGrid::new(2, 4), 1024, &spec));
        assert_ne!(base, ConfigKey::new("f", ProcGrid::new(4, 2), 1024, &spec));
        assert_ne!(base, ConfigKey::new("f", ProcGrid::new(2, 4), 2048, &spec));
        assert_ne!(
            base,
            ConfigKey::new(
                "f",
                ProcGrid::new(2, 4),
                1024,
                &ClusterSpec::thor_single_rail()
            )
        );
        assert_ne!(base, base.clone().with_salt(1));
        assert_eq!(base, ConfigKey::new("f", ProcGrid::new(2, 4), 1024, &spec));
    }

    #[test]
    fn algo_keys_cover_every_config_knob() {
        use mha_collectives::Family;
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(4, 4);
        let base = ConfigKey::for_algo(&AlgoConfig::default(), grid, 4096, &spec);
        assert_eq!(base.family, "algo/mha-inter");
        // Any knob change re-keys through the salt (= config digest).
        let chunked = AlgoConfig {
            chunk: Some(2),
            ..AlgoConfig::default()
        };
        assert_ne!(base, ConfigKey::for_algo(&chunked, grid, 4096, &spec));
        // A stripe override re-keys through the *effective spec* digest,
        // exactly as the build and the pricing see it.
        let striped = AlgoConfig {
            stripe_threshold: Some(1024),
            ..AlgoConfig::default()
        };
        let sk = ConfigKey::for_algo(&striped, grid, 4096, &spec);
        assert_eq!(sk.spec_digest, striped.effective_spec(&spec).digest());
        assert_ne!(base.spec_digest, sk.spec_digest);
        // Families keep distinct family strings.
        let ring = ConfigKey::for_algo(&AlgoConfig::flat(Family::Ring), grid, 4096, &spec);
        assert_eq!(ring.family, "algo/ring");
        assert_ne!(base, ring);
    }

    #[test]
    fn tuned_sweep_appends_a_pure_probe_column() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        let sizes = [256usize, 4096];
        let contestants = mha_apps::paper_contestants();
        let cfg = CampaignConfig::default();
        // None → bit-identical to the plain sweep.
        let plain = allgather_sweep("t", grid, &sizes, &contestants, &spec, &cfg).unwrap();
        let none =
            allgather_sweep_tuned("t", grid, &sizes, &contestants, None, &spec, &cfg).unwrap();
        assert_eq!(plain.to_csv(), none.to_csv());
        // Some → one extra column serving the stored config per point.
        let mut table = TunedTable::new(spec.digest());
        for &msg in &sizes {
            table.insert(
                mha_collectives::TableKey::for_query(grid, msg, spec.rails),
                AlgoConfig::default(),
            );
        }
        let tuned =
            allgather_sweep_tuned("t", grid, &sizes, &contestants, Some(&table), &spec, &cfg)
                .unwrap();
        let header = tuned.to_csv().lines().next().unwrap().to_string();
        assert!(header.ends_with(&format!(",{TUNED_COLUMN}")), "{header}");
        // The tuned cell is exactly the dispatched build of the served
        // config, priced on the same spec.
        let sim = Simulator::new(spec.clone()).unwrap();
        for (&msg, (_, row)) in sizes.iter().zip(tuned.rows()) {
            let served = table.lookup(grid, msg, spec.rails);
            let built = mha_collectives::build(&served, grid, msg, &spec).unwrap();
            let want = sim.run(&built.sched).unwrap().latency_us();
            assert_eq!(row.last().unwrap().to_bits(), want.to_bits(), "msg={msg}");
        }
    }

    #[test]
    fn topology_keys_pin_the_full_tree() {
        use mha_sched::{TopoLevel, Topology};
        let spec = ClusterSpec::thor();
        let grid_key = ConfigKey::new("f", ProcGrid::new(2, 4), 1024, &spec);
        let two = Topology::two_level(2, 4);
        let two_key = ConfigKey::for_topology("f", &two, 1024, &spec);
        // Same flattened grid, but the explicit tree is a distinct key.
        assert_eq!((two_key.nodes, two_key.ppn), (2, 4));
        assert_ne!(grid_key, two_key);
        // Deeper tree over the same grid: distinct again.
        let three = Topology::three_level(2, 2, 2);
        assert_ne!(two_key, ConfigKey::for_topology("f", &three, 1024, &spec));
        // Same shape, different link parameters: distinct.
        let fast = Topology::new(vec![
            TopoLevel::new(2).with_link(4, 24.0e9, 1.0e-6),
            TopoLevel::new(4),
        ]);
        assert_ne!(two_key, ConfigKey::for_topology("f", &fast, 1024, &spec));
        // Same tree: equal key and digest.
        let again = ConfigKey::for_topology("f", &Topology::two_level(2, 4), 1024, &spec);
        assert_eq!(two_key, again);
        assert_eq!(two_key.digest(), again.digest());
    }
}
