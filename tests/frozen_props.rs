//! Property tests for the frozen CSR schedule IR and the shared readiness
//! runtime: freezing must preserve exactly the builder's dependency edge
//! list, and the indegree-counter drivers must release every op exactly
//! once, in an order consistent with the dependencies.

use proptest::prelude::*;

use mha::sched::{
    AtomicReadySet, FrozenSchedule, OpId, ProcGrid, RankId, ReadySet, ScheduleBuilder,
};

/// A random DAG as a per-op dependency list (each op depends on a random
/// subset of strictly earlier ops — the only shape the builder can express).
fn arb_dag() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..40).prop_flat_map(|n| {
        let per_op: Vec<_> = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(Vec::new()).boxed()
                } else {
                    proptest::collection::btree_set(0..i as u32, 0..=i.min(4))
                        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
                        .boxed()
                }
            })
            .collect();
        per_op
    })
}

fn build(deps: &[Vec<u32>]) -> FrozenSchedule {
    let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "prop-dag");
    for d in deps {
        let ids: Vec<OpId> = d.iter().map(|&i| OpId(i)).collect();
        b.compute(RankId(0), 1, &ids, 0);
    }
    b.finish().freeze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CSR adjacency is exactly the builder's edge list: `preds` are
    /// the deps in declaration order, `succs` hold the transposed edges in
    /// creation order, and the edge count round-trips.
    #[test]
    fn csr_round_trips_builder_edges(deps in arb_dag()) {
        let n = deps.len();
        let fs = build(&deps);
        prop_assert_eq!(fs.n_ops(), n);
        prop_assert_eq!(fs.n_edges(), deps.iter().map(Vec::len).sum::<usize>());
        let mut expect_succ = vec![Vec::new(); n];
        for (i, d) in deps.iter().enumerate() {
            prop_assert_eq!(fs.preds(i as u32), &d[..]);
            prop_assert_eq!(fs.indegree(i as u32) as usize, d.len());
            for &p in d {
                expect_succ[p as usize].push(i as u32);
            }
        }
        for (i, succ) in expect_succ.iter().enumerate() {
            prop_assert_eq!(fs.succs(i as u32), &succ[..]);
        }
        // Roots are exactly the zero-indegree ops, in creation order.
        let expect_roots: Vec<u32> =
            (0..n as u32).filter(|&i| deps[i as usize].is_empty()).collect();
        prop_assert_eq!(fs.roots(), &expect_roots[..]);
    }

    /// `topo_order` is a permutation of the ops that respects every edge.
    #[test]
    fn topo_order_is_a_valid_linearization(deps in arb_dag()) {
        let n = deps.len();
        let fs = build(&deps);
        let topo = fs.topo_order();
        prop_assert_eq!(topo.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (k, &op) in topo.iter().enumerate() {
            prop_assert_eq!(pos[op as usize], usize::MAX, "duplicate in topo order");
            pos[op as usize] = k;
        }
        for (i, d) in deps.iter().enumerate() {
            for &p in d {
                prop_assert!(pos[p as usize] < pos[i], "edge {p} -> {i} violated");
            }
        }
    }

    /// Driving [`ReadySet`] from the roots releases every op exactly once,
    /// never before all of its predecessors.
    #[test]
    fn readiness_driver_releases_in_dependency_order(deps in arb_dag()) {
        let n = deps.len();
        let fs = build(&deps);
        let mut ready = ReadySet::new(&fs);
        prop_assert_eq!(ready.remaining(), n);
        let mut queue: Vec<u32> = fs.roots().to_vec();
        let mut order: Vec<u32> = Vec::new();
        let mut released = vec![false; n];
        for &r in fs.roots() {
            released[r as usize] = true;
        }
        while let Some(op) = queue.pop() {
            order.push(op);
            ready.complete(&fs, op, |s| {
                assert!(!released[s as usize], "op {s} released twice");
                released[s as usize] = true;
                queue.push(s);
            });
        }
        prop_assert!(ready.is_done());
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (k, &op) in order.iter().enumerate() {
            pos[op as usize] = k;
        }
        for (i, d) in deps.iter().enumerate() {
            for &p in d {
                prop_assert!(pos[p as usize] < pos[i], "op {i} completed before dep {p}");
            }
        }
    }

    /// The atomic driver agrees with the sequential one when driven
    /// single-threaded: same release multiset, same completion.
    #[test]
    fn atomic_readiness_matches_sequential(deps in arb_dag()) {
        let n = deps.len();
        let fs = build(&deps);
        let atomic = AtomicReadySet::new(&fs);
        let mut queue: Vec<u32> = fs.roots().to_vec();
        let mut released = fs.roots().len();
        while let Some(op) = queue.pop() {
            atomic.complete(&fs, op, |s| {
                released += 1;
                queue.push(s);
            });
        }
        prop_assert_eq!(released, n);
    }
}
