//! Satellite property of the topology-aware cache key: two campaign
//! points built over **distinct topology trees must never alias a cache
//! entry**, even when the trees flatten onto the same `nodes × ppn` grid —
//! a deeper tree, a re-shaped tree, or the same shape with different link
//! parameters all build different schedules (or price differently), so a
//! shared entry would silently serve the wrong schedule.

use std::sync::Arc;

use mha_bench::campaign::{ConfigKey, ScheduleCache};
use mha_bench::pt2pt_rails_schedule;
use mha_collectives::mha::{InterAlgo, Offload};
use mha_collectives::{AlgoConfig, Family, Library};
use mha_sched::{ProcGrid, TopoLevel, Topology};
use mha_simnet::ClusterSpec;
use proptest::prelude::*;

/// A random topology tree: depth 1–4, fanouts 1–4, and per-level link
/// parameters drawn from a small palette so that equal-shape trees with
/// different speeds are generated often enough to matter.
fn arb_tree() -> impl Strategy<Value = Topology> {
    proptest::collection::vec((1u32..=4, 0usize..3), 1..=4).prop_map(|levels| {
        Topology::new(
            levels
                .into_iter()
                .map(|(fanout, link)| {
                    let (rails, bw, alpha) = match link {
                        0 => (1, 11.0e9, 0.8e-6),
                        1 => (2, 12.0e9, 1.6e-6),
                        _ => (1, 7.0e9, 0.15e-6),
                    };
                    TopoLevel::new(fanout).with_link(rails, bw, alpha)
                })
                .collect(),
        )
    })
}

/// A random point of the [`AlgoConfig`] design space — every field the
/// digest (and hence [`ConfigKey::for_algo`]'s salt) must separate.
fn arb_algo_config() -> impl Strategy<Value = AlgoConfig> {
    let family = prop_oneof![
        Just(Family::Ring),
        Just(Family::RecursiveDoubling),
        Just(Family::Bruck),
        Just(Family::DirectSpread),
        Just(Family::SingleLeader),
        (1u32..=4).prop_map(|groups| Family::MultiLeader { groups }),
        Just(Family::MhaIntra),
        Just(Family::MhaInter),
        Just(Family::Library(Library::HpcX)),
        Just(Family::Library(Library::Mvapich2X)),
    ]
    .boxed();
    let offload = prop_oneof![
        Just(Offload::None),
        Just(Offload::Auto),
        (1u32..=8).prop_map(Offload::Fixed),
    ]
    .boxed();
    let chunk = prop_oneof![Just(None), (1u32..=8).prop_map(Some)].boxed();
    let stripe = prop_oneof![Just(None), (1usize..=(1 << 18)).prop_map(Some)].boxed();
    (
        family,
        any::<bool>(),
        any::<bool>(),
        offload,
        chunk,
        stripe,
        proptest::collection::vec(0u8..4, 0..3),
    )
        .prop_map(
            |(family, rd_inter, overlap, offload, chunk, stripe_threshold, down_rails)| {
                AlgoConfig {
                    family,
                    inter: if rd_inter {
                        InterAlgo::RecursiveDoubling
                    } else {
                        InterAlgo::Ring
                    },
                    overlap,
                    offload,
                    chunk,
                    stripe_threshold,
                    down_rails,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Distinct trees → distinct keys → distinct cache entries; equal
    /// trees → one shared entry. The build closures are tagged so a
    /// mis-shared entry is also visible in the schedule itself.
    #[test]
    fn distinct_trees_never_alias_a_cache_entry(
        a in arb_tree(),
        b in arb_tree(),
        msg in 1usize..=(1 << 14),
    ) {
        let spec = ClusterSpec::thor();
        let ka = ConfigKey::for_topology("composed", &a, msg, &spec);
        let kb = ConfigKey::for_topology("composed", &b, msg, &spec);
        prop_assert_eq!(a == b, ka == kb, "key equality must mirror tree equality");

        let cache = ScheduleCache::new(true);
        let sa = cache.get_or_build(&ka, || Ok(pt2pt_rails_schedule(8))).unwrap();
        let sb = cache.get_or_build(&kb, || Ok(pt2pt_rails_schedule(16))).unwrap();
        if a == b {
            prop_assert!(Arc::ptr_eq(&sa, &sb), "equal trees must share the entry");
            prop_assert_eq!(cache.misses(), 1);
            prop_assert_eq!(cache.hits(), 1);
        } else {
            prop_assert!(!Arc::ptr_eq(&sa, &sb), "distinct trees must not alias");
            prop_assert_eq!(cache.misses(), 2);
            prop_assert_eq!(cache.len(), 2);
        }
    }

    /// Satellite property of the unified config key: two distinct
    /// [`AlgoConfig`]s must never alias a cache entry (their digest is the
    /// key's salt, so a collision would silently serve the wrong
    /// schedule), and equal configs must share one entry. Also pins the
    /// derivation: `ConfigKey::for_algo` == kv-round-tripped config's key,
    /// so the serialized `.mtab` form and the in-memory form hash alike.
    #[test]
    fn distinct_algo_configs_never_alias_a_cache_entry(
        a in arb_algo_config(),
        b in arb_algo_config(),
        msg in 1usize..=(1 << 14),
    ) {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(4, 4);
        let ka = ConfigKey::for_algo(&a, grid, msg, &spec);
        let kb = ConfigKey::for_algo(&b, grid, msg, &spec);
        prop_assert_eq!(a == b, ka == kb, "key equality must mirror config equality\n a={:?}\n b={:?}", a, b);

        // The text round trip preserves the key (one hash path from the
        // .mtab entry payload to the schedule cache).
        let back = AlgoConfig::parse_kv(&a.to_kv()).unwrap();
        prop_assert_eq!(&ka, &ConfigKey::for_algo(&back, grid, msg, &spec));

        let cache = ScheduleCache::new(true);
        let sa = cache.get_or_build(&ka, || Ok(pt2pt_rails_schedule(8))).unwrap();
        let sb = cache.get_or_build(&kb, || Ok(pt2pt_rails_schedule(16))).unwrap();
        if a == b {
            prop_assert!(Arc::ptr_eq(&sa, &sb), "equal configs must share the entry");
            prop_assert_eq!(cache.misses(), 1);
            prop_assert_eq!(cache.hits(), 1);
        } else {
            prop_assert!(!Arc::ptr_eq(&sa, &sb), "distinct configs must not alias");
            prop_assert_eq!(cache.misses(), 2);
            prop_assert_eq!(cache.len(), 2);
        }
    }

    /// The key digest (shard selector / diagnostics) also separates trees:
    /// across random pairs a digest collision between distinct trees would
    /// at worst co-locate keys in a shard, but equal digests for *equal*
    /// trees must hold exactly.
    #[test]
    fn tree_digest_is_stable_and_shape_sensitive(t in arb_tree()) {
        let spec = ClusterSpec::thor();
        let k1 = ConfigKey::for_topology("composed", &t, 64, &spec);
        let k2 = ConfigKey::for_topology("composed", &t, 64, &spec);
        prop_assert_eq!(k1.digest(), k2.digest());
        // Appending a level always changes the key, even a fanout-1 level
        // that leaves the rank count unchanged.
        let mut deeper_levels = t.levels().to_vec();
        deeper_levels.push(TopoLevel::new(1));
        let deeper = Topology::new(deeper_levels);
        let kd = ConfigKey::for_topology("composed", &deeper, 64, &spec);
        prop_assert!(k1 != kd, "fanout-1 extension must still re-key");
    }
}
