//! Tuned-choice oracle: every config a [`TunedTable`] can serve is a
//! *correct* Allgather.
//!
//! The autotuner (`mha-tune`) only prices candidates it already built, so
//! on-grid entries are trivially buildable — the risk is the serving
//! path's off-grid behavior: nearest-neighbor fallback plus
//! [`AlgoConfig::coerce_for`] on grids the search never saw. This oracle
//! hammers `lookup` with seeded random queries (including off-grid,
//! non-power-of-two and single-node shapes) and asserts the served config
//! (a) is valid for the queried grid, (b) dispatches through
//! [`mha_collectives::build`], and (c) produces a schedule whose writes
//! exactly tile every receive buffer ([`check_allgather_coverage`]) —
//! i.e. a mistuned table can be slow, but it can never be wrong.

use mha_collectives::{build, AlgoConfig, TableKey, TunedTable};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::coverage::check_allgather_coverage;

/// Tuned-choice oracle knobs.
#[derive(Debug, Clone)]
pub struct TunedOracleConfig {
    /// Number of random queries to draw (`MHA_CONFORMANCE_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_CONFORMANCE_SEED`); the run is deterministic given
    /// the seed and the table.
    pub seed: u64,
}

impl Default for TunedOracleConfig {
    fn default() -> Self {
        TunedOracleConfig {
            cases: 200,
            seed: 0xC0FFEE,
        }
    }
}

impl TunedOracleConfig {
    /// The default configuration with `MHA_CONFORMANCE_CASES` and
    /// `MHA_CONFORMANCE_SEED` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = TunedOracleConfig::default();
        if let Ok(v) = std::env::var("MHA_CONFORMANCE_CASES") {
            if let Ok(v) = v.parse() {
                cfg.cases = v;
            }
        }
        if let Ok(v) = std::env::var("MHA_CONFORMANCE_SEED") {
            if let Ok(v) = v.parse() {
                cfg.seed = v;
            }
        }
        cfg
    }
}

/// The outcome of a tuned-choice sweep.
#[derive(Debug)]
pub struct TunedOracleReport {
    /// Queries checked.
    pub cases: usize,
    /// Queries answered by an exact table probe.
    pub exact_hits: usize,
    /// Queries answered through the nearest-neighbor fallback (or the
    /// empty-table default).
    pub fallbacks: usize,
    /// Human-readable description of every failure (empty = pass).
    pub failures: Vec<String>,
}

impl TunedOracleReport {
    /// Whether the sweep found no failure.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One random roaming query: grids are capped at 128 ranks so each case
/// builds quickly, and shapes deliberately include off-tuned-grid node
/// counts (non-power-of-two, single node, ppn 1).
fn sample_roaming(rng: &mut StdRng) -> (ProcGrid, usize, u8) {
    let nodes = rng.gen_range(1..=16u32);
    let max_ppn = (128 / nodes).max(1);
    let ppn = rng.gen_range(1..=max_ppn.min(32));
    let msg = 1usize << rng.gen_range(0..=20u32);
    let msg = msg + rng.gen_range(0..=msg / 2);
    let rails_up = rng.gen_range(0..=3u8);
    (ProcGrid::new(nodes, ppn), msg, rails_up)
}

/// A query aimed at a stored key (message drawn inside the key's bucket),
/// so the exact-probe serving regime is exercised too. Keys are limited
/// to ≤ 256-rank grids to keep per-case build cost small.
fn sample_on_key(rng: &mut StdRng, keys: &[TableKey]) -> Option<(ProcGrid, usize, u8)> {
    if keys.is_empty() {
        return None;
    }
    let k = keys[rng.gen_range(0..keys.len())];
    let lo = 1usize << k.msg_bucket;
    let msg = lo + rng.gen_range(0..lo);
    Some((ProcGrid::new(k.nodes, k.ppn), msg, k.rails_up))
}

/// Runs the tuned-choice oracle: `cfg.cases` seeded random queries
/// against `table`, each served config checked for grid validity, a
/// successful dispatch, and exact receive-buffer coverage.
pub fn run_tuned_oracle(
    table: &TunedTable,
    spec: &ClusterSpec,
    cfg: &TunedOracleConfig,
) -> TunedOracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let small_keys: Vec<TableKey> = table
        .sorted_entries()
        .into_iter()
        .map(|(k, _)| k)
        .filter(|k| k.nodes * k.ppn <= 256)
        .collect();
    let mut report = TunedOracleReport {
        cases: cfg.cases,
        exact_hits: 0,
        fallbacks: 0,
        failures: Vec::new(),
    };
    for case in 0..cfg.cases {
        // Every fourth case aims at a stored key (exact-probe regime);
        // the rest roam the shape space (fallback + coercion regime).
        let (grid, msg, rails_up) = if case % 4 == 0 {
            sample_on_key(&mut rng, &small_keys).unwrap_or_else(|| sample_roaming(&mut rng))
        } else {
            sample_roaming(&mut rng)
        };
        if table
            .get(&TableKey::for_query(grid, msg, rails_up))
            .is_some()
        {
            report.exact_hits += 1;
        } else {
            report.fallbacks += 1;
        }
        let served = table.lookup(grid, msg, rails_up);
        if let Err(e) = check_served(&served, grid, msg, spec) {
            report.failures.push(format!(
                "case {case} ({}x{} msg={msg} rails_up={rails_up}): {e} [served {}]",
                grid.nodes(),
                grid.ppn(),
                served.to_kv()
            ));
        }
    }
    report
}

fn check_served(
    served: &AlgoConfig,
    grid: ProcGrid,
    msg: usize,
    spec: &ClusterSpec,
) -> Result<(), String> {
    if !served.valid_for(grid) {
        return Err("served config invalid for queried grid".into());
    }
    let built = build(served, grid, msg, &served.effective_spec(spec))
        .map_err(|e| format!("dispatch failed: {e}"))?;
    check_allgather_coverage(&built).map_err(|e| format!("coverage: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_serves_correct_defaults_everywhere() {
        let table = TunedTable::new(0);
        let spec = ClusterSpec::thor();
        let cfg = TunedOracleConfig {
            cases: 40,
            seed: 11,
        };
        let report = run_tuned_oracle(&table, &spec, &cfg);
        assert_eq!(report.fallbacks, 40);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn adversarial_entries_are_coerced_into_correct_serves() {
        // Store configs that are invalid on most grids; the serving path
        // must coerce them rather than hand out something unbuildable.
        let mut table = TunedTable::new(0);
        table.insert(
            TableKey {
                nodes: 8,
                ppn: 32,
                msg_bucket: 10,
                rails_up: 2,
            },
            AlgoConfig {
                inter: mha_collectives::mha::InterAlgo::RecursiveDoubling,
                chunk: Some(1 << 20),
                down_rails: vec![0, 1, 2, 3],
                ..AlgoConfig::default()
            },
        );
        let spec = ClusterSpec::thor();
        let cfg = TunedOracleConfig {
            cases: 60,
            seed: 23,
        };
        let report = run_tuned_oracle(&table, &spec, &cfg);
        assert!(report.is_clean(), "{:?}", report.failures);
        assert!(report.fallbacks > 0);
    }
}
