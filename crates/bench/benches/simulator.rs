//! Simulator throughput: events/second on representative schedules —
//! the number that bounds how fast the fig12-14 sweeps run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mha_collectives::mha::MhaInterConfig;
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn bench_sim(c: &mut Criterion) {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for (name, algo, nodes, ppn) in [
        ("flat_ring", AllgatherAlgo::Ring, 8u32, 16u32),
        (
            "mha_inter",
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
            8,
            16,
        ),
        ("bruck", AllgatherAlgo::Bruck, 8, 16),
    ] {
        let grid = ProcGrid::new(nodes, ppn);
        let built = algo.build(grid, 64 * 1024, &spec).unwrap();
        let events = sim.run(&built.sched).unwrap().events;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::new(name, format!("{nodes}x{ppn}")),
            &built,
            |b, built| b.iter(|| std::hint::black_box(sim.run(&built.sched).unwrap().makespan)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
