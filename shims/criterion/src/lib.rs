//! Offline shim for `criterion` 0.5: a small wall-clock timing harness
//! exposing the API surface this workspace's benches use (`Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros). No statistics engine — each benchmark is
//! calibrated to a target measurement time and the median of a few samples
//! is reported as ns/iter (plus derived throughput).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units).
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (group name supplies the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-sample measurement state handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Shared measurement configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            samples: 7,
        }
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_throughput(t: Throughput, ns_per_iter: f64) -> String {
    let per_sec = |n: u64| n as f64 / (ns_per_iter * 1e-9);
    match t {
        Throughput::Elements(n) => format!("{:.3} Melem/s", per_sec(n) / 1e6),
        Throughput::Bytes(n) => format!("{:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
    }
}

fn run_one(
    cfg: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64;
        if ns > 1_000_000.0 || iters >= 1 << 24 {
            break (ns / iters as f64).max(0.01);
        }
        iters *= 4;
    };
    let budget_ns = cfg.measurement_time.as_nanos() as f64 / cfg.samples as f64;
    let iters = ((budget_ns / per_iter_ns).ceil() as u64).max(1);
    let mut samples: Vec<f64> = (0..cfg.samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    let mut line = format!(
        "{id:<44} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if let Some(t) = throughput {
        line.push_str(&format!("  thrpt: {}", fmt_throughput(t, median)));
    }
    println!("{line}");
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(self, &id.into_id(), None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; adjusts the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &full, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness CLI flags (`--bench`, filters) for
            // compatibility with `cargo bench`.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            samples: 3,
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3) * 3));
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("us"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
        assert!(fmt_time(2e9).ends_with(" s"));
        assert!(fmt_throughput(Throughput::Elements(1_000_000), 1000.0).contains("Melem"));
    }
}
