//! Schedule executors over real byte buffers.
//!
//! Two interpreters of the frozen IR with identical semantics:
//!
//! * [`run_single`] — deterministic, sequential, in the frozen topological
//!   order. The reference implementation.
//! * [`run_threaded`] — a dependency-driven worker pool: readiness comes
//!   from the shared [`mha_sched::AtomicReadySet`] driver (the same
//!   indegree-counter runtime the simulator uses); any worker may claim any
//!   ready op. For schedules that pass `mha_sched::check_races` the result
//!   equals the sequential one regardless of interleaving — which the test
//!   suite exercises aggressively.
//!
//! Neither executor models *time*; that is `mha-simnet`'s job. These exist
//! to prove every algorithm's data movement is correct (offsets, chunking,
//! reduction arithmetic, shm hand-offs). The `*_probed` variants narrate
//! wall-clock op spans through a [`Probe`], the same observability seam the
//! simulator emits, so one sink works against both backends.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel;

use mha_sched::{AtomicReadySet, DType, FrozenSchedule, OpKind, Probe, RedOp};

use crate::journal::{CompletionJournal, JournalError, JournalSink, KillPlan};
use crate::memory::BufferStore;

/// An execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// The schedule failed structural validation.
    InvalidSchedule(mha_sched::ValidateError),
    /// A worker thread panicked (the panic is contained — it surfaces as
    /// this error instead of aborting the process or hanging the pool).
    WorkerPanicked,
    /// The worker pool drained without completing every op — a broken DAG
    /// or a disconnected worker queue.
    Stalled {
        /// Ops that completed.
        done: usize,
        /// Ops in the schedule.
        total: usize,
    },
    /// Execution was deliberately aborted by a [`KillPlan`] victim (or a
    /// [`run_single_killed`] stop point). The journal holds the completed
    /// prefix; `resume_single` / `resume_threaded` finish the rest.
    Killed {
        /// Ops journaled as retired, including any from previous runs.
        done: usize,
        /// Ops in the schedule.
        total: usize,
    },
    /// The supplied completion journal does not describe a valid partial
    /// execution of this schedule.
    Journal(JournalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            ExecError::WorkerPanicked => write!(f, "a worker thread panicked"),
            ExecError::Stalled { done, total } => {
                write!(f, "threaded execution stalled: {done} of {total} ops ran")
            }
            ExecError::Killed { done, total } => {
                write!(f, "execution killed: {done} of {total} ops journaled")
            }
            ExecError::Journal(e) => write!(f, "bad journal: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<mha_sched::ValidateError> for ExecError {
    fn from(e: mha_sched::ValidateError) -> Self {
        ExecError::InvalidSchedule(e)
    }
}

impl From<JournalError> for ExecError {
    fn from(e: JournalError) -> Self {
        ExecError::Journal(e)
    }
}

fn sum_elem(dtype: DType, acc: &mut [u8], op: &[u8]) {
    match dtype {
        DType::F32 => {
            let x = f32::from_ne_bytes(acc.try_into().unwrap())
                + f32::from_ne_bytes(op.try_into().unwrap());
            acc.copy_from_slice(&x.to_ne_bytes());
        }
        DType::F64 => {
            let x = f64::from_ne_bytes(acc.try_into().unwrap())
                + f64::from_ne_bytes(op.try_into().unwrap());
            acc.copy_from_slice(&x.to_ne_bytes());
        }
    }
}

fn max_elem(dtype: DType, acc: &mut [u8], op: &[u8]) {
    match dtype {
        DType::F32 => {
            let x = f32::from_ne_bytes(acc.try_into().unwrap())
                .max(f32::from_ne_bytes(op.try_into().unwrap()));
            acc.copy_from_slice(&x.to_ne_bytes());
        }
        DType::F64 => {
            let x = f64::from_ne_bytes(acc.try_into().unwrap())
                .max(f64::from_ne_bytes(op.try_into().unwrap()));
            acc.copy_from_slice(&x.to_ne_bytes());
        }
    }
}

fn execute_op(kind: &OpKind, store: &BufferStore) {
    match kind {
        OpKind::Transfer { src, dst, len, .. } | OpKind::Copy { src, dst, len, .. } => {
            store.copy_bytes(*src, *dst, *len);
        }
        OpKind::Reduce {
            acc,
            operand,
            len,
            dtype,
            op,
            ..
        } => {
            let d = *dtype;
            match op {
                RedOp::Sum => {
                    store.combine_bytes(*acc, *operand, *len, d.size(), |a, o| sum_elem(d, a, o))
                }
                RedOp::Max => {
                    store.combine_bytes(*acc, *operand, *len, d.size(), |a, o| max_elem(d, a, o))
                }
            }
        }
        OpKind::Compute { .. } => {
            // Pure time cost; nothing to do for correctness.
        }
    }
}

/// Executes `sch` sequentially in the frozen topological order.
pub fn run_single(sch: &FrozenSchedule, store: &BufferStore) -> Result<(), ExecError> {
    mha_sched::validate(sch, None)?;
    let ops = sch.ops();
    for &i in sch.topo_order() {
        execute_op(&ops[i as usize].kind, store);
    }
    Ok(())
}

/// [`run_single`] narrated through `probe`: wall-clock op spans (seconds
/// from run start) plus begin/end envelope, `backend = "exec-single"`.
pub fn run_single_probed(
    sch: &FrozenSchedule,
    store: &BufferStore,
    probe: &mut dyn Probe,
) -> Result<(), ExecError> {
    mha_sched::validate(sch, None)?;
    probe.begin_run(sch, "exec-single");
    let t0 = Instant::now();
    let ops = sch.ops();
    for &i in sch.topo_order() {
        let t = t0.elapsed().as_secs_f64();
        probe.op_ready(i, t);
        probe.op_start(i, t);
        execute_op(&ops[i as usize].kind, store);
        probe.op_end(i, t0.elapsed().as_secs_f64());
    }
    probe.end_run(t0.elapsed().as_secs_f64());
    Ok(())
}

/// Executes the unfinished suffix of `sch` sequentially, skipping ops
/// `journal` already records and appending each newly retired op.
///
/// With an empty journal this is [`run_single`] plus journaling; with a
/// partially filled one it is crash recovery: journaled ops' byte effects
/// are already durable in `store` (ops are journaled only after they fully
/// execute), so only the suffix runs — which is what keeps recovery
/// byte-exact even for non-idempotent `Reduce` ops. Fails with
/// [`ExecError::Journal`] if the journal is not a valid partial execution
/// of `sch`.
pub fn run_single_journaled(
    sch: &FrozenSchedule,
    store: &BufferStore,
    journal: &CompletionJournal,
) -> Result<(), ExecError> {
    run_single_limited(sch, store, journal, usize::MAX)
}

/// Finishes a crashed run from its journal: [`run_single_journaled`] under
/// its recovery name. Safe to call again on an already-complete journal (a
/// no-op), which makes resume idempotent.
pub fn resume_single(
    sch: &FrozenSchedule,
    store: &BufferStore,
    journal: &CompletionJournal,
) -> Result<(), ExecError> {
    run_single_journaled(sch, store, journal)
}

/// [`run_single_journaled`] that deliberately crashes — returns
/// [`ExecError::Killed`] instead of executing further — once `journal`
/// holds `stop_after` entries. The op claimed at the stop point is *not*
/// executed and *not* journaled, exactly like a [`KillPlan`] victim dying
/// in the threaded pool, so the journal length at the kill is precisely
/// `stop_after` (when `stop_after < n_ops`). The deterministic kill used
/// by golden tests.
pub fn run_single_killed(
    sch: &FrozenSchedule,
    store: &BufferStore,
    journal: &CompletionJournal,
    stop_after: usize,
) -> Result<(), ExecError> {
    run_single_limited(sch, store, journal, stop_after)
}

fn run_single_limited(
    sch: &FrozenSchedule,
    store: &BufferStore,
    journal: &CompletionJournal,
    stop_after: usize,
) -> Result<(), ExecError> {
    mha_sched::validate(sch, None)?;
    let entries = journal.validate(sch)?;
    let n = sch.n_ops();
    let mut done = vec![false; n];
    for &c in &entries {
        done[c as usize] = true;
    }
    let mut retired = entries.len();
    let ops = sch.ops();
    for &i in sch.topo_order() {
        if done[i as usize] {
            continue;
        }
        if retired >= stop_after {
            return Err(ExecError::Killed {
                done: retired,
                total: n,
            });
        }
        execute_op(&ops[i as usize].kind, store);
        journal.record(i);
        retired += 1;
    }
    Ok(())
}

/// Executes `sch` on `threads` worker threads, honoring only the DAG's
/// dependency edges (any topological interleaving may occur).
pub fn run_threaded(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
) -> Result<(), ExecError> {
    run_threaded_inner(sch, store, threads, None, None, &[], None)
}

/// [`run_threaded`] with per-op completion journaling, resume-aware: ops
/// `journal` already records are pre-released (their successors' indegrees
/// seeded down via [`AtomicReadySet::from_completed`]) and only the
/// unfinished suffix executes. Each op is journaled after its byte effects
/// land and before any successor is released, so the journal is
/// dependency-closed at every instant — including mid-crash.
pub fn run_threaded_journaled(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
    journal: &CompletionJournal,
) -> Result<(), ExecError> {
    let completed = journal.validate(sch)?;
    run_threaded_inner(sch, store, threads, None, Some(journal), &completed, None)
}

/// Finishes a crashed run from its journal on the worker pool:
/// [`run_threaded_journaled`] under its recovery name. Idempotent — on an
/// already-complete journal it is a no-op.
pub fn resume_threaded(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
    journal: &CompletionJournal,
) -> Result<(), ExecError> {
    run_threaded_journaled(sch, store, threads, journal)
}

/// [`run_threaded_journaled`] under a deterministic kill plan: each victim
/// worker dies — via the same contained-panic release machinery as
/// [`ExecError::WorkerPanicked`] — instead of executing the op it just
/// claimed, once the journaled-op count reaches its threshold. The claimed
/// op stays unexecuted and unjournaled, so `resume_threaded` re-runs it
/// exactly once. Returns [`ExecError::Killed`] when a victim fired, or
/// `Ok` when execution finished before any threshold was reached (a late
/// kill point on a fast pool).
pub fn run_threaded_killed(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
    journal: &CompletionJournal,
    plan: &KillPlan,
) -> Result<(), ExecError> {
    let completed = journal.validate(sch)?;
    run_threaded_inner(
        sch,
        store,
        threads,
        None,
        Some(journal),
        &completed,
        Some(plan),
    )
}

/// [`run_threaded`] narrated through `probe` (`backend = "exec-threaded"`).
///
/// Workers record wall-clock per-op timestamps while running; the event
/// stream is replayed into `probe` in time order after the pool joins, so
/// the sink needs no synchronization.
pub fn run_threaded_probed(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
    probe: &mut dyn Probe,
) -> Result<(), ExecError> {
    run_threaded_inner(sch, store, threads, Some(probe), None, &[], None)
}

#[allow(clippy::too_many_arguments)]
fn run_threaded_inner(
    sch: &FrozenSchedule,
    store: &BufferStore,
    threads: usize,
    mut probe: Option<&mut dyn Probe>,
    journal: Option<&dyn JournalSink>,
    completed: &[u32],
    kill: Option<&KillPlan>,
) -> Result<(), ExecError> {
    assert!(threads > 0, "need at least one worker");
    mha_sched::validate(sch, None)?;
    let n = sch.n_ops();
    let base = completed.len();
    let todo = n - base;
    if let Some(p) = probe.as_deref_mut() {
        p.begin_run(sch, "exec-threaded");
    }
    if todo == 0 {
        if let Some(p) = probe {
            p.end_run(0.0);
        }
        return Ok(());
    }
    let (ready, frontier) = if completed.is_empty() {
        (AtomicReadySet::new(sch), sch.roots().to_vec())
    } else {
        AtomicReadySet::from_completed(sch, completed)
    };
    let done = AtomicUsize::new(0);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let killed = std::sync::atomic::AtomicBool::new(false);
    let (tx, rx) = channel::unbounded::<usize>();
    for &i in &frontier {
        if let Some(p) = probe.as_deref_mut() {
            p.op_ready(i, 0.0);
        }
        // The local `rx` keeps the channel open; a failed send here means
        // the world is broken in a way the stall check below will report.
        let _ = tx.send(i as usize);
    }

    // Timestamps (nanos + 1; 0 = never ran) are only recorded when a probe
    // is attached, so the unprobed path pays no clock reads.
    let timing = probe.is_some();
    let stamps: Vec<(AtomicU64, AtomicU64)> = if timing {
        (0..n)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect()
    } else {
        Vec::new()
    };
    let t0 = Instant::now();

    let panicked = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let rx = rx.clone();
            let tx = tx.clone();
            let kill_at = kill.and_then(|p| p.threshold(w));
            let (ready, done, poisoned, killed, stamps) =
                (&ready, &done, &poisoned, &killed, &stamps);
            handles.push(scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    if i == usize::MAX {
                        break;
                    }
                    if let Some(thr) = kill_at {
                        if base + done.load(Ordering::Acquire) >= thr {
                            // Die *before* executing the claimed op: it
                            // stays unexecuted and unjournaled, so resume
                            // re-runs it exactly once — the only safe kill
                            // point for non-idempotent Reduce ops. Release
                            // the surviving workers like the poison path.
                            killed.store(true, Ordering::Release);
                            for _ in 0..threads {
                                let _ = tx.send(usize::MAX);
                            }
                            break;
                        }
                    }
                    if timing {
                        stamps[i].0.store(nanos_since(t0), Ordering::Relaxed);
                    }
                    // Contain op panics: poison the run and release every
                    // worker instead of hanging peers on a queue nobody
                    // will ever feed again.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        execute_op(&sch.ops()[i].kind, store)
                    }));
                    if r.is_err() {
                        poisoned.store(true, Ordering::Release);
                        for _ in 0..threads {
                            let _ = tx.send(usize::MAX);
                        }
                        break;
                    }
                    if timing {
                        stamps[i].1.store(nanos_since(t0), Ordering::Relaxed);
                    }
                    // Journal after the op's effects are durable and before
                    // any successor can be released: at every instant the
                    // journal is a dependency-closed prefix in retire order.
                    if let Some(j) = journal {
                        j.op_retired(i as u32);
                    }
                    ready.complete(sch, i as u32, |s| {
                        // A send can only fail if the channel somehow died;
                        // the stall check below turns that into an error.
                        let _ = tx.send(s as usize);
                    });
                    if done.fetch_add(1, Ordering::AcqRel) + 1 == todo {
                        // All done: release every worker.
                        for _ in 0..threads {
                            let _ = tx.send(usize::MAX);
                        }
                    }
                }
            }));
        }
        handles.into_iter().any(|h| h.join().is_err())
    });

    if panicked || poisoned.load(Ordering::Acquire) {
        return Err(ExecError::WorkerPanicked);
    }
    let ran = done.load(Ordering::Acquire);
    if killed.load(Ordering::Acquire) && ran != todo {
        return Err(ExecError::Killed {
            done: base + ran,
            total: n,
        });
    }
    if ran != todo {
        return Err(ExecError::Stalled {
            done: base + ran,
            total: n,
        });
    }

    if let Some(p) = probe {
        // Replay the recorded spans in time order (starts before ends at
        // equal timestamps).
        let mut evs: Vec<(u64, bool, u32)> = Vec::with_capacity(2 * n);
        let mut makespan = 0u64;
        for (i, (s, e)) in stamps.iter().enumerate() {
            let (s, e) = (s.load(Ordering::Relaxed), e.load(Ordering::Relaxed));
            if s > 0 {
                let e = e.max(s);
                evs.push((s - 1, false, i as u32));
                evs.push((e - 1, true, i as u32));
                makespan = makespan.max(e - 1);
            }
        }
        evs.sort_unstable();
        for (t, is_end, op) in evs {
            let ts = t as f64 * 1e-9;
            if is_end {
                p.op_end(op, ts);
            } else {
                p.op_start(op, ts);
            }
        }
        p.end_run(makespan as f64 * 1e-9);
    }
    Ok(())
}

/// Nanoseconds since `t0`, offset by 1 so 0 can mean "never recorded".
fn nanos_since(t0: Instant) -> u64 {
    (t0.elapsed().as_nanos() as u64).saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};

    /// A chain of copies relaying a pattern through several buffers.
    fn relay_schedule(hops: usize) -> FrozenSchedule {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "relay");
        let bufs: Vec<_> = (0..=hops)
            .map(|i| b.private_buf(RankId(0), 16, format!("b{i}")))
            .collect();
        let mut prev = None;
        for w in bufs.windows(2) {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.copy(
                RankId(0),
                Loc::new(w[0], 0),
                Loc::new(w[1], 0),
                16,
                &deps,
                0,
            ));
        }
        b.finish().freeze()
    }

    #[test]
    fn single_executes_relay() {
        let sch = relay_schedule(5);
        let store = BufferStore::new(&sch);
        let pattern: Vec<u8> = (0..16).collect();
        store.fill(sch.buffers()[0].id, 0, &pattern);
        run_single(&sch, &store).unwrap();
        assert_eq!(store.read_all(sch.buffers()[5].id), pattern);
    }

    #[test]
    fn threaded_matches_single_on_relay() {
        let sch = relay_schedule(20);
        let pattern: Vec<u8> = (0..16).map(|x| x * 3).collect();
        for threads in [1, 2, 8] {
            let store = BufferStore::new(&sch);
            store.fill(sch.buffers()[0].id, 0, &pattern);
            run_threaded(&sch, &store, threads).unwrap();
            assert_eq!(store.read_all(sch.buffers()[20].id), pattern);
        }
    }

    #[test]
    fn panicking_op_surfaces_as_worker_panicked() {
        // Execute a 6-buffer relay against a store built from a 2-buffer
        // schedule: the third hop indexes a buffer the store never
        // allocated and panics inside a worker. The pool must contain
        // that panic and report it — not abort the process, and not hang
        // the remaining workers on a queue nobody will feed again.
        let sch = relay_schedule(5);
        let tiny = relay_schedule(1);
        let store = BufferStore::new(&tiny);
        let err = run_threaded(&sch, &store, 4).unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanicked), "got {err}");
    }

    #[test]
    fn stalled_error_reports_progress() {
        let err = ExecError::Stalled { done: 3, total: 7 };
        assert_eq!(
            err.to_string(),
            "threaded execution stalled: 3 of 7 ops ran"
        );
    }

    #[test]
    fn transfer_moves_bytes_between_ranks() {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "x");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(1), 8, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::AllRails,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let store = BufferStore::new(&sch);
        store.fill(s, 0, &[5; 8]);
        run_threaded(&sch, &store, 4).unwrap();
        assert_eq!(store.read_all(d), vec![5; 8]);
    }

    #[test]
    fn reduce_sums_f64() {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "r");
        let acc = b.private_buf(RankId(0), 16, "acc");
        let op = b.private_buf(RankId(0), 16, "op");
        b.reduce(
            RankId(0),
            Loc::new(acc, 0),
            Loc::new(op, 0),
            16,
            DType::F64,
            RedOp::Sum,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let store = BufferStore::new(&sch);
        let a: Vec<u8> = [1.25f64, -2.0]
            .iter()
            .flat_map(|v| v.to_ne_bytes())
            .collect();
        let o: Vec<u8> = [0.75f64, 7.0]
            .iter()
            .flat_map(|v| v.to_ne_bytes())
            .collect();
        store.fill(acc, 0, &a);
        store.fill(op, 0, &o);
        run_single(&sch, &store).unwrap();
        let out = store.read_all(acc);
        let v0 = f64::from_ne_bytes(out[0..8].try_into().unwrap());
        let v1 = f64::from_ne_bytes(out[8..16].try_into().unwrap());
        assert_eq!((v0, v1), (2.0, 5.0));
    }

    #[test]
    fn reduce_max_f32() {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "m");
        let acc = b.private_buf(RankId(0), 8, "acc");
        let op = b.private_buf(RankId(0), 8, "op");
        b.reduce(
            RankId(0),
            Loc::new(acc, 0),
            Loc::new(op, 0),
            8,
            DType::F32,
            RedOp::Max,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let store = BufferStore::new(&sch);
        let a: Vec<u8> = [1.0f32, 9.0].iter().flat_map(|v| v.to_ne_bytes()).collect();
        let o: Vec<u8> = [3.0f32, 2.0].iter().flat_map(|v| v.to_ne_bytes()).collect();
        store.fill(acc, 0, &a);
        store.fill(op, 0, &o);
        run_single(&sch, &store).unwrap();
        let out = store.read_all(acc);
        let v0 = f32::from_ne_bytes(out[0..4].try_into().unwrap());
        let v1 = f32::from_ne_bytes(out[4..8].try_into().unwrap());
        assert_eq!((v0, v1), (3.0, 9.0));
    }

    #[test]
    fn invalid_schedule_rejected_by_both() {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "bad");
        let s = b.private_buf(RankId(0), 4, "s");
        let d = b.private_buf(RankId(1), 4, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            4,
            Channel::Cma, // CMA across nodes: invalid
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let store = BufferStore::new(&sch);
        assert!(matches!(
            run_single(&sch, &store),
            Err(ExecError::InvalidSchedule(_))
        ));
        assert!(matches!(
            run_threaded(&sch, &store, 2),
            Err(ExecError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let sch = ScheduleBuilder::new(ProcGrid::single_node(1), "empty")
            .finish()
            .freeze();
        let store = BufferStore::new(&sch);
        run_single(&sch, &store).unwrap();
        run_threaded(&sch, &store, 4).unwrap();
    }

    /// An allreduce-flavored chain: repeated non-idempotent Reduce ops
    /// folding `terms` operand buffers into one accumulator. Any op that
    /// re-executes after a crash corrupts the sum — the sharpest probe of
    /// kill/resume exactness.
    fn reduce_chain(terms: usize) -> (FrozenSchedule, Vec<mha_sched::BufId>) {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "chain");
        let acc = b.private_buf(RankId(0), 8, "acc");
        let mut bufs = vec![acc];
        let mut prev = None;
        for i in 0..terms {
            let op_buf = b.private_buf(RankId(0), 8, format!("t{i}"));
            bufs.push(op_buf);
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.reduce(
                RankId(0),
                Loc::new(acc, 0),
                Loc::new(op_buf, 0),
                8,
                DType::F64,
                RedOp::Sum,
                &deps,
                i as u32,
            ));
        }
        (b.finish().freeze(), bufs)
    }

    fn fill_chain(sch: &FrozenSchedule, bufs: &[mha_sched::BufId]) -> BufferStore {
        let store = BufferStore::new(sch);
        store.fill(bufs[0], 0, &1.0f64.to_ne_bytes());
        for (i, &b) in bufs[1..].iter().enumerate() {
            store.fill(b, 0, &((i + 2) as f64).to_ne_bytes());
        }
        store
    }

    fn acc_value(store: &BufferStore, acc: mha_sched::BufId) -> f64 {
        f64::from_ne_bytes(store.read_all(acc).try_into().unwrap())
    }

    #[test]
    fn single_kill_resume_is_exact_on_reduce_chain() {
        // Sum 1 + 2 + ... + 11 = 66; kill at every possible point.
        let (sch, bufs) = reduce_chain(10);
        for k in 0..sch.n_ops() {
            let store = fill_chain(&sch, &bufs);
            let journal = CompletionJournal::for_schedule(&sch);
            let err = run_single_killed(&sch, &store, &journal, k).unwrap_err();
            assert!(matches!(err, ExecError::Killed { done, total: 10 } if done == k));
            assert_eq!(journal.len(), k);
            resume_single(&sch, &store, &journal).unwrap();
            assert!(journal.is_complete());
            assert_eq!(acc_value(&store, bufs[0]), 66.0, "kill at {k}");
        }
    }

    #[test]
    fn single_kill_past_end_completes() {
        let (sch, bufs) = reduce_chain(4);
        let store = fill_chain(&sch, &bufs);
        let journal = CompletionJournal::for_schedule(&sch);
        run_single_killed(&sch, &store, &journal, 99).unwrap();
        assert!(journal.is_complete());
        assert_eq!(acc_value(&store, bufs[0]), 15.0);
    }

    #[test]
    fn threaded_kill_resume_is_exact() {
        let (sch, bufs) = reduce_chain(12);
        for seed in 0..20u64 {
            let plan = KillPlan::seeded(seed, sch.n_ops(), 4);
            let store = fill_chain(&sch, &bufs);
            let journal = CompletionJournal::for_schedule(&sch);
            match run_threaded_killed(&sch, &store, 4, &journal, &plan) {
                Err(ExecError::Killed { done, total }) => {
                    assert_eq!(done, journal.len());
                    assert_eq!(total, sch.n_ops());
                    assert!(done < total);
                    resume_threaded(&sch, &store, 4, &journal).unwrap();
                }
                Ok(()) => assert!(journal.is_complete()),
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(journal.is_complete());
            assert_eq!(acc_value(&store, bufs[0]), 91.0, "seed {seed}");
        }
    }

    #[test]
    fn resume_is_idempotent() {
        let (sch, bufs) = reduce_chain(8);
        let store = fill_chain(&sch, &bufs);
        let journal = CompletionJournal::for_schedule(&sch);
        let _ = run_single_killed(&sch, &store, &journal, 3);
        resume_single(&sch, &store, &journal).unwrap();
        let after_once = acc_value(&store, bufs[0]);
        resume_single(&sch, &store, &journal).unwrap();
        resume_threaded(&sch, &store, 4, &journal).unwrap();
        assert_eq!(acc_value(&store, bufs[0]), after_once);
        assert_eq!(journal.len(), sch.n_ops());
    }

    #[test]
    fn bad_journal_is_rejected_typed() {
        let (sch, bufs) = reduce_chain(4);
        let store = fill_chain(&sch, &bufs);
        // Claims op 2 complete while its dependency (op 1) is not.
        let journal = CompletionJournal::from_entries(sch.n_ops(), vec![0, 2]);
        let err = run_single_journaled(&sch, &store, &journal).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Journal(JournalError::DepIncomplete { op: 2, dep: 1 })
        ));
        let err = run_threaded_journaled(&sch, &store, 2, &journal).unwrap_err();
        assert!(matches!(err, ExecError::Journal(_)));
    }

    #[test]
    fn single_and_threaded_journals_are_interchangeable() {
        // Crash on the threaded pool, recover on the single executor.
        let (sch, bufs) = reduce_chain(12);
        let plan = KillPlan::kill_all(4, 4);
        let store = fill_chain(&sch, &bufs);
        let journal = CompletionJournal::for_schedule(&sch);
        match run_threaded_killed(&sch, &store, 4, &journal, &plan) {
            Err(ExecError::Killed { .. }) | Ok(()) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        resume_single(&sch, &store, &journal).unwrap();
        assert_eq!(acc_value(&store, bufs[0]), 91.0);
    }

    #[test]
    fn wide_fanout_executes_fully() {
        // One producer, 64 independent consumers, one joiner.
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "fan");
        let src = b.private_buf(RankId(0), 8, "src");
        let tmp = b.private_buf(RankId(0), 8, "tmp");
        let root = b.copy(RankId(0), Loc::new(src, 0), Loc::new(tmp, 0), 8, &[], 0);
        let mut mids = Vec::new();
        let mut mid_bufs = Vec::new();
        for i in 0..64 {
            let d = b.private_buf(RankId(0), 8, format!("d{i}"));
            mid_bufs.push(d);
            mids.push(b.copy(RankId(0), Loc::new(src, 0), Loc::new(d, 0), 8, &[root], 1));
        }
        let last = b.private_buf(RankId(0), 8, "last");
        b.copy(
            RankId(0),
            Loc::new(mid_bufs[63], 0),
            Loc::new(last, 0),
            8,
            &mids,
            2,
        );
        let sch = b.finish().freeze();
        let store = BufferStore::new(&sch);
        store.fill(src, 0, &[7; 8]);
        run_threaded(&sch, &store, 8).unwrap();
        assert_eq!(store.read_all(last), vec![7; 8]);
    }
}
