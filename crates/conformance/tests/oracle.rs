//! The differential-oracle acceptance bar: ≥ 200 random configurations,
//! all three families, zero disagreements, plus the model envelope.

use mha_conformance::{run_oracle, Family, OracleConfig};

#[test]
fn oracle_sweep_has_zero_disagreements() {
    let cfg = OracleConfig::from_env();
    assert!(cfg.cases >= 200, "acceptance bar requires >= 200 cases");
    let report = run_oracle(&cfg);
    assert_eq!(report.cases, cfg.cases);
    for f in Family::ALL {
        assert!(
            report.by_family[f.index()] >= cfg.cases / 4,
            "{f:?} under-covered: {:?}",
            report.by_family
        );
    }
    assert!(
        report.is_clean(),
        "{} disagreement(s):\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n")
    );
}
