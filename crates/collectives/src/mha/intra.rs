//! MHA-intra: the multi-HCA aware intra-node Allgather (Section 3.1).
//!
//! Direct Spread gives every rank `L − 1` independent fetches. Instead of
//! the CPU performing all of them over CMA, each rank offloads `d` of them
//! to the node's HCAs as NIC-loopback RDMA transfers (striped across all
//! rails for large messages). The offloaded transfers have no dependencies
//! — block sources are send buffers, ready at t = 0 — so they run fully in
//! parallel with the CPU's CMA chain, and with `d` chosen by Eq. 1 both
//! finish together (Figure 4b: four ranks finish in two "steps" instead of
//! three).

use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::ctx::{BuildError, Built, Ctx};
use crate::mha::offload::{resolve_offload, Offload};

/// Builds the MHA-intra Allgather for a single-node grid.
///
/// # Errors
///
/// [`BuildError::BadParameter`] if `grid` spans more than one node — use
/// [`crate::mha::build_mha_inter`] for multi-node layouts.
pub fn build_mha_intra(
    grid: ProcGrid,
    msg: usize,
    policy: Offload,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    if grid.nodes() != 1 {
        return Err(BuildError::BadParameter(format!(
            "MHA-intra is a single-node design; got {} nodes",
            grid.nodes()
        )));
    }
    let d = resolve_offload(policy, spec, grid.ppn(), msg);
    let mut ctx = Ctx::new(grid, msg, format!("mha-intra(d={d})"));
    let topo = mha_sched::Topology::from_fanouts(&[grid.ppn()]);
    crate::compose::emit_plan(
        &mut ctx,
        &topo,
        &crate::compose::ComposePlan::gather(policy),
        Some(spec),
        None,
    )?;
    Ok(ctx.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_sched::{Channel, OpKind};
    use mha_simnet::Simulator;

    fn thor() -> ClusterSpec {
        ClusterSpec::thor()
    }

    #[test]
    fn mha_intra_is_correct_for_all_policies() {
        for l in [1u32, 2, 4, 7, 8] {
            for policy in [Offload::None, Offload::Fixed(2), Offload::Auto] {
                let built = build_mha_intra(ProcGrid::single_node(l), 32, policy, &thor()).unwrap();
                assert_allgather_correct(&built);
            }
        }
    }

    #[test]
    fn multi_node_grid_rejected() {
        let err = build_mha_intra(ProcGrid::new(2, 2), 8, Offload::Auto, &thor()).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter(_)));
    }

    #[test]
    fn offloaded_transfers_have_no_dependencies() {
        let built = build_mha_intra(
            ProcGrid::single_node(4),
            1 << 20,
            Offload::Fixed(2),
            &thor(),
        )
        .unwrap();
        for op in built.sched.ops() {
            if let OpKind::Transfer {
                channel: Channel::AllRails,
                ..
            } = op.kind
            {
                assert!(op.deps.is_empty(), "HCA transfer {:?} has deps", op.id);
            }
        }
    }

    #[test]
    fn fixed_d_splits_transfers_as_requested() {
        let l = 6u32;
        let d = 2u32;
        let built =
            build_mha_intra(ProcGrid::single_node(l), 64, Offload::Fixed(d), &thor()).unwrap();
        let stats = built.sched.stats();
        assert_eq!(stats.rail_transfers, (l * d) as usize);
        assert_eq!(stats.cma_transfers, (l * (l - 1 - d)) as usize);
        assert_eq!(stats.copies, l as usize); // self copies
    }

    #[test]
    fn offload_beats_plain_direct_spread_for_large_messages() {
        // The headline of Section 5.2, at simulator level.
        let spec = thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let msg = 4 << 20;
        for l in [2u32, 4, 8] {
            let grid = ProcGrid::single_node(l);
            let none = build_mha_intra(grid, msg, Offload::None, &spec).unwrap();
            let auto = build_mha_intra(grid, msg, Offload::Auto, &spec).unwrap();
            let t_none = sim.run(&none.sched).unwrap().latency_us();
            let t_auto = sim.run(&auto.sched).unwrap().latency_us();
            assert!(
                t_auto < t_none * 0.9,
                "L={l}: offload {t_auto} vs none {t_none}"
            );
        }
    }

    #[test]
    fn improvement_shrinks_as_processes_grow() {
        // Section 5.2's trend: fixed HCA capacity serves more ranks.
        let spec = thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let msg = 1 << 20;
        let gain = |l: u32| {
            let grid = ProcGrid::single_node(l);
            let none = build_mha_intra(grid, msg, Offload::None, &spec).unwrap();
            let auto = build_mha_intra(grid, msg, Offload::Auto, &spec).unwrap();
            let t_none = sim.run(&none.sched).unwrap().latency_us();
            let t_auto = sim.run(&auto.sched).unwrap().latency_us();
            (t_none - t_auto) / t_none
        };
        let g2 = gain(2);
        let g16 = gain(16);
        assert!(g2 > g16, "gain should decay: {g2} vs {g16}");
    }

    #[test]
    fn single_rank_is_self_copy_only() {
        let built = build_mha_intra(ProcGrid::single_node(1), 16, Offload::Auto, &thor()).unwrap();
        assert_eq!(built.sched.ops().len(), 1);
    }
}
