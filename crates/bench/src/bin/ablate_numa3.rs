//! The composer-built 3-level NUMA sweep: NUMA-aware (with and without
//! cross-socket HCA offload) versus the NUMA-blind 2-level design, every
//! schedule built by the generic hierarchical composer over an explicit
//! topology tree and keyed by the full tree digest. Each 3-level cell is
//! also validated against the per-level α–β model
//! ([`mha_model::composed_latency`]): the simulated makespan must stay
//! within the `MHA_MODEL_ENVELOPE` (default 2×) envelope of the
//! prediction, so the sweep doubles as a model-conformance gate.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::MhaInterConfig;
use mha_collectives::{build_composed, ComposePlan};
use mha_model::{composed_latency, ModelParams};
use mha_sched::{ProcGrid, Topology};
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor_numa();
    let grid = ProcGrid::new(4, 16);
    // The NUMA spec's own tree: 4 nodes × 2 sockets × 8 ranks, with real
    // per-level link parameters (rails / cross-socket / CMA) for the model.
    let topo3 = spec.topology_of(&grid);
    assert_eq!(topo3.depth(), 3, "thor_numa must induce a 3-level tree");
    let topo2 = Topology::two_level(grid.nodes(), grid.ppn());
    let sizes = size_sweep(4096, 1 << 20);

    let mut cells = Vec::new();
    for &msg in &sizes {
        let plans: [(&str, &Topology, ComposePlan); 3] = [
            (
                "blind",
                &topo2,
                ComposePlan::mha_inter(MhaInterConfig::default()),
            ),
            ("aware", &topo3, ComposePlan::numa3(true)),
            ("no_offload", &topo3, ComposePlan::numa3(false)),
        ];
        for (label, topo, plan) in plans {
            let key = ConfigKey::for_topology(format!("numa3/{label}"), topo, msg, &spec);
            let (spec2, topo, plan) = (spec.clone(), topo.clone(), plan.clone());
            cells.push(CampaignPoint::sim(label, key, spec.clone(), move || {
                build_composed(&topo, msg, &plan, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| format!("{e:?}"))
            }));
        }
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();

    let envelope: f64 = std::env::var("MHA_MODEL_ENVELOPE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let p = ModelParams::from_spec(&spec);
    let mut t = Table::new(
        "Composer-built 3-level NUMA-aware vs 2-level NUMA-blind, 4 nodes x 16 PPN \
         (dual-socket; 3-level cells checked against the per-level model)",
        "msg_bytes",
        vec![
            "2level_blind_us".into(),
            "3level_numa_us".into(),
            "3level_no_offload_us".into(),
            "gain_pct".into(),
            "model_ratio".into(),
        ],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        let t_blind = report.value(3 * i);
        let t_aware = report.value(3 * i + 1);
        let t_noload = report.value(3 * i + 2);
        // The model gate: both 3-level cells inside the envelope.
        let mut aware_ratio = f64::NAN;
        for (off, cell, sim_s) in [
            (true, 3 * i + 1, report.makespan(3 * i + 1)),
            (false, 3 * i + 2, report.makespan(3 * i + 2)),
        ] {
            let predicted = composed_latency(&p, &topo3, &ComposePlan::numa3(off), msg)
                .expect("numa3 plan must be priceable");
            let ratio = sim_s / predicted;
            assert!(
                (1.0 / envelope..=envelope).contains(&ratio),
                "cell {cell} (msg={msg}, offload={off}): simulated {sim_s:.3e}s vs \
                 model {predicted:.3e}s (ratio {ratio:.2} outside ±{envelope}x)"
            );
            if off {
                aware_ratio = ratio;
            }
        }
        t.push(
            fmt_bytes(msg),
            vec![
                t_blind,
                t_aware,
                t_noload,
                (1.0 - t_aware / t_blind) * 100.0,
                aware_ratio,
            ],
        );
    }
    mha_bench::emit(&t, "ablate_numa3");
}
