//! Ablation: how the MHA designs scale with the number of HCAs per node —
//! the ThetaGPU motivation (up to 8 rails, Section 1.1). Not a paper
//! figure; quantifies the design's headroom on denser multi-rail nodes.

use mha_apps::report::{fmt_bytes, Table};
use mha_collectives::mha::{build_mha_inter, build_mha_intra, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let msg = 1 << 20;
    let mut intra = Table::new(
        "Ablation: MHA-intra latency (us) vs rail count, 8 processes, 1 MB",
        "rails",
        vec!["no_offload".into(), "mha_auto".into(), "gain_pct".into()],
    );
    let mut inter = Table::new(
        "Ablation: MHA-inter latency (us) vs rail count, 8 nodes x 8 PPN, 1 MB",
        "rails",
        vec!["latency_us".into()],
    );
    for rails in [1u8, 2, 4, 8] {
        let spec = ClusterSpec::thor_with_rails(rails);
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::single_node(8);
        let none = build_mha_intra(grid, msg, Offload::None, &spec).unwrap();
        let auto = build_mha_intra(grid, msg, Offload::Auto, &spec).unwrap();
        let t_none = sim.run(&none.sched).unwrap().latency_us();
        let t_auto = sim.run(&auto.sched).unwrap().latency_us();
        intra.push(
            rails.to_string(),
            vec![t_none, t_auto, (1.0 - t_auto / t_none) * 100.0],
        );
        let grid = ProcGrid::new(8, 8);
        let built = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        inter.push(
            rails.to_string(),
            vec![sim.run(&built.sched).unwrap().latency_us()],
        );
    }
    let _ = fmt_bytes(msg);
    mha_bench::emit(&intra, "ablate_rails_intra");
    mha_bench::emit(&inter, "ablate_rails_inter");
}
