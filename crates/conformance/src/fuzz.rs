//! A deterministic schedule fuzzer with greedy shrinking — a mutation-kill
//! harness for the checker stack itself.
//!
//! The oracle proves the checkers pass on *correct* schedules; this module
//! proves they *fail* on broken ones. Known-good schedules (built by the
//! collective algorithms) are mutated — drop a dependency edge, swap a
//! transfer's endpoints, shrink a copy range, shift a destination offset,
//! aim at a nonexistent rail — and every mutant must be killed by at least
//! one layer of [`mha_sched::validate`], [`mha_sched::check_races`] or
//! [`mha_exec::verify_allgather`]. Killed mutants are greedily shrunk
//! ([`shrink`]) to a minimal op set that still fails, so a checker
//! regression surfaces as a small, readable reproduction.
//!
//! Everything is deterministic: mutants are either enumerated
//! ([`seeded_mutants`]) or drawn from a seeded [`StdRng`].

use mha_collectives::Built;
use mha_exec::Mode;
use mha_sched::{
    BufId, BufKind, BufferDecl, Channel, OpId, OpKind, ProcGrid, Schedule, ScheduleBuilder,
};
use rand::{rngs::StdRng, Rng};

/// A mutable, rebuildable description of a schedule: the builder's inputs,
/// round-trippable through [`SchedSpec::from_schedule`] / [`SchedSpec::build`].
#[derive(Debug, Clone)]
pub struct SchedSpec {
    grid: ProcGrid,
    name: String,
    bufs: Vec<BufferDecl>,
    /// The op list — public so mutations and assertions can inspect it.
    pub ops: Vec<OpSpec>,
}

/// One op's builder inputs.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// What the op does.
    pub kind: OpKind,
    /// Backward dependencies.
    pub deps: Vec<OpId>,
    /// Algorithm step (kept for trace fidelity).
    pub step: u32,
    /// Human-readable label.
    pub label: String,
}

impl SchedSpec {
    /// Decomposes a finished schedule back into builder inputs.
    pub fn from_schedule(sch: &Schedule) -> Self {
        SchedSpec {
            grid: *sch.grid(),
            name: format!("{}+mutant", sch.name()),
            bufs: sch.buffers().to_vec(),
            ops: sch
                .ops()
                .iter()
                .map(|op| OpSpec {
                    kind: op.kind.clone(),
                    deps: op.deps.clone(),
                    step: op.step,
                    label: op.label.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds a [`Schedule`] through the public [`ScheduleBuilder`] API.
    /// Buffer ids are dense creation-order indices, so re-declaring the
    /// buffers in id order reproduces the original ids exactly.
    pub fn build(&self) -> Schedule {
        let mut b = ScheduleBuilder::new(self.grid, self.name.clone());
        for (i, decl) in self.bufs.iter().enumerate() {
            let id = match (decl.kind, decl.home_socket) {
                (BufKind::Private(r), _) => b.private_buf(r, decl.len, decl.label.clone()),
                (BufKind::NodeShared(n), None) => b.shared_buf(n, decl.len, decl.label.clone()),
                (BufKind::NodeShared(n), Some(s)) => {
                    b.shared_buf_homed(n, s, decl.len, decl.label.clone())
                }
            };
            assert_eq!(id.index(), i, "buffer ids must survive the round trip");
        }
        for op in &self.ops {
            b.push(op.kind.clone(), &op.deps, op.step, op.label.clone());
        }
        b.finish()
    }

    /// Number of ops.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }
}

/// One schedule mutation. All index fields refer to positions in
/// [`SchedSpec::ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove op `op`'s `dep`-th dependency edge.
    DropEdge {
        /// Target op index.
        op: usize,
        /// Index into that op's dependency list.
        dep: usize,
    },
    /// Swap a transfer's source and destination (ranks and locations).
    SwapEndpoints {
        /// Target op index (must be a transfer between distinct ranks).
        op: usize,
    },
    /// Shorten a transfer/copy by one byte — the classic off-by-one-chunk.
    ShrinkLen {
        /// Target op index.
        op: usize,
    },
    /// Shift a transfer/copy destination offset by one byte.
    ShiftDstOffset {
        /// Target op index.
        op: usize,
    },
    /// Point a rail transfer at a rail the cluster does not have.
    BadRail {
        /// Target op index (must use a rail channel).
        op: usize,
    },
}

/// Applies `m` to `spec`, returning the mutant — or `None` when the
/// mutation does not apply to that op (wrong kind, no deps, length 0, …).
pub fn apply(spec: &SchedSpec, m: Mutation) -> Option<SchedSpec> {
    let mut out = spec.clone();
    match m {
        Mutation::DropEdge { op, dep } => {
            let deps = &mut out.ops.get_mut(op)?.deps;
            if dep >= deps.len() {
                return None;
            }
            deps.remove(dep);
        }
        Mutation::SwapEndpoints { op } => match &mut out.ops.get_mut(op)?.kind {
            OpKind::Transfer {
                src_rank,
                dst_rank,
                src,
                dst,
                ..
            } if src_rank != dst_rank => {
                std::mem::swap(src_rank, dst_rank);
                std::mem::swap(src, dst);
            }
            _ => return None,
        },
        Mutation::ShrinkLen { op } => match &mut out.ops.get_mut(op)?.kind {
            OpKind::Transfer { len, .. } | OpKind::Copy { len, .. } if *len > 1 => *len -= 1,
            _ => return None,
        },
        Mutation::ShiftDstOffset { op } => match &mut out.ops.get_mut(op)?.kind {
            OpKind::Transfer { dst, .. } | OpKind::Copy { dst, .. } => dst.offset += 1,
            _ => return None,
        },
        Mutation::BadRail { op } => match &mut out.ops.get_mut(op)?.kind {
            OpKind::Transfer { channel, .. }
                if matches!(channel, Channel::Rail(_) | Channel::AllRails) =>
            {
                *channel = Channel::Rail(200);
            }
            _ => return None,
        },
    }
    Some(out)
}

/// Which checker layer killed a mutant (or none did).
#[derive(Debug)]
pub enum Verdict {
    /// Structural validation rejected the schedule.
    Validate(String),
    /// The race checker found this many write conflicts.
    Race(usize),
    /// Execution produced non-MPI output.
    Verify(String),
    /// Every checker passed — the mutation was semantically harmless.
    Survived,
}

impl Verdict {
    /// Whether some checker caught the mutant.
    pub fn killed(&self) -> bool {
        !matches!(self, Verdict::Survived)
    }

    /// The checker layer, ignoring the payload — shrinking preserves this.
    fn layer(&self) -> u8 {
        match self {
            Verdict::Validate(_) => 0,
            Verdict::Race(_) => 1,
            Verdict::Verify(_) => 2,
            Verdict::Survived => 3,
        }
    }
}

/// A base schedule plus everything needed to judge its mutants.
#[derive(Debug, Clone)]
pub struct FuzzTarget {
    /// The pristine builder inputs mutations start from.
    pub spec: SchedSpec,
    /// Per-rank send buffers (for verification).
    pub send: Vec<BufId>,
    /// Per-rank receive buffers (for verification).
    pub recv: Vec<BufId>,
    /// Per-rank contribution size in bytes.
    pub msg: usize,
    /// Rail count validation checks against.
    pub rails: u8,
}

impl FuzzTarget {
    /// Wraps a built collective as a fuzz target. The base must itself
    /// survive every checker (asserted), or kills would be meaningless.
    pub fn from_built(built: &Built, rails: u8) -> Self {
        let target = FuzzTarget {
            spec: SchedSpec::from_schedule(&built.sched),
            send: built.send.clone(),
            recv: built.recv.clone(),
            msg: built.msg,
            rails,
        };
        let verdict = judge(&target, &target.spec);
        assert!(
            !verdict.killed(),
            "base schedule must pass all checkers, got {verdict:?}"
        );
        target
    }
}

/// Runs a (possibly mutated) spec through the checker stack in order:
/// structural validation, race detection, then single-threaded execution
/// with byte verification.
pub fn judge(target: &FuzzTarget, spec: &SchedSpec) -> Verdict {
    let sch = spec.build();
    if let Err(e) = mha_sched::validate(&sch, Some(target.rails)) {
        return Verdict::Validate(e.to_string());
    }
    let races = mha_sched::check_races(&sch);
    if !races.is_empty() {
        return Verdict::Race(races.len());
    }
    let frozen = sch.freeze();
    match mha_exec::verify_allgather(
        &frozen,
        &target.send,
        &target.recv,
        target.msg,
        Mode::Single,
    ) {
        Err(e) => Verdict::Verify(format!("{e:?}")),
        Ok(()) => Verdict::Survived,
    }
}

/// Removes op `j`, rewiring its successors onto its dependencies.
fn remove_op(spec: &SchedSpec, j: usize) -> SchedSpec {
    let jdeps = spec.ops[j].deps.clone();
    let remap = |d: OpId| -> OpId {
        if d.index() > j {
            OpId::from(d.index() - 1)
        } else {
            d
        }
    };
    let mut out = spec.clone();
    out.ops = spec
        .ops
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != j)
        .map(|(_, op)| {
            let mut deps: Vec<OpId> = Vec::with_capacity(op.deps.len());
            for &d in &op.deps {
                if d.index() == j {
                    deps.extend(jdeps.iter().copied());
                } else {
                    deps.push(d);
                }
            }
            let mut deps: Vec<OpId> = deps.into_iter().map(remap).collect();
            deps.sort_unstable();
            deps.dedup();
            OpSpec { deps, ..op.clone() }
        })
        .collect();
    out
}

/// Greedily shrinks a killed mutant: repeatedly removes single ops
/// (successors inherit the removed op's dependencies) while the result is
/// still killed *by the same checker layer* — a validation kill must stay
/// a validation kill, a race a race — so the minimal reproduction points
/// at the layer that actually caught the bug. The returned spec is
/// 1-minimal: removing any one more op changes or loses the verdict.
pub fn shrink(target: &FuzzTarget, killed: &SchedSpec) -> SchedSpec {
    let layer = judge(target, killed).layer();
    assert_ne!(
        layer,
        Verdict::Survived.layer(),
        "can only shrink a killed mutant"
    );
    let mut cur = killed.clone();
    loop {
        let mut improved = false;
        let mut j = 0;
        while j < cur.ops.len() {
            let cand = remove_op(&cur, j);
            if judge(target, &cand).layer() == layer {
                cur = cand;
                improved = true;
            } else {
                j += 1;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Enumerates one deterministic mutant per mutation class applicable to
/// `spec` (the seeded mutants the kill-rate acceptance bar is measured
/// on). Each entry is `(class name, mutation)`.
pub fn seeded_mutants(spec: &SchedSpec) -> Vec<(&'static str, Mutation)> {
    let mut out = Vec::new();
    let first = |pred: &dyn Fn(&OpSpec) -> bool| spec.ops.iter().position(pred);
    if let Some(op) = first(
        &|o| matches!(&o.kind, OpKind::Transfer { src_rank, dst_rank, .. } if src_rank != dst_rank),
    ) {
        out.push(("swap-endpoints", Mutation::SwapEndpoints { op }));
    }
    if let Some(op) = first(
        &|o| matches!(&o.kind, OpKind::Transfer { len, .. } | OpKind::Copy { len, .. } if *len > 1),
    ) {
        out.push(("shrink-len", Mutation::ShrinkLen { op }));
        out.push(("shift-dst-offset", Mutation::ShiftDstOffset { op }));
    }
    if let Some(op) = first(&|o| {
        matches!(
            &o.kind,
            OpKind::Transfer {
                channel: Channel::Rail(_) | Channel::AllRails,
                ..
            }
        )
    }) {
        out.push(("bad-rail", Mutation::BadRail { op }));
    }
    out
}

/// Finds a dependency edge whose removal is caught by a checker (the
/// orphaned-op seeded mutant: a real algorithm must have at least one
/// load-bearing edge). Returns the mutation, or `None` if every single
/// edge is redundant — which would itself be a red flag for the base.
pub fn find_killable_edge_drop(target: &FuzzTarget) -> Option<Mutation> {
    for (op, spec_op) in target.spec.ops.iter().enumerate() {
        for dep in 0..spec_op.deps.len() {
            let m = Mutation::DropEdge { op, dep };
            if let Some(mutant) = apply(&target.spec, m) {
                if judge(target, &mutant).killed() {
                    return Some(m);
                }
            }
        }
    }
    None
}

/// Draws a random applicable mutation for `spec` (deterministic given the
/// rng state); `None` if the drawn class has no applicable op after a few
/// retries.
pub fn random_mutation(rng: &mut StdRng, spec: &SchedSpec) -> Option<Mutation> {
    for _ in 0..16 {
        let op = rng.gen_range(0..spec.ops.len());
        let m = match rng.gen_range(0..5u32) {
            0 => {
                let n = spec.ops[op].deps.len();
                if n == 0 {
                    continue;
                }
                Mutation::DropEdge {
                    op,
                    dep: rng.gen_range(0..n),
                }
            }
            1 => Mutation::SwapEndpoints { op },
            2 => Mutation::ShrinkLen { op },
            3 => Mutation::ShiftDstOffset { op },
            _ => Mutation::BadRail { op },
        };
        if apply(spec, m).is_some() {
            return Some(m);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_collectives::AllgatherAlgo;
    use mha_simnet::ClusterSpec;

    fn ring_target() -> FuzzTarget {
        let spec = ClusterSpec::thor();
        let built = AllgatherAlgo::Ring
            .build(ProcGrid::new(2, 2), 64, &spec)
            .unwrap();
        FuzzTarget::from_built(&built, spec.rails)
    }

    #[test]
    fn round_trip_preserves_the_schedule() {
        let target = ring_target();
        let rebuilt = target.spec.build();
        mha_sched::validate(&rebuilt, Some(2)).unwrap();
        let frozen = rebuilt.freeze();
        mha_exec::verify_allgather(&frozen, &target.send, &target.recv, 64, Mode::Single).unwrap();
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let target = ring_target();
        assert!(apply(&target.spec, Mutation::DropEdge { op: 0, dep: 99 }).is_none());
        let compute_free = target
            .spec
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::Copy { .. }));
        if let Some(op) = compute_free {
            assert!(apply(&target.spec, Mutation::BadRail { op }).is_none());
        }
    }

    #[test]
    fn shrinking_a_bad_rail_mutant_isolates_the_bad_op() {
        let target = ring_target();
        let m = seeded_mutants(&target.spec)
            .into_iter()
            .find(|(name, _)| *name == "bad-rail")
            .expect("ring has rail transfers")
            .1;
        let mutant = apply(&target.spec, m).unwrap();
        assert!(judge(&target, &mutant).killed());
        let minimal = shrink(&target, &mutant);
        // Structural kills shrink all the way down to the offending op.
        assert_eq!(minimal.n_ops(), 1);
        assert!(matches!(judge(&target, &minimal), Verdict::Validate(_)));
    }
}
