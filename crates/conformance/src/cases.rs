//! Random configuration sampling for the differential oracle.
//!
//! Each [`Case`] is a `(family, algorithm, grid, message size)` tuple drawn
//! so that the algorithm's structural preconditions hold (power-of-two rank
//! counts for recursive doubling, `groups | ppn` for multi-leader,
//! single-node grids for MHA-intra, …) — the oracle tests *correct*
//! configurations; rejection paths are covered by `tests/failure_modes.rs`.

use mha_collectives::mha::{InterAlgo, MhaInterConfig, Offload};
use mha_collectives::{build_composed, AllgatherAlgo, BuildError, Built, ComposePlan};
use mha_sched::{ProcGrid, Topology};
use mha_simnet::ClusterSpec;
use rand::{rngs::StdRng, Rng};

/// The four collective families the oracle must cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Flat (single-level) algorithms: ring, recursive doubling, Bruck,
    /// direct spread.
    Flat,
    /// Two-level leader-based baselines: single-leader, multi-leader.
    TwoLevel,
    /// The paper's multi-HCA aware designs: MHA-intra, MHA-inter.
    Mha,
    /// Composer-built hierarchical designs over random ≥ 3-level topology
    /// trees (the N-level generalization of the NUMA-aware design).
    Hier,
}

impl Family {
    /// All families, in a fixed order (used for round-robin coverage).
    pub const ALL: [Family; 4] = [Family::Flat, Family::TwoLevel, Family::Mha, Family::Hier];

    /// Dense index into per-family counters.
    pub fn index(self) -> usize {
        match self {
            Family::Flat => 0,
            Family::TwoLevel => 1,
            Family::Mha => 2,
            Family::Hier => 3,
        }
    }
}

/// One randomly drawn oracle configuration.
#[derive(Debug, Clone)]
pub struct Case {
    /// The family the algorithm belongs to.
    pub family: Family,
    /// The allgather algorithm under test ([`Family::Hier`] cases build
    /// through `tree` instead; `algo` then mirrors the exchange choice for
    /// reporting only).
    pub algo: AllgatherAlgo,
    /// Process layout (the tree's flattening for [`Family::Hier`]).
    pub grid: ProcGrid,
    /// Per-rank contribution size in bytes.
    pub msg: usize,
    /// For [`Family::Hier`]: the topology tree and per-level plan the
    /// generic composer builds. `None` everywhere else.
    pub tree: Option<(Topology, ComposePlan)>,
}

impl Case {
    /// Builds the case's schedule: through the generic composer when a
    /// tree is attached, through the algorithm dispatcher otherwise.
    pub fn build(&self, spec: &ClusterSpec) -> Result<Built, BuildError> {
        match &self.tree {
            Some((topo, plan)) => build_composed(topo, self.msg, plan, spec),
            None => self.algo.build(self.grid, self.msg, spec),
        }
    }

    /// A short, greppable description for disagreement reports.
    pub fn describe(&self) -> String {
        if let Some((topo, plan)) = &self.tree {
            let shape: Vec<String> = topo.levels().iter().map(|l| l.fanout.to_string()).collect();
            return format!(
                "{:?}/{} tree={} msg={}",
                self.family,
                plan.name(),
                shape.join("x"),
                self.msg
            );
        }
        format!(
            "{:?}/{} {}x{} msg={}",
            self.family,
            self.algo.name(),
            self.grid.nodes(),
            self.grid.ppn(),
            self.msg
        )
    }
}

const MSGS: [usize; 4] = [64, 256, 1024, 4096];
const PPNS: [u32; 4] = [1, 2, 4, 8];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// Draws a random ≥ 3-level topology tree plus a matching hierarchical
/// plan: exchange at the top, one import round per middle level, gather
/// at the leaves. Recursive doubling constrains the node count to a
/// power of two; everything else is free.
fn sample_hier(rng: &mut StdRng, msg: usize) -> Case {
    let inter = if rng.gen_range(0..2u32) == 0 {
        InterAlgo::Ring
    } else {
        InterAlgo::RecursiveDoubling
    };
    let nodes = match inter {
        InterAlgo::Ring => rng.gen_range(2..=3),
        InterAlgo::RecursiveDoubling => pick(rng, &[2u32, 4]),
    };
    let depth = rng.gen_range(3..=4usize);
    let mut fanouts = vec![nodes];
    for _ in 1..depth - 1 {
        fanouts.push(rng.gen_range(1..=2));
    }
    fanouts.push(rng.gen_range(1..=4));
    let topo = Topology::from_fanouts(&fanouts);
    let overlap = rng.gen_range(0..2u32) == 0;
    let import_offload = rng.gen_range(0..2u32) == 0;
    let gather = if rng.gen_range(0..2u32) == 0 {
        Offload::None
    } else {
        Offload::Auto
    };
    let plan = ComposePlan::hierarchical(depth, inter, overlap, import_offload, gather);
    Case {
        family: Family::Hier,
        algo: AllgatherAlgo::MhaInter(MhaInterConfig {
            inter,
            offload: gather,
            overlap,
        }),
        grid: topo.flatten(),
        msg,
        tree: Some((topo, plan)),
    }
}

/// Draws one valid configuration from `family`.
pub fn sample_case(rng: &mut StdRng, family: Family) -> Case {
    let msg = pick(rng, &MSGS);
    if family == Family::Hier {
        return sample_hier(rng, msg);
    }
    let (algo, grid) = match family {
        Family::Flat => match rng.gen_range(0..4u32) {
            0 => (
                AllgatherAlgo::Ring,
                ProcGrid::new(rng.gen_range(1..=4), pick(rng, &PPNS)),
            ),
            1 => (
                // Power-of-two nodes × power-of-two ppn → power-of-two ranks.
                AllgatherAlgo::RecursiveDoubling,
                ProcGrid::new(pick(rng, &[1, 2, 4]), pick(rng, &PPNS)),
            ),
            2 => (
                AllgatherAlgo::Bruck,
                ProcGrid::new(rng.gen_range(1..=4), pick(rng, &PPNS)),
            ),
            _ => (
                AllgatherAlgo::DirectSpread,
                ProcGrid::new(rng.gen_range(1..=4), pick(rng, &PPNS)),
            ),
        },
        Family::TwoLevel => {
            if rng.gen_range(0..2u32) == 0 {
                (
                    AllgatherAlgo::SingleLeader,
                    ProcGrid::new(pick(rng, &[1, 2, 4]), pick(rng, &[2, 4, 8])),
                )
            } else {
                let ppn = pick(rng, &[2u32, 4, 8]);
                let divisors: Vec<u32> = (1..=ppn).filter(|g| ppn.is_multiple_of(*g)).collect();
                (
                    AllgatherAlgo::MultiLeader {
                        groups: pick(rng, &divisors),
                    },
                    ProcGrid::new(rng.gen_range(1..=4), ppn),
                )
            }
        }
        Family::Mha => {
            if rng.gen_range(0..2u32) == 0 {
                let ppn = pick(rng, &[2u32, 4, 8]);
                let offload = if rng.gen_range(0..2u32) == 0 {
                    Offload::Auto
                } else {
                    Offload::Fixed(rng.gen_range(0..ppn))
                };
                (
                    AllgatherAlgo::MhaIntra { offload },
                    ProcGrid::single_node(ppn),
                )
            } else {
                let inter = if rng.gen_range(0..2u32) == 0 {
                    InterAlgo::Ring
                } else {
                    InterAlgo::RecursiveDoubling
                };
                let nodes = match inter {
                    InterAlgo::Ring => rng.gen_range(2..=4),
                    InterAlgo::RecursiveDoubling => pick(rng, &[2u32, 4]),
                };
                (
                    AllgatherAlgo::MhaInter(MhaInterConfig {
                        inter,
                        offload: Offload::Auto,
                        overlap: rng.gen_range(0..2u32) == 0,
                    }),
                    ProcGrid::new(nodes, pick(rng, &[2u32, 4, 8])),
                )
            }
        }
        Family::Hier => unreachable!("handled above"),
    };
    Case {
        family,
        algo,
        grid,
        msg,
        tree: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_simnet::ClusterSpec;
    use rand::SeedableRng;

    #[test]
    fn sampled_cases_always_build() {
        let spec = ClusterSpec::thor();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..120 {
            let case = sample_case(&mut rng, Family::ALL[i % Family::ALL.len()]);
            case.build(&spec)
                .unwrap_or_else(|e| panic!("{} failed to build: {e:?}", case.describe()));
        }
    }
}
