//! Ablation: the cost of a node crash vs its recovery penalty. One node of
//! a 4×4 MHA-inter Allgather (256 KB) dies at 25% of the fault-free
//! makespan and restarts after a sweep of recovery penalties (expressed as
//! multiples of the fault-free makespan `T0`). The interesting output is
//! the *excess* beyond the analytic floor
//!
//!   `T_floor = t_crash + recovery + (work the dead node still owed)`
//!
//! approximated here as `t_crash + recovery`: a correct engine can never
//! finish before the restart, and a good one should not pay much more than
//! the outage itself — stalled flows resume at full rate, and traffic not
//! touching the dead node keeps flowing during the outage.
//!
//! The per-penalty simulations run as one campaign; the schedule is built
//! once and shared through the campaign cache across every timeline (only
//! the `FaultSpec` varies).

use mha_apps::report::Table;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, MhaInterConfig};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, FaultSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let grid = ProcGrid::new(4, 4);
    let msg = 256 * 1024;
    let spec = ClusterSpec::thor();
    let built = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();

    let t0 = Simulator::new(spec.clone())
        .unwrap()
        .run(&built.sched)
        .unwrap()
        .makespan;
    let t_crash = 0.25 * t0;
    let factors = [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut cells = Vec::new();
    for (i, &f) in factors.iter().enumerate() {
        let faults = FaultSpec::node_crash(1, t_crash, f * t0);
        let key = ConfigKey::new("ablate_crash", grid, msg, &spec).with_salt(i as u64);
        let sched = built.sched.clone();
        cells.push(CampaignPoint::sim_faulty(
            "crash",
            key,
            spec.clone(),
            Some(faults),
            move || Ok(sched.clone()),
        ));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();

    let mut table = Table::new(
        "Ablation: node 1 crashes at 0.25 T0 and restarts after R, \
         MHA-inter 4 nodes x 4 PPN, 256 KB (T0 = fault-free makespan)",
        "recovery_over_t0",
        vec![
            "makespan_us".into(),
            "vs_clean".into(),
            "floor_us".into(),
            "excess_over_floor".into(),
        ],
    );
    for (i, &f) in factors.iter().enumerate() {
        let m = report.value(i); // microseconds
        let floor = (t_crash + f * t0) * 1e6;
        table.push(format!("{f}"), vec![m, m / (t0 * 1e6), floor, m / floor]);
    }
    mha_bench::emit(&table, "ablate_crash");
}
