//! Offline shim for `rand` 0.8: the subset this workspace's benches and
//! tests use (`StdRng::seed_from_u64`, `Rng::gen_range` over numeric
//! ranges). Deterministic by construction — `StdRng` is a SplitMix64
//! generator, *not* a CSPRNG; do not use for anything security-relevant.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform f64 in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that knows how to sample itself, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (deterministic,
    /// fast, statistically fine for benches and property tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(1.0f64..100.0);
            assert!((1.0..100.0).contains(&f));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
