//! The tenant oracle: concurrent jobs must contend fairly and isolate
//! exactly.
//!
//! Each case is a small multi-tenant traffic scenario priced through
//! [`mha_traffic::run_jobs`] with invariant-check mode armed (the engine
//! tees an [`mha_sched::InvariantProbe`] onto every run and panics on any
//! causality/capacity/conservation violation). Two case shapes alternate:
//!
//! * **disjoint** — tenants occupy hand-built non-overlapping node
//!   blocks. Every tenant's jobs must finish **bit-identically** to a
//!   solo run of just that tenant's jobs (same placements, same
//!   arrivals, competitors deleted): on a homogeneous cluster with
//!   per-node resources, jobs that share nothing must not perturb each
//!   other by even an ulp.
//! * **contended** — a seeded random scenario ([`mha_traffic::sample_jobs`])
//!   whose placements may overlap arbitrarily.
//!
//! Both shapes also audit aggregate accounting: the bytes that crossed
//! every simulator resource must fit inside `capacity × makespan` — the
//! water-filler may never oversubscribe a rail, CPU or memory bus no
//! matter how many tenants pile onto it.

use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::{AlgoConfig, Family as AlgoFamily};
use mha_simnet::ClusterSpec;
use mha_traffic::{
    default_builder, run_jobs, sample_jobs, tenant_jobs, Arrival, JobSpec, PlacementPolicy,
    TrafficReport, TrafficSpec, WorkloadMix,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Traffic-oracle knobs (all overridable from the environment).
#[derive(Debug, Clone)]
pub struct TrafficOracleConfig {
    /// Number of random traffic cases (`MHA_TRAFFIC_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_TRAFFIC_SEED`); the sweep is deterministic given it.
    pub seed: u64,
}

impl Default for TrafficOracleConfig {
    fn default() -> Self {
        TrafficOracleConfig {
            cases: 100,
            seed: 0x7EA7,
        }
    }
}

impl TrafficOracleConfig {
    /// The default configuration with `MHA_TRAFFIC_CASES` and
    /// `MHA_TRAFFIC_SEED` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = TrafficOracleConfig::default();
        if let Some(v) = env_parse("MHA_TRAFFIC_CASES") {
            cfg.cases = v;
        }
        if let Some(v) = env_parse("MHA_TRAFFIC_SEED") {
            cfg.seed = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// One randomly drawn traffic case.
#[derive(Debug, Clone)]
pub struct TrafficCase {
    /// The scenario (cluster shape, tenant count; its `arrival`/`mix` are
    /// advisory for hand-built disjoint cases, authoritative otherwise).
    pub spec: TrafficSpec,
    /// The concrete job list priced by the case.
    pub jobs: Vec<JobSpec>,
    /// Whether tenants were placed on provably disjoint node blocks (and
    /// the bit-equality half of the check applies).
    pub disjoint: bool,
}

impl TrafficCase {
    /// A short, greppable description for disagreement reports.
    pub fn describe(&self) -> String {
        format!(
            "{} {}x{} {} jobs={} tenants={} seed={:#x}",
            if self.disjoint {
                "disjoint"
            } else {
                "contended"
            },
            self.spec.nodes,
            self.spec.ppn,
            self.spec.policy.token(),
            self.jobs.len(),
            self.spec.tenant_count(),
            self.spec.seed,
        )
    }
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn sample_cfg(rng: &mut StdRng, nodes: u32, ppn: u32) -> AlgoConfig {
    let grid = mha_sched::ProcGrid::new(nodes, ppn);
    let cfg = match rng.gen_range(0..3u32) {
        0 => AlgoConfig::default(),
        1 => AlgoConfig::flat(AlgoFamily::Ring),
        _ => AlgoConfig::flat(AlgoFamily::Bruck),
    };
    cfg.coerce_for(grid)
}

/// Draws a **disjoint** case: 2–3 tenants on non-overlapping contiguous
/// node blocks of an 8-node cluster, each running a chain or a timed
/// sequence of 1–3 jobs pinned to its block.
fn sample_disjoint_case(rng: &mut StdRng, seed: u64) -> TrafficCase {
    let cluster_nodes = 8u32;
    let ppn = pick(rng, &[1u32, 2]);
    let tenants = rng.gen_range(2..=3u32);
    // Block widths that always fit: 2..=8/tenants nodes each.
    let max_w = cluster_nodes / tenants;
    let mut jobs = Vec::new();
    let mut next_node = 0u32;
    for tenant in 0..tenants {
        let w = rng.gen_range(2..=max_w.max(2));
        let nodes: Vec<u32> = (next_node..next_node + w).collect();
        next_node += w;
        let chained = rng.gen_range(0..2u32) == 0;
        let count = rng.gen_range(1..=3u32);
        let mut prev: Option<u32> = None;
        let mut arrival = 0.0f64;
        for _ in 0..count {
            let id = jobs.len() as u32;
            let (release, after) = if chained {
                let think = rng.gen_range(0.0..5e-5);
                (if prev.is_some() { think } else { 0.0 }, prev)
            } else {
                arrival += rng.gen_range(0.0..1e-4);
                (arrival, None)
            };
            jobs.push(JobSpec {
                id,
                tenant,
                cfg: sample_cfg(rng, w, ppn),
                msg: pick(rng, &[1usize << 10, 1 << 12, 1 << 14]),
                nodes: nodes.clone(),
                release,
                after,
            });
            prev = Some(id);
        }
    }
    TrafficCase {
        spec: TrafficSpec {
            cluster: ClusterSpec::thor(),
            nodes: cluster_nodes,
            ppn,
            arrival: Arrival::Trace(vec![0.0]),
            mix: WorkloadMix::paper_default(cluster_nodes),
            policy: PlacementPolicy::Packed,
            tenants,
            seed,
        },
        jobs,
        disjoint: true,
    }
}

/// Draws a **contended** case: a seeded random scenario whose placements
/// may overlap arbitrarily.
fn sample_contended_case(rng: &mut StdRng, seed: u64) -> TrafficCase {
    let nodes = pick(rng, &[4u32, 8]);
    let ppn = pick(rng, &[1u32, 2]);
    let arrival = match rng.gen_range(0..3u32) {
        0 => Arrival::Closed {
            clients: rng.gen_range(2..=3),
            jobs_per_client: rng.gen_range(1..=3),
            think: rng.gen_range(0.0..5e-5),
        },
        1 => Arrival::Poisson {
            rate_hz: 10f64.powf(rng.gen_range(3.0..4.8)),
            jobs: rng.gen_range(3..=8),
        },
        _ => Arrival::Trace(
            (0..rng.gen_range(3..=6u32))
                .map(|i| f64::from(i) * 2e-5)
                .collect(),
        ),
    };
    let spec = TrafficSpec {
        cluster: ClusterSpec::thor(),
        nodes,
        ppn,
        arrival,
        mix: WorkloadMix::paper_default(nodes),
        policy: pick(
            rng,
            &[
                PlacementPolicy::Packed,
                PlacementPolicy::Striped,
                PlacementPolicy::Random,
            ],
        ),
        tenants: rng.gen_range(2..=4),
        seed,
    };
    let jobs = sample_jobs(&spec);
    TrafficCase {
        spec,
        jobs,
        disjoint: false,
    }
}

/// Draws one traffic case: even indices disjoint, odd contended.
pub fn sample_traffic_case(rng: &mut StdRng, index: usize) -> TrafficCase {
    let seed = rng.gen_range(0..u64::MAX);
    if index.is_multiple_of(2) {
        sample_disjoint_case(rng, seed)
    } else {
        sample_contended_case(rng, seed)
    }
}

/// The aggregate-accounting audit: no resource may carry more bytes than
/// `capacity × makespan` (tiny relative slack for summation roundoff).
fn check_capacity(report: &TrafficReport) -> Result<(), String> {
    for r in &report.resources {
        let budget = r.capacity * report.makespan;
        if r.bytes > budget * (1.0 + 1e-6) + 1e-9 {
            return Err(format!(
                "resource {} carried {:.6e} bytes but capacity x makespan is {:.6e}",
                r.label, r.bytes, budget
            ));
        }
    }
    Ok(())
}

/// Checks one traffic case end to end (see the module docs for the bars).
pub fn check_traffic_case(case: &TrafficCase) -> Result<(), String> {
    let mut build = default_builder(&case.spec);
    let merged = run_jobs(&case.spec, &case.jobs, &mut build)?;
    check_capacity(&merged)?;

    if !case.disjoint {
        return Ok(());
    }
    for tenant in 0..case.spec.tenant_count() {
        let subset = tenant_jobs(&case.jobs, tenant);
        if subset.is_empty() {
            continue;
        }
        let solo = run_jobs(&case.spec, &subset, &mut build)?;
        check_capacity(&solo)?;
        for sr in &solo.jobs {
            let mr = merged
                .jobs
                .iter()
                .find(|r| r.job.id == sr.job.id)
                .ok_or_else(|| format!("job {} missing from merged run", sr.job.id))?;
            if sr.end.to_bits() != mr.end.to_bits() || sr.arrival.to_bits() != mr.arrival.to_bits()
            {
                return Err(format!(
                    "disjoint tenant {tenant} job {} diverged: solo ({:.17e}, {:.17e}) vs merged ({:.17e}, {:.17e})",
                    sr.job.id, sr.arrival, sr.end, mr.arrival, mr.end
                ));
            }
        }
    }
    Ok(())
}

/// The outcome of a traffic-oracle sweep.
#[derive(Debug)]
pub struct TrafficOracleReport {
    /// Traffic cases checked.
    pub cases: usize,
    /// Human-readable description of every disagreement (empty = pass).
    pub disagreements: Vec<String>,
}

impl TrafficOracleReport {
    /// Whether every case isolated and accounted cleanly.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs the tenant-oracle sweep: `cfg.cases` seeded scenarios, alternating
/// disjoint and contended shapes, with the engine's invariant audit armed
/// for the duration (a violation panics the sweep).
///
/// Cases are pre-sampled sequentially from the seeded RNG, fanned across
/// the campaign worker pool (`MHA_CAMPAIGN_WORKERS`), and reassembled in
/// case order — the report is independent of pool width.
pub fn run_traffic_oracle(cfg: &TrafficOracleConfig) -> TrafficOracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cases: Vec<TrafficCase> = (0..cfg.cases)
        .map(|i| sample_traffic_case(&mut rng, i))
        .collect();

    mha_simnet::set_check_enabled(Some(true));
    let points: Vec<CampaignPoint> = cases
        .into_iter()
        .map(|case| {
            let label = case.describe();
            CampaignPoint::custom(label, move |_seed| {
                Ok(vec![match check_traffic_case(&case) {
                    Ok(()) => Row::new("ok", vec![1.0]),
                    Err(e) => Row::note(case.describe(), e),
                }])
            })
        })
        .collect();
    let mut pool = CampaignConfig::from_env();
    pool.reps = 1;
    let report = run_campaign(&points, &pool).expect("traffic-oracle pool failed");
    mha_simnet::set_check_enabled(None);

    let mut disagreements = Vec::new();
    for pr in &report.results {
        for row in &pr.rows {
            if let Some(e) = &row.note {
                disagreements.push(format!("traffic case {} [{}]: {e}", pr.point, row.label));
            }
        }
    }
    TrafficOracleReport {
        cases: cfg.cases,
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disjoint_case_isolates_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let case = sample_traffic_case(&mut rng, 0);
        assert!(case.disjoint);
        check_traffic_case(&case).unwrap();
    }

    #[test]
    fn a_contended_case_stays_within_capacity() {
        let mut rng = StdRng::seed_from_u64(4);
        let case = sample_traffic_case(&mut rng, 1);
        assert!(!case.disjoint);
        check_traffic_case(&case).unwrap();
    }

    #[test]
    fn config_defaults_meet_the_acceptance_bar() {
        let cfg = TrafficOracleConfig::default();
        assert!(cfg.cases >= 100);
        assert_eq!(cfg.seed, 0x7EA7);
    }
}
