//! Operation kinds: the vocabulary of the schedule IR.
//!
//! Each operation names the *resources* it occupies implicitly through its
//! kind, which is how the simulator charges time and how the executors know
//! which thread performs it:
//!
//! | kind | moves data with | simulator resources |
//! |---|---|---|
//! | `Transfer`/`Cma` | the destination rank's CPU (process_vm_readv-style single copy) | `cpu(dst)`, `mem(node)` |
//! | `Transfer`/`Rail` | one HCA (RDMA; no CPU involvement) | `tx(src node, rail)`, `rx(dst node, rail)` |
//! | `Transfer`/`AllRails` | all HCAs (striped or round-robin per the cluster policy) | every rail of both nodes |
//! | `Copy` | the actor's CPU (memcpy within/into shm) | `cpu(actor)`, `mem(node)` |
//! | `Reduce` | the actor's CPU (read-read-write arithmetic) | `cpu(actor)`, `mem(node)` |
//! | `Compute` | the actor's CPU (pure FLOPs, no memory traffic modeled) | `cpu(actor)` |

use crate::buffer::Loc;
use crate::ids::{OpId, RankId};

/// Which communication channel a [`OpKind::Transfer`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Kernel-assisted single-copy (CMA / process_vm_readv). Executed by the
    /// destination rank's CPU; valid between ranks of the same node only.
    Cma,
    /// A specific HCA rail (0-based). Valid inter-node, and intra-node as a
    /// NIC-loopback transfer — the trick MHA-intra uses to recruit idle HCAs.
    Rail(u8),
    /// Let the point-to-point layer use every rail: striping for messages at
    /// or above the cluster's stripe threshold, round-robin below it
    /// (Section 2.1 / Liu et al. \[17\]).
    AllRails,
}

/// The rails a failure-aware builder may use: the survivors of a cluster's
/// `H` rails after excluding those known (or assumed) to be down.
///
/// [`Channel::AllRails`] resolves against this set when a builder re-tiles a
/// striped transfer over `H − k` surviving rails. With every rail up the set
/// is *full* and resolution is the identity — schedules built against a full
/// set are byte-identical to fault-oblivious ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RailSet {
    rails: Vec<u8>,
    total: u8,
}

impl RailSet {
    /// Every rail of a cluster with `total` rails is up.
    ///
    /// # Panics
    ///
    /// If `total` is zero.
    pub fn full(total: u8) -> Self {
        assert!(total > 0, "a cluster has at least one rail");
        RailSet {
            rails: (0..total).collect(),
            total,
        }
    }

    /// The survivors after excluding `down` (duplicates and out-of-range
    /// entries are ignored). If *every* rail is down, falls back to the full
    /// set — a builder must route somewhere, and the simulator's stall/retry
    /// machinery models waiting out a total outage.
    pub fn excluding(total: u8, down: &[u8]) -> Self {
        assert!(total > 0, "a cluster has at least one rail");
        let rails: Vec<u8> = (0..total).filter(|r| !down.contains(r)).collect();
        if rails.is_empty() {
            RailSet::full(total)
        } else {
            RailSet { rails, total }
        }
    }

    /// The surviving rail indices, ascending.
    pub fn rails(&self) -> &[u8] {
        &self.rails
    }

    /// Number of surviving rails (always ≥ 1).
    pub fn len(&self) -> usize {
        self.rails.len()
    }

    /// Never empty — kept for clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether every rail of the cluster survives.
    pub fn is_full(&self) -> bool {
        self.rails.len() == usize::from(self.total)
    }

    /// The cluster's total rail count.
    pub fn total(&self) -> u8 {
        self.total
    }
}

/// The element type of a [`OpKind::Reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (the gradient type in the DL experiments).
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }
}

/// The combining operator of a [`OpKind::Reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// Elementwise sum (MPI_SUM) — used by Allreduce.
    Sum,
    /// Elementwise maximum (MPI_MAX).
    Max,
}

/// One operation in the DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Move `len` bytes from `src` (addressed by `src_rank`) to `dst`
    /// (addressed by `dst_rank`) over `channel`.
    Transfer {
        /// Rank owning/registering the source region.
        src_rank: RankId,
        /// Rank owning/registering the destination region.
        dst_rank: RankId,
        /// Source byte range.
        src: Loc,
        /// Destination byte range.
        dst: Loc,
        /// Length in bytes.
        len: usize,
        /// Transport.
        channel: Channel,
    },
    /// A CPU memcpy by `actor` between two locally addressable ranges
    /// (e.g. leader copying an arrived chunk into the node's shm segment, or
    /// a member copying it out — phase 3 of MHA-inter).
    Copy {
        /// Rank whose CPU performs the copy.
        actor: RankId,
        /// Source byte range (must be local to `actor`).
        src: Loc,
        /// Destination byte range (must be local to `actor`).
        dst: Loc,
        /// Length in bytes.
        len: usize,
    },
    /// Elementwise `acc[i] = op(acc[i], operand[i])` over `len` bytes
    /// interpreted as `dtype` — the arithmetic step of reduce-scatter.
    Reduce {
        /// Rank whose CPU performs the reduction.
        actor: RankId,
        /// Accumulator range (read-modify-write; must be local to `actor`).
        acc: Loc,
        /// Operand range (read-only; must be local to `actor`).
        operand: Loc,
        /// Length in bytes; must be a multiple of `dtype.size()`.
        len: usize,
        /// Element type.
        dtype: DType,
        /// Combining operator.
        op: RedOp,
    },
    /// Pure computation by `actor` costing `flops` floating-point operations
    /// (the local GEMV in the matvec kernel, backprop in the DL loop).
    Compute {
        /// Rank whose CPU computes.
        actor: RankId,
        /// Cost in floating-point operations.
        flops: u64,
    },
}

impl OpKind {
    /// The rank whose CPU executes this op, if any (rail transfers are
    /// performed by the HCA and return `None`).
    pub fn cpu_actor(&self) -> Option<RankId> {
        match *self {
            OpKind::Transfer {
                dst_rank,
                channel: Channel::Cma,
                ..
            } => Some(dst_rank),
            OpKind::Transfer { .. } => None,
            OpKind::Copy { actor, .. }
            | OpKind::Reduce { actor, .. }
            | OpKind::Compute { actor, .. } => Some(actor),
        }
    }

    /// Bytes moved by this op (zero for `Compute`).
    pub fn bytes(&self) -> usize {
        match *self {
            OpKind::Transfer { len, .. }
            | OpKind::Copy { len, .. }
            | OpKind::Reduce { len, .. } => len,
            OpKind::Compute { .. } => 0,
        }
    }

    /// Short kind name for traces and DOT dumps.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OpKind::Transfer {
                channel: Channel::Cma,
                ..
            } => "cma",
            OpKind::Transfer {
                channel: Channel::Rail(_),
                ..
            } => "rail",
            OpKind::Transfer {
                channel: Channel::AllRails,
                ..
            } => "rails",
            OpKind::Copy { .. } => "copy",
            OpKind::Reduce { .. } => "reduce",
            OpKind::Compute { .. } => "compute",
        }
    }
}

/// An operation plus its DAG bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Dense identifier (creation order; dependencies always point backwards).
    pub id: OpId,
    /// What the op does.
    pub kind: OpKind,
    /// Operations that must complete before this one starts.
    pub deps: Vec<OpId>,
    /// Algorithm step this op belongs to (for step-count assertions, traces
    /// and the Fig. 2-style timeline). Zero-based; `u32::MAX` = unassigned.
    pub step: u32,
    /// Human-readable label.
    pub label: String,
}

impl Op {
    /// Whether a step was assigned.
    pub fn has_step(&self) -> bool {
        self.step != u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BufId;

    fn loc() -> Loc {
        Loc::new(BufId(0), 0)
    }

    #[test]
    fn rail_set_excludes_down_rails() {
        let full = RailSet::full(4);
        assert!(full.is_full());
        assert_eq!(full.rails(), &[0, 1, 2, 3]);

        let s = RailSet::excluding(4, &[1, 3]);
        assert!(!s.is_full());
        assert_eq!(s.rails(), &[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total(), 4);

        // Out-of-range / duplicate exclusions are ignored.
        let s = RailSet::excluding(2, &[1, 1, 9]);
        assert_eq!(s.rails(), &[0]);

        // A total outage falls back to the full set.
        let s = RailSet::excluding(2, &[0, 1]);
        assert!(s.is_full());
    }

    #[test]
    fn cpu_actor_is_dst_for_cma_and_none_for_rail() {
        let cma = OpKind::Transfer {
            src_rank: RankId(0),
            dst_rank: RankId(1),
            src: loc(),
            dst: loc(),
            len: 8,
            channel: Channel::Cma,
        };
        assert_eq!(cma.cpu_actor(), Some(RankId(1)));

        let rail = OpKind::Transfer {
            src_rank: RankId(0),
            dst_rank: RankId(1),
            src: loc(),
            dst: loc(),
            len: 8,
            channel: Channel::Rail(0),
        };
        assert_eq!(rail.cpu_actor(), None);
    }

    #[test]
    fn bytes_and_names() {
        let c = OpKind::Copy {
            actor: RankId(0),
            src: loc(),
            dst: loc(),
            len: 123,
        };
        assert_eq!(c.bytes(), 123);
        assert_eq!(c.kind_name(), "copy");
        let comp = OpKind::Compute {
            actor: RankId(0),
            flops: 10,
        };
        assert_eq!(comp.bytes(), 0);
        assert_eq!(comp.kind_name(), "compute");
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
    }
}
