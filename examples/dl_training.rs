//! Synthetic Horovod-style training throughput (paper Section 5.6 /
//! Figure 17): ResNet-50/101/152 gradients allreduced every step.
//!
//! ```sh
//! cargo run --release --example dl_training
//! ```

use mha::apps::deep_learning::{run_training_step, DlConfig, RESNET101, RESNET152, RESNET50};
use mha::apps::Contestant;
use mha::collectives::Library;
use mha::sched::ProcGrid;
use mha::simnet::ClusterSpec;

fn main() {
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(8, 32); // 256 workers
    println!(
        "{:>12} {:>14} {:>12} {:>10}",
        "model", "MVAPICH2-X", "MHA", "gain"
    );
    for model in [RESNET50, RESNET101, RESNET152] {
        let cfg = DlConfig {
            grid,
            model,
            batch: 16,
        };
        let mva = run_training_step(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
        let mha = run_training_step(cfg, Contestant::MhaTuned, &spec).unwrap();
        println!(
            "{:>12} {:>11.1}im/s {:>9.1}im/s {:>9.2}%",
            model.name,
            mva.images_per_sec,
            mha.images_per_sec,
            (mha.images_per_sec / mva.images_per_sec - 1.0) * 100.0
        );
    }
    let cfg = DlConfig {
        grid,
        model: RESNET50,
        batch: 16,
    };
    let r = run_training_step(cfg, Contestant::MhaTuned, &spec).unwrap();
    println!(
        "\nResNet-50 step breakdown: compute {:.0} us + allreduce {:.0} us = {:.3} s/step",
        r.compute_us, r.comm_us, r.step_time_s
    );
}
