//! The paper's multi-HCA aware Allgather designs (Section 3).

mod inter;
mod intra;
mod numa3;
mod offload;

pub(crate) use inter::emit_mha_inter;
pub use inter::{build_mha_inter, build_mha_inter_degraded, InterAlgo, MhaInterConfig};
pub use intra::build_mha_intra;
pub use numa3::{build_mha_numa3, Numa3Config};
pub use offload::{optimal_offload, resolve_offload, tune_offload, Offload, OffloadSweep};
