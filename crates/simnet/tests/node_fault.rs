//! Node-level fault injection: a whole node crashing and restarting.
//!
//! The timing-side mirror of `mha-exec`'s journaled kill/resume: a
//! `FaultSpec::node_crash` zeroes every resource the node owns (CPUs, mem,
//! all rails) for the recovery window, and the engine must stall exactly
//! the work touching that node, wake it at the restart, and still satisfy
//! every run invariant.

use mha_sched::{Channel, FrozenSchedule, InvariantProbe, Loc, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::{ClusterSpec, FaultSpec, Simulator};

/// Rank 0 (node 0) sends to rank 1 (node 1), which relays to rank 2
/// (node 2) — node 1 is on the critical path of both hops.
fn relay3(msg: usize) -> FrozenSchedule {
    let grid = ProcGrid::new(3, 1);
    let mut b = ScheduleBuilder::new(grid, "relay3");
    let a = b.private_buf(RankId(0), msg, "a");
    let c = b.private_buf(RankId(1), msg, "c");
    let d = b.private_buf(RankId(2), msg, "d");
    let t1 = b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(a, 0),
        Loc::new(c, 0),
        msg,
        Channel::AllRails,
        &[],
        0,
    );
    b.transfer(
        RankId(1),
        RankId(2),
        Loc::new(c, 0),
        Loc::new(d, 0),
        msg,
        Channel::AllRails,
        &[t1],
        1,
    );
    b.finish().freeze()
}

#[test]
fn node_crash_stalls_rail_traffic_until_restart() {
    let sch = relay3(256 * 1024);
    let spec = ClusterSpec::thor();

    let m0 = Simulator::new(spec.clone())
        .unwrap()
        .run(&sch)
        .unwrap()
        .makespan;

    // Node 1 is dead from t = 0 until the 1 ms recovery: nothing can reach
    // it on any rail, so the whole collective waits out the penalty.
    let recovery = 1e-3;
    let sim = Simulator::with_faults(spec, FaultSpec::node_crash(1, 0.0, recovery)).unwrap();
    let mut audit = InvariantProbe::new();
    let m = sim.run_probed(&sch, &mut audit).unwrap().makespan;
    assert!(audit.is_clean(), "violations: {:?}", audit.violations());
    assert!(
        m >= recovery,
        "makespan {m:.6} finished inside the outage (recovery {recovery:.6})"
    );
    assert!(
        m > m0,
        "crash run ({m:.6}) not slower than clean run ({m0:.6})"
    );
}

#[test]
fn node_crash_stalls_cpu_work_until_restart() {
    // Pure compute on node 1: exercises the CPU-resource stall/wake path
    // (route-less flows wake via the NodeUp recompute, not rail retry).
    let grid = ProcGrid::new(2, 1);
    let mut b = ScheduleBuilder::new(grid, "busy");
    b.compute(RankId(1), 50_000_000, &[], 0);
    let sch = b.finish().freeze();

    let spec = ClusterSpec::thor();
    let m0 = Simulator::new(spec.clone())
        .unwrap()
        .run(&sch)
        .unwrap()
        .makespan;

    let recovery = 2e-3;
    let sim = Simulator::with_faults(spec, FaultSpec::node_crash(1, 0.0, recovery)).unwrap();
    let mut audit = InvariantProbe::new();
    let m = sim.run_probed(&sch, &mut audit).unwrap().makespan;
    assert!(audit.is_clean(), "violations: {:?}", audit.violations());
    assert!(
        m >= recovery && m > m0,
        "compute on the dead node ran through the outage: {m:.6} vs clean {m0:.6}"
    );
}

#[test]
fn crash_of_an_uninvolved_node_is_invisible() {
    // Only nodes 0 and 1 carry traffic; node 2 crashing must not perturb
    // the makespan at all — the recompute it seeds touches resources with
    // no flows on them.
    let grid = ProcGrid::new(3, 1);
    let mut b = ScheduleBuilder::new(grid, "pair");
    let s = b.private_buf(RankId(0), 64 * 1024, "s");
    let d = b.private_buf(RankId(1), 64 * 1024, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        64 * 1024,
        Channel::AllRails,
        &[],
        0,
    );
    let sch = b.finish().freeze();

    let spec = ClusterSpec::thor();
    let m0 = Simulator::new(spec.clone())
        .unwrap()
        .run(&sch)
        .unwrap()
        .makespan;
    let sim = Simulator::with_faults(spec, FaultSpec::node_crash(2, 1e-6, 1e-4)).unwrap();
    let m = sim.run(&sch).unwrap().makespan;
    assert_eq!(
        m.to_bits(),
        m0.to_bits(),
        "idle-node crash shifted makespan: {m:.9} vs {m0:.9}"
    );
}

#[test]
fn mid_flight_crash_extends_but_completes() {
    // Crash node 1 while the first hop is in flight; the flow loses its
    // rail mid-transfer, backs off, and finishes after the restart.
    let sch = relay3(1024 * 1024);
    let spec = ClusterSpec::thor();
    let m0 = Simulator::new(spec.clone())
        .unwrap()
        .run(&sch)
        .unwrap()
        .makespan;
    let t_crash = m0 * 0.25;
    let recovery = m0; // out for as long as the clean run took
    let sim = Simulator::with_faults(spec, FaultSpec::node_crash(1, t_crash, recovery)).unwrap();
    let mut audit = InvariantProbe::new();
    let m = sim.run_probed(&sch, &mut audit).unwrap().makespan;
    assert!(audit.is_clean(), "violations: {:?}", audit.violations());
    assert!(
        m >= t_crash + recovery,
        "run finished at {m:.6} inside the outage [{t_crash:.6}, {:.6})",
        t_crash + recovery
    );
}

#[test]
fn node_events_reject_missing_node() {
    let spec = ClusterSpec::thor();
    let bad = FaultSpec::new(1e-4).with_event(mha_simnet::FaultEvent {
        time: 0.0,
        rail: 0,
        node: None,
        kind: mha_simnet::FaultKind::NodeDown,
    });
    assert!(Simulator::with_faults(spec, bad).is_err());
}
