//! Golden round-trip of the tuning table: save → load → lookup is
//! bit-exact, the canonical text form is a fixed point, and the digest of
//! a deterministic table is pinned (any format or hashing drift fails
//! loudly here before it can invalidate a shipped table).

use mha_collectives::mha::{InterAlgo, Offload};
use mha_sched::ProcGrid;
use mha_tune::{AlgoConfig, TableKey, TunedTable};

/// A fully deterministic table exercising every config field the `.mtab`
/// payload serializes.
fn golden_table() -> TunedTable {
    let mut t = TunedTable::new(0x1234_5678_9abc_def0);
    t.insert(
        TableKey {
            nodes: 8,
            ppn: 32,
            msg_bucket: 8,
            rails_up: 2,
        },
        AlgoConfig {
            inter: InterAlgo::RecursiveDoubling,
            ..AlgoConfig::default()
        },
    );
    t.insert(
        TableKey {
            nodes: 16,
            ppn: 32,
            msg_bucket: 18,
            rails_up: 2,
        },
        AlgoConfig {
            overlap: false,
            offload: Offload::Fixed(4),
            chunk: Some(8),
            stripe_threshold: Some(65536),
            ..AlgoConfig::default()
        },
    );
    t.insert(
        TableKey {
            nodes: 32,
            ppn: 32,
            msg_bucket: 14,
            rails_up: 1,
        },
        AlgoConfig {
            down_rails: vec![1],
            ..AlgoConfig::default()
        },
    );
    t
}

#[test]
fn save_load_lookup_is_bit_exact() {
    let t = golden_table();
    let dir = std::env::temp_dir().join("mha-tune-table-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.mtab");
    t.save(&path).unwrap();
    let back = TunedTable::load(&path).unwrap();
    assert_eq!(t, back);
    assert_eq!(t.digest(), back.digest());
    // Exact probes serve the stored configs unchanged.
    for (key, cfg) in t.sorted_entries() {
        assert_eq!(back.get(&key), Some(cfg));
    }
    // Lookup through the query path is bit-exact too (the stored configs
    // are valid for their grids, so coercion is the identity).
    let served = back.lookup(ProcGrid::new(8, 32), 300, 2);
    assert_eq!(served.inter, InterAlgo::RecursiveDoubling);
    // The canonical text form is a fixed point of parse∘serialize.
    assert_eq!(t.to_text(), back.to_text());
}

#[test]
fn golden_digest_is_pinned() {
    // Pins the table identity end-to-end: key ordering, the config
    // digest (every AlgoConfig field), and the table fingerprint chain.
    // If this moves, every shipped .mtab is invalidated — bump the format
    // version rather than silently re-hashing.
    assert_eq!(golden_table().digest(), 0xa48f_1c34_fe75_7a43);
}

#[test]
fn golden_text_round_trips_through_disk() {
    let t = golden_table();
    let text = t.to_text();
    // Version header and sealed digest frame the payload.
    assert!(text.starts_with("mha-tune-table v1\n"), "{text}");
    assert!(
        text.ends_with(&format!("digest {:016x}\n", t.digest())),
        "{text}"
    );
    // Entries are key-sorted: equal tables are byte-equal files.
    let mut t2 = TunedTable::new(0x1234_5678_9abc_def0);
    for (k, cfg) in t.sorted_entries().into_iter().rev() {
        t2.insert(k, cfg.clone());
    }
    assert_eq!(text, t2.to_text(), "insertion order must not leak");
}
