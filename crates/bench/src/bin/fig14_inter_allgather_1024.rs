//! Figure 14: inter-node Allgather on 1024 processes
//! (32 nodes x 32 PPN), medium and large message sweeps. Both panels run
//! as campaigns (see `mha_bench::campaign`). With `--tuned` each panel
//! gains an `MHA-tuned` column served from the `mha-tune` tuning table
//! (`results/tuned_thor.mtab` or `MHA_TUNED_TABLE`) by pure probes.

use mha_apps::paper_contestants;
use mha_bench::campaign::{allgather_sweep_tuned, CampaignConfig};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let tuned = mha_bench::apply_tuned_flag();
    let spec = ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let grid = ProcGrid::new(32, 32);
    let medium = allgather_sweep_tuned(
        "Figure 14a: Allgather latency (us), 1024 processes, medium messages",
        grid,
        &mha_bench::medium_sizes(),
        &paper_contestants(),
        tuned.as_ref(),
        &spec,
        &cfg,
    )
    .unwrap();
    mha_bench::emit(&medium, "fig14_inter_allgather_1024_medium");
    let large = allgather_sweep_tuned(
        "Figure 14b: Allgather latency (us), 1024 processes, large messages",
        grid,
        &mha_bench::large_sizes(),
        &paper_contestants(),
        tuned.as_ref(),
        &spec,
        &cfg,
    )
    .unwrap();
    mha_bench::emit(&large, "fig14_inter_allgather_1024_large");
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built =
        mha_collectives::mha::build_mha_inter(grid, 64 * 1024, Default::default(), &spec).unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig14_inter_allgather_1024");
}
