//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `parking_lot` API it actually uses. Unlike
//! the real crate this one ignores poisoning (a panicked lock holder does
//! not poison the lock), which matches `parking_lot` semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock; the poison flag is discarded.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
