//! Extension experiment: the multi-HCA-aware recipe applied to Broadcast
//! (the paper's future work mentions "other collectives") — hierarchical +
//! segmented + shm-overlapped vs the flat binomial tree.

use mha_apps::report::{fmt_bytes, Table};
use mha_collectives::{build_binomial_bcast, build_mha_bcast};
use mha_sched::{ProcGrid, RankId};
use mha_simnet::{size_sweep, ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 16);
    let mut t = Table::new(
        "Extension: Broadcast, 8 nodes x 16 PPN (segment = 256 KB)",
        "msg_bytes",
        vec![
            "binomial_us".into(),
            "mha_bcast_us".into(),
            "gain_pct".into(),
        ],
    );
    for msg in size_sweep(64 * 1024, 16 << 20) {
        let flat = build_binomial_bcast(grid, msg, RankId(0));
        let mha = build_mha_bcast(grid, msg, RankId(0), 256 * 1024, &spec).unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        t.push(
            fmt_bytes(msg),
            vec![t_flat, t_mha, (1.0 - t_mha / t_flat) * 100.0],
        );
    }
    mha_bench::emit(&t, "ablate_bcast");
}
