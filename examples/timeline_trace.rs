//! Figure 2 in your terminal: the flat Ring Allgather timeline showing
//! inter-node transfers (r) waiting on intra-node CMA hops (c), next to
//! the overlapped MHA-inter pipeline.
//!
//! ```sh
//! cargo run --release --example timeline_trace
//! ```

use mha::collectives::mha::{build_mha_inter, MhaInterConfig};
use mha::collectives::AllgatherAlgo;
use mha::sched::ProcGrid;
use mha::simnet::{ClusterSpec, SimConfig, Simulator};

fn main() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(2, 2);
    let msg = 1 << 20;

    let ring = AllgatherAlgo::Ring.build(grid, msg, &spec).unwrap();
    let res = sim
        .run_with(&ring.sched, SimConfig { trace: true })
        .unwrap();
    println!("flat Ring Allgather, 2 nodes x 2 PPN, 1 MB (the paper's Figure 2):");
    println!("{}", res.trace.unwrap().render_ascii(96));

    let mha = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
    let res = sim.run_with(&mha.sched, SimConfig { trace: true }).unwrap();
    println!("hierarchical MHA-inter on the same problem:");
    println!("{}", res.trace.unwrap().render_ascii(96));
    println!("legend: c = CMA transfer, r = rail transfer, o = memcpy, . = idle");
}
