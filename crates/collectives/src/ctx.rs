//! Common build context for Allgather schedules.
//!
//! Every Allgather algorithm works against the same buffer layout: rank `r`
//! contributes `msg` bytes from its send buffer and must end with
//! `nranks * msg` bytes in its receive buffer — block `k` (at offset
//! `k * msg`) being rank `k`'s contribution (MPI_Allgather semantics).

use mha_sched::{
    BufId, Channel, FrozenSchedule, Loc, OpId, ProcGrid, RankCursors, RankId, ScheduleBuilder,
};

/// A finished collective schedule plus the handles verification needs.
#[derive(Debug, Clone)]
pub struct Built {
    /// The schedule itself.
    pub sched: FrozenSchedule,
    /// Per-rank send buffer (length = per-rank contribution).
    pub send: Vec<BufId>,
    /// Per-rank receive buffer (the collective's output).
    pub recv: Vec<BufId>,
    /// Per-rank contribution size in bytes (Allgather) or the vector length
    /// in bytes (Allreduce).
    pub msg: usize,
}

/// Mutable state threaded through an Allgather construction.
pub(crate) struct Ctx {
    pub b: ScheduleBuilder,
    pub cur: RankCursors,
    pub send: Vec<BufId>,
    pub recv: Vec<BufId>,
    pub msg: usize,
    /// When `false` (plain Allgather), rank `r`'s contribution lives in its
    /// send buffer and is ready at t = 0. When `true` (the Allgather phase
    /// of Ring-Allreduce), the contribution is block `r` of the *receive*
    /// buffer, produced by earlier ops — readiness is [`Ctx::ready_deps`].
    contrib_in_recv: bool,
    /// Per-rank op that produced the contribution (contrib-in-recv mode).
    ready: Vec<Vec<OpId>>,
}

impl Ctx {
    /// Declares the standard Allgather buffers for `grid`. A `msg` of zero
    /// is legal (MPI_Allgather with count 0 is a no-op); builders must
    /// detect it via [`Ctx::is_degenerate`] and finish with
    /// [`Ctx::finish_degenerate`] instead of emitting zero-length transfers.
    pub fn new(grid: ProcGrid, msg: usize, name: impl Into<String>) -> Self {
        let mut b = ScheduleBuilder::new(grid, name);
        let nranks = grid.nranks();
        let send = grid
            .ranks()
            .map(|r| b.private_buf(r, msg, format!("send/{r}")))
            .collect();
        let recv = grid
            .ranks()
            .map(|r| b.private_buf(r, nranks as usize * msg, format!("recv/{r}")))
            .collect();
        Ctx {
            cur: RankCursors::new(&grid),
            b,
            send,
            recv,
            msg,
            contrib_in_recv: false,
            ready: vec![Vec::new(); nranks as usize],
        }
    }

    /// Declares Allreduce buffers: per-rank send and recv of the full
    /// vector (`nranks * chunk` bytes each). Block `r` of the recv buffer is
    /// rank `r`'s reduce-scatter result, which becomes its Allgather
    /// contribution; callers mark readiness via [`Ctx::set_ready`] before
    /// emitting the Allgather phase.
    pub fn for_allreduce(grid: ProcGrid, chunk: usize, name: impl Into<String>) -> Self {
        let mut b = ScheduleBuilder::new(grid, name);
        let nranks = grid.nranks();
        let total = nranks as usize * chunk;
        let send = grid
            .ranks()
            .map(|r| b.private_buf(r, total, format!("send/{r}")))
            .collect();
        let recv = grid
            .ranks()
            .map(|r| b.private_buf(r, total, format!("recv/{r}")))
            .collect();
        Ctx {
            cur: RankCursors::new(&grid),
            b,
            send,
            recv,
            msg: chunk,
            contrib_in_recv: true,
            ready: vec![Vec::new(); nranks as usize],
        }
    }

    /// Records that `op` completed `rank`'s contribution (contrib-in-recv
    /// mode only).
    pub fn set_ready(&mut self, rank: RankId, op: OpId) {
        self.ready[rank.index()] = vec![op];
    }

    /// Dependencies a transfer must honour before reading `rank`'s
    /// contribution "from the origin". Empty for plain Allgather (send
    /// buffers are ready at t = 0).
    pub fn ready_deps(&self, rank: RankId) -> Vec<OpId> {
        self.ready[rank.index()].clone()
    }

    /// The grid under construction.
    pub fn grid(&self) -> ProcGrid {
        *self.b.grid()
    }

    /// Location of block `block` inside `rank`'s receive buffer.
    pub fn recv_block(&self, rank: RankId, block: u32) -> Loc {
        Loc::new(self.recv[rank.index()], block as usize * self.msg)
    }

    /// Location of `rank`'s contribution: its send buffer for a plain
    /// Allgather, block `rank` of its receive buffer in contrib-in-recv
    /// (Allreduce phase-B) mode.
    pub fn send_loc(&self, rank: RankId) -> Loc {
        if self.contrib_in_recv {
            self.recv_block(rank, rank.0)
        } else {
            Loc::new(self.send[rank.index()], 0)
        }
    }

    /// The channel MPI point-to-point would use between two ranks: CMA when
    /// co-located, the multi-rail pt2pt layer otherwise.
    pub fn channel_between(&self, a: RankId, b: RankId) -> Channel {
        if self.b.grid().same_node(a, b) {
            Channel::Cma
        } else {
            Channel::AllRails
        }
    }

    /// Emits `rank`'s local copy of its own contribution into its receive
    /// buffer (the first thing every Allgather does), chained in the rank's
    /// program order. In contrib-in-recv mode the data is already in place,
    /// so a zero-cost synchronization marker is emitted instead (it carries
    /// the rank's program order into the Allgather phase).
    pub fn self_copy(&mut self, rank: RankId, step: u32) -> OpId {
        let deps = self.cur.deps_of(rank);
        let op = if self.contrib_in_recv {
            self.b.push(
                mha_sched::OpKind::Compute {
                    actor: rank,
                    flops: 0,
                },
                &deps,
                step,
                "sync",
            )
        } else {
            let src = self.send_loc(rank);
            let dst = self.recv_block(rank, rank.0);
            self.b.copy(rank, src, dst, self.msg, &deps, step)
        };
        self.cur.advance(rank, op);
        op
    }

    /// Emits self-copies for every rank.
    pub fn self_copies_all(&mut self, step: u32) -> Vec<OpId> {
        self.grid()
            .ranks()
            .map(|r| self.self_copy(r, step))
            .collect()
    }

    /// Whether the collective moves zero bytes (`msg == 0`).
    pub fn is_degenerate(&self) -> bool {
        self.msg == 0
    }

    /// Emits the zero-byte collective body: one zero-flop marker per rank
    /// (structural validation rejects zero-length transfers and copies, so
    /// nothing else may be emitted). The result validates, executes, and
    /// trivially satisfies the Allgather postcondition.
    pub fn emit_degenerate(&mut self) {
        debug_assert!(self.is_degenerate());
        for r in self.grid().ranks() {
            let deps = self.cur.deps_of(r);
            let op = self.b.push(
                mha_sched::OpKind::Compute { actor: r, flops: 0 },
                &deps,
                0,
                "empty",
            );
            self.cur.advance(r, op);
        }
    }

    /// [`Ctx::emit_degenerate`] + [`Ctx::finish`] in one call.
    pub fn finish_degenerate(mut self) -> Built {
        self.emit_degenerate();
        self.finish()
    }

    /// Finishes construction.
    pub fn finish(self) -> Built {
        Built {
            sched: self.b.finish().freeze(),
            send: self.send,
            recv: self.recv,
            msg: self.msg,
        }
    }
}

/// Errors a collective constructor can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The algorithm requires a power-of-two process/node count.
    RequiresPowerOfTwo {
        /// What must be a power of two (e.g. "ranks", "nodes").
        what: &'static str,
        /// The offending count.
        got: u32,
    },
    /// The algorithm requires the vector length to divide evenly.
    IndivisibleVector {
        /// Total elements.
        elems: usize,
        /// Required divisor.
        ranks: u32,
    },
    /// A parameter was out of range (e.g. more leader groups than ranks).
    BadParameter(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RequiresPowerOfTwo { what, got } => {
                write!(f, "{what} must be a power of two, got {got}")
            }
            BuildError::IndivisibleVector { elems, ranks } => {
                write!(
                    f,
                    "vector of {elems} elements not divisible by {ranks} ranks"
                )
            }
            BuildError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_declares_standard_buffers() {
        let grid = ProcGrid::new(2, 2);
        let ctx = Ctx::new(grid, 64, "t");
        let built = ctx.finish();
        assert_eq!(built.send.len(), 4);
        assert_eq!(built.recv.len(), 4);
        assert_eq!(built.sched.buffer(built.send[0]).len, 64);
        assert_eq!(built.sched.buffer(built.recv[3]).len, 256);
    }

    #[test]
    fn self_copy_targets_own_block() {
        let grid = ProcGrid::new(1, 3);
        let mut ctx = Ctx::new(grid, 10, "t");
        ctx.self_copies_all(0);
        let built = ctx.finish();
        assert_eq!(built.sched.ops().len(), 3);
        mha_sched::validate(&built.sched, None).unwrap();
        // Rank 2's self copy lands at offset 20.
        match &built.sched.ops()[2].kind {
            mha_sched::OpKind::Copy { dst, .. } => assert_eq!(dst.offset, 20),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn channel_selection_follows_topology() {
        let grid = ProcGrid::new(2, 2);
        let ctx = Ctx::new(grid, 8, "t");
        assert_eq!(ctx.channel_between(RankId(0), RankId(1)), Channel::Cma);
        assert_eq!(ctx.channel_between(RankId(1), RankId(2)), Channel::AllRails);
    }

    #[test]
    fn zero_message_builds_a_degenerate_schedule() {
        let grid = ProcGrid::new(2, 2);
        let ctx = Ctx::new(grid, 0, "t");
        assert!(ctx.is_degenerate());
        let built = ctx.finish_degenerate();
        assert_eq!(built.msg, 0);
        assert_eq!(built.sched.ops().len(), 4);
        mha_sched::validate(&built.sched, None).unwrap();
        for op in built.sched.ops() {
            assert!(matches!(
                op.kind,
                mha_sched::OpKind::Compute { flops: 0, .. }
            ));
        }
    }
}
