//! Empirical calibration: measure the Table 1 parameters on the simulator
//! the way the paper measures them on Thor ("we must first empirically
//! obtain parameters in Table 1", Section 4.3).
//!
//! Each parameter pair `(α, BW)` comes from a two-point linear fit of the
//! measured transfer time at a small and a large size — exactly the
//! standard α–β fitting procedure.

use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::{ClusterSpec, SimError, Simulator};

use crate::params::ModelParams;

fn fit_alpha_beta(s1: usize, t1: f64, s2: usize, t2: f64) -> (f64, f64) {
    let slope = (t2 - t1) / (s2 - s1) as f64; // seconds per byte
    let alpha = t1 - slope * s1 as f64;
    (alpha.max(0.0), 1.0 / slope)
}

fn time_cma(sim: &Simulator, len: usize) -> Result<f64, SimError> {
    let grid = ProcGrid::single_node(2);
    let mut b = ScheduleBuilder::new(grid, "cal-cma");
    let s = b.private_buf(RankId(0), len, "s");
    let d = b.private_buf(RankId(1), len, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        len,
        Channel::Cma,
        &[],
        0,
    );
    Ok(sim.run(&b.finish().freeze())?.makespan)
}

fn time_rails(sim: &Simulator, len: usize) -> Result<f64, SimError> {
    let grid = ProcGrid::new(2, 1);
    let mut b = ScheduleBuilder::new(grid, "cal-rails");
    let s = b.private_buf(RankId(0), len, "s");
    let d = b.private_buf(RankId(1), len, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        len,
        Channel::AllRails,
        &[],
        0,
    );
    Ok(sim.run(&b.finish().freeze())?.makespan)
}

fn time_copy(sim: &Simulator, len: usize, concurrency: u32) -> Result<f64, SimError> {
    let grid = ProcGrid::single_node(concurrency.max(1));
    let mut b = ScheduleBuilder::new(grid, "cal-copy");
    let shm = b.shared_buf(mha_sched::NodeId(0), len, "shm");
    for r in 0..concurrency.max(1) {
        let d = b.private_buf(RankId(r), len, "d");
        b.copy(RankId(r), Loc::new(shm, 0), Loc::new(d, 0), len, &[], 0);
    }
    Ok(sim.run(&b.finish().freeze())?.makespan)
}

/// Measured calibration of [`ModelParams`] against a simulated cluster.
///
/// The structural parameters that are properties of the protocol rather
/// than of measured curves (`H`, the rendezvous threshold and surcharge,
/// the CMA memory weight) are taken from the spec; everything else is
/// fitted from simulated micro-measurements.
pub fn calibrate(spec: &ClusterSpec) -> Result<ModelParams, SimError> {
    let sim = Simulator::new(spec.clone())?;
    // Sizes above the rendezvous threshold so the fitted α_H includes the
    // handshake (the regime the Section 4.3 validation sweeps cover).
    let (s1, s2) = (256 * 1024, 4 << 20);

    let (alpha_c, bw_c) = fit_alpha_beta(s1, time_cma(&sim, s1)?, s2, time_cma(&sim, s2)?);
    let (alpha_h_eff, bw_h_all) =
        fit_alpha_beta(s1, time_rails(&sim, s1)?, s2, time_rails(&sim, s2)?);
    let (alpha_l, bw_l) = fit_alpha_beta(s1, time_copy(&sim, s1, 1)?, s2, time_copy(&sim, s2, 1)?);

    // Memory bandwidth from the congestion of many concurrent copies:
    // k copies of S bytes complete in ≈ k·S / mem_bw once congested.
    let k = spec.cores_per_node.min(16);
    let t_k = time_copy(&sim, s2, k)?;
    let mem_bw = (f64::from(k) * s2 as f64 / t_k).min(spec.mem_bw * 1.01);

    Ok(ModelParams {
        alpha_c,
        bw_c,
        alpha_h: (alpha_h_eff - spec.rndv_extra).max(0.0),
        alpha_h_rndv: spec.rndv_extra,
        rndv_threshold: spec.rndv_threshold,
        bw_h: bw_h_all / f64::from(spec.rails),
        h: u32::from(spec.rails),
        alpha_l,
        bw_l,
        mem_bw,
        cma_mem_weight: spec.cma_mem_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-30)
    }

    #[test]
    fn calibration_recovers_spec_bandwidths() {
        let spec = ClusterSpec::thor();
        let p = calibrate(&spec).unwrap();
        p.validate().unwrap();
        assert!(
            rel(p.bw_c, spec.cma_bw) < 0.02,
            "bw_c {} vs {}",
            p.bw_c,
            spec.cma_bw
        );
        assert!(rel(p.bw_h, spec.rail_bw) < 0.02);
        assert!(rel(p.bw_l, spec.copy_bw) < 0.02);
        assert!(
            rel(p.mem_bw, spec.mem_bw) < 0.1,
            "mem {} vs {}",
            p.mem_bw,
            spec.mem_bw
        );
    }

    #[test]
    fn calibration_recovers_startups_approximately() {
        let spec = ClusterSpec::thor();
        let p = calibrate(&spec).unwrap();
        assert!((p.alpha_c - spec.cma_alpha).abs() < 1e-6);
        assert!((p.alpha_l - spec.copy_alpha).abs() < 1e-6);
        assert!((p.alpha_h - spec.rail_alpha).abs() < 1e-6);
    }

    #[test]
    fn calibration_tracks_single_rail_cluster() {
        let spec = ClusterSpec::thor_single_rail();
        let p = calibrate(&spec).unwrap();
        assert_eq!(p.h, 1);
        assert!(rel(p.bw_h, spec.rail_bw) < 0.02);
    }

    #[test]
    fn two_point_fit_is_exact_on_affine_data() {
        let (alpha, bw) = fit_alpha_beta(100, 1e-6 + 100.0 / 1e9, 1000, 1e-6 + 1000.0 / 1e9);
        assert!((alpha - 1e-6).abs() < 1e-12);
        assert!(rel(bw, 1e9) < 1e-9);
    }
}
