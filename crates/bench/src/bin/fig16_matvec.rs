//! Figure 16: matrix–vector multiplication kernel, GFLOP/s (higher is
//! better), strong scaling of 1024×32768 and weak scaling to 1024×131072.

use mha_apps::matvec::{run_matvec, MatvecConfig};
use mha_apps::report::Table;
use mha_apps::{paper_contestants, Contestant};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn sweep(title: &str, cfg_of: impl Fn(ProcGrid) -> MatvecConfig, name: &str, spec: &ClusterSpec) {
    let contestants = paper_contestants();
    let mut t = Table::new(
        title,
        "processes",
        contestants.iter().map(Contestant::name).collect(),
    );
    for nodes in [8u32, 16, 32] {
        let grid = ProcGrid::new(nodes, 32);
        let cfg = cfg_of(grid);
        let mut row = Vec::new();
        for c in &contestants {
            row.push(run_matvec(cfg, *c, spec).unwrap().gflops);
        }
        t.push(
            format!("{} ({}x{})", grid.nranks(), cfg.rows, cfg.cols),
            row,
        );
    }
    mha_bench::emit(&t, name);
}

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    sweep(
        "Figure 16a: matvec strong scaling, GFLOP/s (1024 x 32768)",
        MatvecConfig::strong_scaling,
        "fig16_matvec_strong",
        &spec,
    );
    sweep(
        "Figure 16b: matvec weak scaling, GFLOP/s",
        MatvecConfig::weak_scaling,
        "fig16_matvec_weak",
        &spec,
    );
    // Summarize the collective the kernel is bound by: the per-iteration
    // result-vector Allgather on the 256-process strong-scaling point.
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 32);
    let msg = 32768 * 8 / grid.nranks() as usize;
    let built =
        mha_collectives::mha::build_mha_inter(grid, msg, Default::default(), &spec).unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig16_matvec");
}
