//! Figure 1: bandwidth comparison between intra-node communication (CMA)
//! and inter-node communication with one and two HCAs, 8 KB – 4 MB.
//! Each message size is one campaign point (see `mha_bench::campaign`);
//! the three placements share the row's point.

use std::sync::Arc;

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_simnet::{pt2pt_bandwidth_mbps, size_sweep, ClusterSpec, Placement, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let window = 64;
    let two = Arc::new(Simulator::new(ClusterSpec::thor()).unwrap());
    let one = Arc::new(Simulator::new(ClusterSpec::thor_single_rail()).unwrap());
    let sizes = size_sweep(8 * 1024, 4 << 20);
    let points: Vec<CampaignPoint> = sizes
        .iter()
        .map(|&m| {
            let two = Arc::clone(&two);
            let one = Arc::clone(&one);
            CampaignPoint::custom(fmt_bytes(m), move |_seed| {
                let intra = pt2pt_bandwidth_mbps(&two, Placement::IntraNode, m, window)
                    .map_err(|e| e.to_string())?;
                let inter1 = pt2pt_bandwidth_mbps(&one, Placement::InterNode, m, window)
                    .map_err(|e| e.to_string())?;
                let inter2 = pt2pt_bandwidth_mbps(&two, Placement::InterNode, m, window)
                    .map_err(|e| e.to_string())?;
                Ok(vec![Row::new(fmt_bytes(m), vec![intra, inter1, inter2])])
            })
        })
        .collect();
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Figure 1: pt2pt bandwidth (MB/s), intra-node CMA vs inter-node 1/2 HCAs",
        "msg_bytes",
        vec![
            "intra-node CMA".into(),
            "inter-node 1 HCA".into(),
            "inter-node 2 HCAs".into(),
        ],
    );
    for pr in &report.results {
        for row in &pr.rows {
            t.push(row.label.clone(), row.values.clone());
        }
    }
    mha_bench::emit(&t, "fig01_bandwidth");
    mha_bench::emit_run_summary(
        &two,
        &mha_bench::pt2pt_rails_schedule(4 << 20),
        "fig01_bandwidth",
    );
}
