//! Differential tests pinning the incremental water-filler to the scratch
//! reference solver, bit for bit.
//!
//! The incremental engine's whole correctness argument rests on one
//! invariant: a memoized replay returns *exactly* the floats the reference
//! `fill_with` would compute for the same component. These tests attack
//! that invariant with seeded random components (including shapes that
//! collide in the memo on purpose), EPS-boundary near-ties, and
//! state-leakage probes across interleaved components and runs.

use mha_simnet::{FlowSpec, IncrementalFiller, ResourceId, WaterFiller};

/// splitmix64 — deterministic, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// One random max-min component: per-flow caps and weighted resource
/// memberships, plus per-resource capacities.
struct Component {
    flows: Vec<(f64, Vec<(ResourceId, f64)>)>,
    caps: Vec<f64>,
}

impl Component {
    fn random(rng: &mut Rng) -> Self {
        let n_res = 1 + rng.below(12) as usize;
        let n_flows = 1 + rng.below(10) as usize;
        // Occasionally quantize capacities so several resources saturate at
        // *exactly* the same level — the tie-handling hot seat.
        let quantize = rng.below(4) == 0;
        let caps: Vec<f64> = (0..n_res)
            .map(|_| {
                let c = 0.5 + 10.0 * rng.unit();
                if quantize {
                    (c * 4.0).round() / 4.0
                } else {
                    c
                }
            })
            .collect();
        let flows = (0..n_flows)
            .map(|_| {
                let cap = 0.1 + 5.0 * rng.unit();
                let deg = 1 + rng.below(3) as usize;
                let mut rs: Vec<(ResourceId, f64)> = Vec::new();
                for _ in 0..deg {
                    let r = ResourceId(rng.below(n_res as u64) as u32);
                    if rs.iter().any(|&(x, _)| x == r) {
                        continue; // membership is a set
                    }
                    let w = if rng.below(3) == 0 {
                        1.0
                    } else {
                        0.25 + rng.unit()
                    };
                    rs.push((r, w));
                }
                (cap, rs)
            })
            .collect();
        Component { flows, caps }
    }

    fn specs(&self) -> Vec<FlowSpec<'_>> {
        self.flows
            .iter()
            .map(|(cap, rs)| FlowSpec {
                cap: *cap,
                resources: rs,
            })
            .collect()
    }

    fn capacity(&self, r: ResourceId) -> f64 {
        self.caps[r.index()]
    }
}

fn scratch_rates(c: &Component) -> Vec<f64> {
    let mut f = WaterFiller::new();
    let mut rates = Vec::new();
    f.fill(&c.specs(), |r| c.capacity(r), &mut rates).unwrap();
    rates
}

fn assert_rates_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: flow count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate[{i}] {x} vs {y}");
    }
}

/// 500 seeded random components: the memoized filler must return the
/// reference solver's exact bits on the cold (miss) solve AND on the warm
/// (hit) replay, with every component folded into one shared cache.
#[test]
fn five_hundred_random_components_match_scratch_bit_for_bit() {
    let mut rng = Rng(0x5eed_0001);
    let mut inc = IncrementalFiller::new();
    inc.reset(16);
    let mut rates = Vec::new();
    for case in 0..500 {
        let c = Component::random(&mut rng);
        let want = scratch_rates(&c);
        for pass in 0..2 {
            let specs = c.specs();
            inc.fill_view(
                specs.len(),
                |i| specs[i],
                |r| c.capacity(r),
                &mut rates,
                true,
            )
            .unwrap();
            assert_rates_eq(&rates, &want, &format!("case {case} pass {pass}"));
        }
    }
    let stats = inc.stats();
    assert!(stats.hits >= 500, "every second pass must hit the memo");
}

/// Near-tie determinism at the EPS boundary: resources whose saturation
/// levels differ by amounts straddling the solver's internal tolerance
/// must still produce one well-defined answer — the same bits from a
/// fresh solver every time, and from a memo replay.
#[test]
fn eps_boundary_ties_are_deterministic() {
    // Two resources at capacity c and c*(1+delta) shared by symmetric
    // flows, with delta swept from well below f64 ULP scale through the
    // solver's EPS (1e-9) and beyond.
    for &delta in &[0.0, 1e-16, 1e-13, 1e-11, 1e-10, 1e-9, 5e-9, 1e-6] {
        let r0 = ResourceId(0);
        let r1 = ResourceId(1);
        let shared = [(r0, 1.0), (r1, 1.0)];
        let only0 = [(r0, 1.0)];
        let only1 = [(r1, 1.0)];
        let flows = [
            FlowSpec {
                cap: 10.0,
                resources: &shared,
            },
            FlowSpec {
                cap: 10.0,
                resources: &only0,
            },
            FlowSpec {
                cap: 10.0,
                resources: &only1,
            },
        ];
        let caps = [2.0, 2.0 * (1.0 + delta)];
        let capacity = |r: ResourceId| caps[r.index()];

        let mut reference = Vec::new();
        WaterFiller::new()
            .fill(&flows, capacity, &mut reference)
            .unwrap();
        // Same bits from any number of fresh solvers…
        for rep in 0..3 {
            let mut rates = Vec::new();
            WaterFiller::new()
                .fill(&flows, capacity, &mut rates)
                .unwrap();
            assert_rates_eq(&rates, &reference, &format!("delta {delta:e} rep {rep}"));
        }
        // …and from the memoized path, cold and warm.
        let mut inc = IncrementalFiller::new();
        inc.reset(2);
        for pass in 0..2 {
            let mut rates = Vec::new();
            inc.fill_view(flows.len(), |i| flows[i], capacity, &mut rates, true)
                .unwrap();
            assert_rates_eq(&rates, &reference, &format!("delta {delta:e} memo {pass}"));
        }
        // Total allocation never exceeds the tighter capacity by more than
        // rounding noise (sanity that the near-tie did not over-fill).
        let used: f64 = [reference[0], reference[1]].iter().sum();
        assert!(used <= caps[0] * (1.0 + 1e-9), "over-filled r0: {used}");
    }
}

/// Interleaving distinct components through one filler must not let state
/// leak between them: each component keeps answering with exactly the
/// bits a dedicated fresh solver produces, in any order, across resets.
#[test]
fn no_state_leaks_across_interleaved_components_and_resets() {
    let mut rng = Rng(0xabcd_ef01);
    let components: Vec<Component> = (0..8).map(|_| Component::random(&mut rng)).collect();
    let want: Vec<Vec<f64>> = components.iter().map(scratch_rates).collect();

    let mut inc = IncrementalFiller::new();
    inc.reset(16);
    let mut rates = Vec::new();
    // A/B/A/C… access pattern, then a reset (new "run", warm cache), then
    // the same pattern again.
    let order = [0usize, 1, 0, 2, 3, 2, 4, 5, 6, 7, 0, 7];
    for round in 0..2 {
        for &ci in &order {
            let c = &components[ci];
            let specs = c.specs();
            inc.fill_view(
                specs.len(),
                |i| specs[i],
                |r| c.capacity(r),
                &mut rates,
                true,
            )
            .unwrap();
            assert_rates_eq(&rates, &want[ci], &format!("round {round} component {ci}"));
        }
        inc.reset(16);
    }
}
