//! Runtime invariant checking over the [`Probe`] event stream.
//!
//! [`InvariantProbe`] is a [`Probe`] sink that audits a run instead of
//! recording it. It asserts, for any backend:
//!
//! * **Causality** — no op starts before every one of its predecessors has
//!   finished (checked against the frozen CSR adjacency at `end_run`, so
//!   the threaded executor's time-sorted replay is judged by timestamps,
//!   not stream order);
//! * **Span completeness** — every op reports both a start and an end.
//!
//! And additionally, for backends that narrate fluid flows (the simulator;
//! it returns `true` from [`Probe::wants_flows`] so those events are
//! emitted):
//!
//! * **Capacity** — at no instant does the weighted sum of flow rates
//!   crossing a resource exceed its declared capacity. Rates are piecewise
//!   constant between events, so the check is applied to each maximal
//!   constant-rate interval: mutations at one timestamp are applied first,
//!   and the aggregate is audited when simulated time advances (a single
//!   water-fill recompute reassigns component rates one flow at a time, so
//!   mid-recompute transients at one instant are not violations);
//! * **Flow conservation** — every flow drains exactly the bytes it
//!   declared (the integral of its rate over its lifetime), and no flow is
//!   left active at `end_run`.
//!
//! Violations accumulate instead of panicking so a run can be audited
//! wholesale; call [`InvariantProbe::assert_clean`] to turn any violation
//! into a panic with a readable report (what `fig* --check` does).

use std::fmt;

use crate::frozen::FrozenSchedule;
use crate::probe::Probe;

/// Absolute slack (bytes) allowed between a flow's declared size and the
/// integral of its rate; covers the engine's own `remaining < 1.0` settle.
const BYTES_ABS_TOL: f64 = 1.0;
/// Relative slack for byte conservation and capacity sums.
const REL_TOL: f64 = 1e-6;
/// Keep at most this many violations; further ones only bump the count.
const MAX_RECORDED: usize = 64;

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An op started before one of its predecessors ended.
    Causality {
        /// The op that started early.
        op: u32,
        /// The predecessor still running at that point.
        pred: u32,
        /// When the predecessor ended.
        pred_end: f64,
        /// When the op started.
        start: f64,
    },
    /// An op never reported a start/end pair.
    MissingSpan {
        /// The op with an incomplete span.
        op: u32,
    },
    /// A resource's aggregate flow rate exceeded its capacity over a
    /// constant-rate interval.
    Capacity {
        /// Dense resource index (see [`Probe::resource_decl`]).
        resource: u32,
        /// Resource label, e.g. `tx(n0,h1)`.
        label: String,
        /// Aggregate weighted rate observed (bytes/s).
        load: f64,
        /// Declared capacity (bytes/s).
        capacity: f64,
        /// Start of the oversubscribed interval (seconds).
        t: f64,
    },
    /// A flow finished having moved a different number of bytes than it
    /// declared at creation.
    FlowConservation {
        /// The op the flow belonged to.
        op: u32,
        /// The flow index.
        flow: u32,
        /// Bytes declared at [`Probe::flow_begin`].
        declared: f64,
        /// Bytes integrated from the rate timeline.
        moved: f64,
    },
    /// A flow was still active when the run ended.
    UnfinishedFlow {
        /// The op the flow belonged to.
        op: u32,
        /// The flow index.
        flow: u32,
    },
    /// A down resource (capacity 0 after a fault) carried positive flow
    /// rate over a constant-rate interval — a flow progressed on a dead
    /// rail.
    DownResourceActive {
        /// Dense resource index (see [`Probe::resource_decl`]).
        resource: u32,
        /// Resource label, e.g. `tx(n0,h1)`.
        label: String,
        /// Aggregate weighted rate observed (bytes/s).
        load: f64,
        /// Start of the offending interval (seconds).
        t: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Causality {
                op,
                pred,
                pred_end,
                start,
            } => write!(
                f,
                "causality: op {op} started at {start:.9e}s before pred {pred} ended at {pred_end:.9e}s"
            ),
            Violation::MissingSpan { op } => {
                write!(f, "span: op {op} never reported a complete start/end pair")
            }
            Violation::Capacity {
                resource,
                label,
                load,
                capacity,
                t,
            } => write!(
                f,
                "capacity: resource {resource} ({label}) carried {load:.6e} B/s > capacity {capacity:.6e} B/s from t={t:.9e}s"
            ),
            Violation::FlowConservation {
                op,
                flow,
                declared,
                moved,
            } => write!(
                f,
                "conservation: flow {flow} of op {op} moved {moved:.3} of {declared:.3} declared bytes"
            ),
            Violation::UnfinishedFlow { op, flow } => {
                write!(f, "conservation: flow {flow} of op {op} still active at end of run")
            }
            Violation::DownResourceActive {
                resource,
                label,
                load,
                t,
            } => write!(
                f,
                "fault: down resource {resource} ({label}) carried {load:.6e} B/s from t={t:.9e}s"
            ),
        }
    }
}

/// State of one active fluid flow.
#[derive(Debug, Clone)]
struct FlowState {
    op: u32,
    resources: Vec<(u32, f64)>,
    declared: f64,
    rate: f64,
    last_t: f64,
    moved: f64,
}

/// A [`Probe`] sink that audits causality, per-resource capacity and byte
/// conservation (see the module docs for the exact invariants).
///
/// Reusable: [`Probe::begin_run`] resets all state, so one instance can
/// audit many runs back to back (violations accumulate across runs until
/// [`InvariantProbe::take_violations`]).
#[derive(Debug, Default)]
pub struct InvariantProbe {
    backend: &'static str,
    schedule: String,
    // Frozen DAG predecessors, copied as offsets + flat list.
    pred_off: Vec<u32>,
    pred_list: Vec<u32>,
    // Per-op observed spans.
    start: Vec<f64>,
    end: Vec<f64>,
    // Declared resources.
    caps: Vec<f64>,
    labels: Vec<String>,
    load: Vec<f64>,
    // Resources whose load changed since the last capacity audit.
    touched: Vec<u32>,
    touch_stamp: Vec<u64>,
    epoch: u64,
    // Active flows, indexed by the backend's (recycled) flow index.
    flows: Vec<Option<FlowState>>,
    cur_t: f64,
    dirty: bool,
    violations: Vec<Violation>,
    /// Total violations observed (recorded + dropped past [`MAX_RECORDED`]).
    total: usize,
    runs: usize,
}

impl InvariantProbe {
    /// A fresh auditor with no recorded violations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Violations recorded so far (capped at an internal limit; see
    /// [`InvariantProbe::total_violations`] for the uncapped count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations observed, including any dropped past the recording
    /// cap.
    pub fn total_violations(&self) -> usize {
        self.total
    }

    /// Whether every audited run was violation-free.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Drains the recorded violations, resetting the counters.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        self.total = 0;
        std::mem::take(&mut self.violations)
    }

    /// Consumes the auditor, returning every recorded violation.
    pub fn finish(self) -> Vec<Violation> {
        self.violations
    }

    /// Panics with a readable report if any violation was observed.
    ///
    /// # Panics
    ///
    /// When at least one invariant was violated; the message lists up to
    /// the first few violations plus the schedule and backend they came
    /// from.
    pub fn assert_clean(&self) {
        if self.is_clean() {
            return;
        }
        let mut msg = format!(
            "invariant check failed: {} violation(s) on schedule `{}` ({} backend, {} run(s)):\n",
            self.total, self.schedule, self.backend, self.runs
        );
        for v in self.violations.iter().take(8) {
            msg.push_str("  - ");
            msg.push_str(&v.to_string());
            msg.push('\n');
        }
        if self.total > 8 {
            msg.push_str(&format!("  ... and {} more\n", self.total - 8));
        }
        panic!("{msg}");
    }

    fn record(&mut self, v: Violation) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(v);
        }
    }

    /// Advances audited time to `t`, checking every touched resource's
    /// aggregate load over the interval that just closed.
    fn commit(&mut self, t: f64) {
        if t <= self.cur_t {
            return;
        }
        if self.dirty {
            self.audit_touched();
            self.dirty = false;
        }
        self.cur_t = t;
    }

    fn audit_touched(&mut self) {
        let t = self.cur_t;
        let touched = std::mem::take(&mut self.touched);
        for &r in &touched {
            let (load, cap) = (self.load[r as usize], self.caps[r as usize]);
            if cap == 0.0 && load > 1e-3 {
                self.record(Violation::DownResourceActive {
                    resource: r,
                    label: self.labels[r as usize].clone(),
                    load,
                    t,
                });
            } else if load > cap * (1.0 + REL_TOL) + 1e-3 {
                self.record(Violation::Capacity {
                    resource: r,
                    label: self.labels[r as usize].clone(),
                    load,
                    capacity: cap,
                    t,
                });
            }
        }
        // touched entries stay stale via the epoch bump in begin_run /
        // touch(); reuse the allocation.
        self.touched = touched;
        self.touched.clear();
        self.epoch += 1;
    }

    fn touch(&mut self, r: u32) {
        let s = &mut self.touch_stamp[r as usize];
        if *s != self.epoch + 1 {
            *s = self.epoch + 1;
            self.touched.push(r);
        }
    }

    fn flow_mut(&mut self, flow: u32) -> Option<&mut FlowState> {
        self.flows.get_mut(flow as usize).and_then(Option::as_mut)
    }
}

impl Probe for InvariantProbe {
    fn begin_run(&mut self, fs: &FrozenSchedule, backend: &'static str) {
        self.backend = backend;
        self.schedule = fs.name().to_string();
        self.runs += 1;
        let n = fs.n_ops();
        self.pred_off.clear();
        self.pred_list.clear();
        self.pred_off.reserve(n + 1);
        self.pred_off.push(0);
        for i in 0..n {
            self.pred_list.extend_from_slice(fs.preds(i as u32));
            self.pred_off.push(self.pred_list.len() as u32);
        }
        self.start = vec![f64::NAN; n];
        self.end = vec![f64::NAN; n];
        self.caps.clear();
        self.labels.clear();
        self.load.clear();
        self.touched.clear();
        self.touch_stamp.clear();
        self.flows.clear();
        self.cur_t = 0.0;
        self.dirty = false;
    }

    fn op_start(&mut self, op: u32, t: f64) {
        self.start[op as usize] = t;
    }

    fn op_end(&mut self, op: u32, t: f64) {
        self.end[op as usize] = t;
    }

    fn wants_flows(&self) -> bool {
        true
    }

    fn resource_decl(&mut self, index: u32, label: &str, capacity: f64) {
        let i = index as usize;
        if self.caps.len() <= i {
            self.caps.resize(i + 1, f64::INFINITY);
            self.labels.resize(i + 1, String::new());
            self.load.resize(i + 1, 0.0);
            self.touch_stamp.resize(i + 1, 0);
        }
        self.caps[i] = capacity;
        self.labels[i] = label.to_string();
    }

    fn flow_begin(
        &mut self,
        op: u32,
        flow: u32,
        resources: &[(u32, f64)],
        _cap: f64,
        bytes: f64,
        t: f64,
    ) {
        self.commit(t);
        let i = flow as usize;
        if self.flows.len() <= i {
            self.flows.resize_with(i + 1, || None);
        }
        if let Some(prev) = self.flows[i].take() {
            // A recycled index must have ended first.
            self.record(Violation::UnfinishedFlow { op: prev.op, flow });
        }
        self.flows[i] = Some(FlowState {
            op,
            resources: resources.to_vec(),
            declared: bytes,
            rate: 0.0,
            last_t: t,
            moved: 0.0,
        });
    }

    fn flow_rate(&mut self, _op: u32, flow: u32, rate: f64, t: f64) {
        self.commit(t);
        let Some(f) = self.flow_mut(flow) else {
            return; // sink attached without flow_begin support
        };
        f.moved += f.rate * (t - f.last_t);
        f.last_t = t;
        let old = f.rate;
        f.rate = rate;
        let resources = std::mem::take(&mut self.flows[flow as usize].as_mut().unwrap().resources);
        for &(r, w) in &resources {
            self.load[r as usize] += w * (rate - old);
            self.touch(r);
        }
        self.flows[flow as usize].as_mut().unwrap().resources = resources;
        self.dirty = true;
    }

    fn resource_capacity(&mut self, res: u32, capacity: f64, t: f64) {
        self.commit(t);
        let i = res as usize;
        if self.caps.len() <= i {
            self.caps.resize(i + 1, f64::INFINITY);
            self.labels.resize(i + 1, String::new());
            self.load.resize(i + 1, 0.0);
            self.touch_stamp.resize(i + 1, 0);
        }
        self.caps[i] = capacity;
        // Re-audit the resource under its new capacity once time advances.
        self.touch(res);
        self.dirty = true;
    }

    fn flow_resources(&mut self, _op: u32, flow: u32, resources: &[(u32, f64)], t: f64) {
        self.commit(t);
        let Some(f) = self.flow_mut(flow) else {
            return;
        };
        f.moved += f.rate * (t - f.last_t);
        f.last_t = t;
        let rate = f.rate;
        let old = std::mem::replace(&mut f.resources, resources.to_vec());
        for &(r, w) in &old {
            self.load[r as usize] -= w * rate;
            self.touch(r);
        }
        for &(r, w) in resources {
            self.load[r as usize] += w * rate;
            self.touch(r);
        }
        self.dirty = true;
    }

    fn flow_end(&mut self, op: u32, flow: u32, t: f64) {
        self.commit(t);
        let Some(mut f) = self.flows.get_mut(flow as usize).and_then(Option::take) else {
            return;
        };
        f.moved += f.rate * (t - f.last_t);
        if (f.moved - f.declared).abs() > BYTES_ABS_TOL + REL_TOL * f.declared {
            self.record(Violation::FlowConservation {
                op,
                flow,
                declared: f.declared,
                moved: f.moved,
            });
        }
        for &(r, w) in &f.resources {
            self.load[r as usize] -= w * f.rate;
            self.touch(r);
        }
        self.dirty = true;
    }

    fn end_run(&mut self, makespan: f64) {
        self.commit(makespan.max(self.cur_t) + 1.0);
        for i in 0..self.flows.len() {
            if let Some(f) = self.flows[i].take() {
                self.record(Violation::UnfinishedFlow {
                    op: f.op,
                    flow: i as u32,
                });
            }
        }
        // Causality + span completeness, judged on collected timestamps so
        // replayed streams (threaded executor) are handled correctly.
        for op in 0..self.start.len() {
            let (s, e) = (self.start[op], self.end[op]);
            if s.is_nan() || e.is_nan() {
                self.record(Violation::MissingSpan { op: op as u32 });
                continue;
            }
            let (lo, hi) = (self.pred_off[op] as usize, self.pred_off[op + 1] as usize);
            for k in lo..hi {
                let p = self.pred_list[k] as usize;
                let pe = self.end[p];
                if pe.is_nan() {
                    continue; // already reported as MissingSpan
                }
                if pe > s + 1e-12 * s.abs().max(1e-18) {
                    self.record(Violation::Causality {
                        op: op as u32,
                        pred: p as u32,
                        pred_end: pe,
                        start: s,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::RankId;

    fn two_op_chain() -> FrozenSchedule {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "chain");
        let a = b.compute(RankId(0), 100, &[], 0);
        b.compute(RankId(0), 100, &[a], 1);
        b.finish().freeze()
    }

    fn drive_clean(p: &mut InvariantProbe, fs: &FrozenSchedule) {
        p.begin_run(fs, "test");
        p.resource_decl(0, "cpu(r0)", 10.0);
        p.op_ready(0, 0.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 10.0, 0.0);
        p.flow_rate(0, 0, 10.0, 0.0);
        p.flow_end(0, 0, 1.0);
        p.op_end(0, 1.0);
        p.op_start(1, 1.0);
        p.flow_begin(1, 0, &[(0, 1.0)], 10.0, 20.0, 1.0);
        p.flow_rate(1, 0, 10.0, 1.0);
        p.flow_end(1, 0, 3.0);
        p.op_end(1, 3.0);
        p.end_run(3.0);
    }

    #[test]
    fn clean_run_has_no_violations() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        drive_clean(&mut p, &fs);
        assert!(p.is_clean(), "{:?}", p.violations());
        p.assert_clean();
    }

    #[test]
    fn causality_violation_detected() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.op_start(0, 0.0);
        p.op_end(0, 2.0);
        p.op_start(1, 1.0); // starts before pred ends
        p.op_end(1, 3.0);
        p.end_run(3.0);
        assert!(matches!(
            p.violations(),
            [Violation::Causality { op: 1, pred: 0, .. }]
        ));
    }

    #[test]
    fn missing_span_detected() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.op_start(0, 0.0);
        p.op_end(0, 1.0);
        // op 1 never runs
        p.end_run(1.0);
        assert!(matches!(p.violations(), [Violation::MissingSpan { op: 1 }]));
    }

    #[test]
    fn oversubscribed_resource_detected() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "tx(n0,h0)", 10.0);
        p.op_start(0, 0.0);
        p.op_start(1, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 10.0, 0.0);
        p.flow_begin(1, 1, &[(0, 1.0)], 10.0, 10.0, 0.0);
        // Both flows at 8 B/s on a 10 B/s resource: 16 > 10 once time moves.
        p.flow_rate(0, 0, 8.0, 0.0);
        p.flow_rate(1, 1, 8.0, 0.0);
        p.flow_rate(0, 0, 2.0, 1.0); // time advances -> audit fires
        assert!(
            matches!(p.violations(), [Violation::Capacity { resource: 0, .. }]),
            "{:?}",
            p.violations()
        );
    }

    #[test]
    fn same_instant_transients_are_not_violations() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "tx(n0,h0)", 10.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 10.0, 0.0);
        p.flow_begin(0, 1, &[(0, 1.0)], 10.0, 10.0, 0.0);
        // Mid-recompute transient: first flow briefly at 10, then both 5 —
        // all at t=0, so no interval ever carries more than 10.
        p.flow_rate(0, 0, 10.0, 0.0);
        p.flow_rate(0, 0, 5.0, 0.0);
        p.flow_rate(0, 1, 5.0, 0.0);
        p.flow_end(0, 0, 2.0);
        p.flow_end(0, 1, 2.0);
        p.op_end(0, 2.0);
        p.op_start(1, 2.0);
        p.op_end(1, 2.0);
        p.end_run(2.0);
        assert!(p.is_clean(), "{:?}", p.violations());
    }

    #[test]
    fn short_changed_flow_is_flagged() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "cpu(r0)", 10.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 100.0, 0.0);
        p.flow_rate(0, 0, 10.0, 0.0);
        p.flow_end(0, 0, 1.0); // only 10 of 100 bytes moved
        p.op_end(0, 1.0);
        p.op_start(1, 1.0);
        p.op_end(1, 1.0);
        p.end_run(1.0);
        assert!(
            matches!(
                p.violations(),
                [Violation::FlowConservation { op: 0, flow: 0, .. }]
            ),
            "{:?}",
            p.violations()
        );
    }

    #[test]
    fn unfinished_flow_is_flagged() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "cpu(r0)", 10.0);
        p.op_start(0, 0.0);
        p.op_end(0, 1.0);
        p.op_start(1, 1.0);
        p.op_end(1, 2.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 10.0, 0.0);
        p.end_run(2.0);
        assert!(p
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::UnfinishedFlow { op: 0, flow: 0 })));
    }

    #[test]
    #[should_panic(expected = "invariant check failed")]
    fn assert_clean_panics_on_violation() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.end_run(0.0);
        p.assert_clean();
    }

    #[test]
    fn reusable_across_runs() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        drive_clean(&mut p, &fs);
        drive_clean(&mut p, &fs);
        assert!(p.is_clean());
        assert!(p.wants_flows());
        let drained = p.take_violations();
        assert!(drained.is_empty());
    }

    #[test]
    fn progress_on_a_down_resource_is_flagged() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "tx(n0,h0)", 10.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 100.0, 0.0);
        p.flow_rate(0, 0, 5.0, 0.0);
        p.resource_capacity(0, 0.0, 1.0); // rail goes down…
        p.flow_rate(0, 0, 5.0, 2.0); // …but the flow kept its rate
        assert!(
            p.violations()
                .iter()
                .any(|v| matches!(v, Violation::DownResourceActive { resource: 0, .. })),
            "{:?}",
            p.violations()
        );
    }

    #[test]
    fn stalled_flow_on_a_down_resource_is_clean() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "tx(n0,h0)", 10.0);
        p.resource_decl(1, "tx(n0,h1)", 10.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 10.0, 0.0);
        p.flow_rate(0, 0, 10.0, 0.0);
        // Rail down at 0.5 after 5 bytes; flow stalls at the same instant,
        // then re-issues on rail 1 and drains the remaining 5 bytes.
        p.flow_rate(0, 0, 0.0, 0.5);
        p.resource_capacity(0, 0.0, 0.5);
        p.flow_resources(0, 0, &[(1, 1.0)], 0.7);
        p.flow_rate(0, 0, 10.0, 0.7);
        p.flow_end(0, 0, 1.2);
        p.op_end(0, 1.2);
        p.op_start(1, 1.2);
        p.op_end(1, 1.2);
        p.end_run(1.2);
        assert!(p.is_clean(), "{:?}", p.violations());
    }

    #[test]
    fn derated_resource_keeps_capacity_audit() {
        let fs = two_op_chain();
        let mut p = InvariantProbe::new();
        p.begin_run(&fs, "test");
        p.resource_decl(0, "tx(n0,h0)", 10.0);
        p.op_start(0, 0.0);
        p.flow_begin(0, 0, &[(0, 1.0)], 10.0, 100.0, 0.0);
        p.flow_rate(0, 0, 8.0, 0.0);
        p.resource_capacity(0, 5.0, 1.0); // derate to 5 B/s…
        p.flow_rate(0, 0, 8.0, 2.0); // …while the flow still runs at 8
        assert!(
            p.violations()
                .iter()
                .any(|v| matches!(v, Violation::Capacity { resource: 0, .. })),
            "{:?}",
            p.violations()
        );
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::Capacity {
            resource: 3,
            label: "tx(n0,h1)".into(),
            load: 2.0e10,
            capacity: 1.55e10,
            t: 1e-6,
        };
        let s = v.to_string();
        assert!(s.contains("tx(n0,h1)") && s.contains("capacity"));
        let c = Violation::Causality {
            op: 5,
            pred: 2,
            pred_end: 2.0,
            start: 1.0,
        };
        assert!(c.to_string().contains("causality"));
    }
}
