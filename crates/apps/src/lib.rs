//! # mha-apps — application-level workloads (paper Section 5)
//!
//! * [`osu`] — the OSU-micro-benchmark-style sweep driver: Allgather and
//!   Allreduce latency tables over the HPC-X / MVAPICH2-X surrogates and
//!   the tuned MHA design (Figures 11–15).
//! * [`matvec`] — the 1-D row-partitioned matrix–vector kernel of
//!   Section 5.5 (Figure 16), with a real-data numerical verification of
//!   the distributed algorithm.
//! * [`deep_learning`] — the Horovod-style synthetic training benchmark of
//!   Section 5.6 (Figure 17) over ResNet-50/101/152 gradient footprints.
//! * [`bpmf`] — distributed Bayesian probabilistic matrix factorization,
//!   the other Allgather-bound application the paper's introduction cites.
//! * [`report`] — OSU-style table/CSV formatting shared by the `fig*`
//!   reproduction binaries in `mha-bench`.

#![warn(missing_docs)]

pub mod bpmf;
pub mod deep_learning;
pub mod matvec;
pub mod osu;
pub mod report;

pub use osu::{allgather_sweep, allreduce_sweep, paper_contestants, AppError, Contestant};
