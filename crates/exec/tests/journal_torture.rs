//! Journal torture: kill *every* worker of an 8-thread pool at a random
//! point and prove byte-exact recovery.
//!
//! The schedule is an allgather-shaped mesh (every rank's pattern copied
//! into every rank's receive window) overlaid with per-rank non-idempotent
//! Reduce chains — wide enough that all 8 workers are busy when the
//! staggered kill wave hits, with enough partial-completion states to
//! exercise write-coverage races: any op that re-executes (double-summed
//! accumulator) or is lost (hole in a receive window) breaks byte-identity
//! with the sequential reference run.

use mha_exec::run_threaded_killed;
use mha_exec::{resume_threaded, run_single, BufferStore, CompletionJournal, ExecError, KillPlan};
use mha_sched::{
    BufId, Channel, DType, FrozenSchedule, Loc, ProcGrid, RankId, RedOp, ScheduleBuilder,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const RANKS: u32 = 8;
const MSG: usize = 512;
const TERMS: usize = 6;
const THREADS: usize = 8;

struct Mesh {
    sch: FrozenSchedule,
    send: Vec<BufId>,
    recv: Vec<BufId>,
    accs: Vec<BufId>,
    terms: Vec<Vec<BufId>>,
}

/// `RANKS` ranks on one node: a full P×P copy/CMA mesh into per-rank
/// receive windows plus a `TERMS`-long Reduce chain per rank.
fn mesh() -> Mesh {
    let grid = ProcGrid::single_node(RANKS);
    let mut b = ScheduleBuilder::new(grid, "torture");
    let send: Vec<BufId> = (0..RANKS)
        .map(|r| b.private_buf(RankId(r), MSG, format!("send{r}")))
        .collect();
    let recv: Vec<BufId> = (0..RANKS)
        .map(|r| b.private_buf(RankId(r), MSG * RANKS as usize, format!("recv{r}")))
        .collect();
    for dst in 0..RANKS {
        for src in 0..RANKS {
            let to = Loc::new(recv[dst as usize], src as usize * MSG);
            if src == dst {
                b.copy(
                    RankId(dst),
                    Loc::new(send[src as usize], 0),
                    to,
                    MSG,
                    &[],
                    0,
                );
            } else {
                b.transfer(
                    RankId(src),
                    RankId(dst),
                    Loc::new(send[src as usize], 0),
                    to,
                    MSG,
                    Channel::Cma,
                    &[],
                    0,
                );
            }
        }
    }
    let mut accs = Vec::new();
    let mut terms = Vec::new();
    for r in 0..RANKS {
        let acc = b.private_buf(RankId(r), 8, format!("acc{r}"));
        let mut ts = Vec::new();
        let mut prev = None;
        for t in 0..TERMS {
            let term = b.private_buf(RankId(r), 8, format!("t{r}_{t}"));
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.reduce(
                RankId(r),
                Loc::new(acc, 0),
                Loc::new(term, 0),
                8,
                DType::F64,
                RedOp::Sum,
                &deps,
                1 + t as u32,
            ));
            ts.push(term);
        }
        accs.push(acc);
        terms.push(ts);
    }
    Mesh {
        sch: b.finish().freeze(),
        send,
        recv,
        accs,
        terms,
    }
}

fn seeded_store(m: &Mesh) -> BufferStore {
    let store = BufferStore::new(&m.sch);
    for (r, &buf) in m.send.iter().enumerate() {
        store.fill(buf, 0, &mha_exec::rank_pattern(r, MSG));
    }
    for (r, (&acc, ts)) in m.accs.iter().zip(&m.terms).enumerate() {
        store.fill(acc, 0, &(r as f64).to_ne_bytes());
        for (t, &term) in ts.iter().enumerate() {
            store.fill(term, 0, &((r + t) as f64 + 0.5).to_ne_bytes());
        }
    }
    store
}

fn snapshot(m: &Mesh, store: &BufferStore) -> Vec<Vec<u8>> {
    m.sch
        .buffers()
        .iter()
        .map(|b| store.read_all(b.id))
        .collect()
}

#[test]
fn killing_every_worker_recovers_byte_identically() {
    let m = mesh();
    let n = m.sch.n_ops();
    assert!(n > THREADS, "mesh too small to torture");

    let ref_store = seeded_store(&m);
    run_single(&m.sch, &ref_store).unwrap();
    let want = snapshot(&m, &ref_store);
    // Sanity on the reference itself: every receive window filled, every
    // accumulator holds its closed-form sum.
    for (dst, &recv) in m.recv.iter().enumerate() {
        let bytes = ref_store.read_all(recv);
        for src in 0..RANKS as usize {
            assert_eq!(
                &bytes[src * MSG..(src + 1) * MSG],
                &mha_exec::rank_pattern(src, MSG)[..],
                "reference hole at recv[{dst}] from {src}"
            );
        }
    }
    for (r, &acc) in m.accs.iter().enumerate() {
        let got = f64::from_ne_bytes(ref_store.read_all(acc).try_into().unwrap());
        let terms: f64 = (0..TERMS).map(|t| (r + t) as f64 + 0.5).sum();
        assert_eq!(got, r as f64 + terms, "reference acc[{r}]");
    }

    let mut rng = StdRng::seed_from_u64(0x7047);
    for round in 0..40 {
        let k = rng.gen_range(0..n);
        let plan = KillPlan::kill_all(k, THREADS);
        let store = seeded_store(&m);
        let journal = CompletionJournal::for_schedule(&m.sch);
        match run_threaded_killed(&m.sch, &store, THREADS, &journal, &plan) {
            Err(ExecError::Killed { done, total }) => {
                assert_eq!(total, n);
                assert!(done < n, "round {round}: killed run claims completion");
                assert_eq!(done, journal.len());
                resume_threaded(&m.sch, &store, THREADS, &journal)
                    .unwrap_or_else(|e| panic!("round {round} (k={k}): resume: {e}"));
            }
            // Kill points at the very end can lose the race with the pool.
            Ok(()) => {}
            Err(e) => panic!("round {round} (k={k}): {e}"),
        }
        assert!(journal.is_complete(), "round {round} (k={k})");
        assert_eq!(
            snapshot(&m, &store),
            want,
            "round {round}: kill-all at {k} diverged after recovery"
        );
    }
}

#[test]
fn repeated_crashes_of_the_same_run_converge() {
    // Crash, resume under a *new* kill plan, crash again — each resume
    // carries the same journal forward until the pool finally wins.
    let m = mesh();
    let n = m.sch.n_ops();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..10 {
        let store = seeded_store(&m);
        let journal = CompletionJournal::for_schedule(&m.sch);
        let mut crashes = 0usize;
        loop {
            let plan = KillPlan::seeded(rng.gen_range(0..u64::MAX), n, THREADS);
            match run_threaded_killed(&m.sch, &store, THREADS, &journal, &plan) {
                Err(ExecError::Killed { .. }) => {
                    // A plan whose kill point is already behind the journal
                    // kills instantly with little or no progress — legal,
                    // just unproductive. Guard against a true livelock only.
                    crashes += 1;
                    assert!(crashes <= 10_000, "round {round}: no forward progress");
                }
                Ok(()) => break,
                Err(e) => panic!("round {round}: {e}"),
            }
        }
        assert!(journal.is_complete());
        let ref_store = seeded_store(&m);
        run_single(&m.sch, &ref_store).unwrap();
        assert_eq!(
            snapshot(&m, &store),
            snapshot(&m, &ref_store),
            "round {round} diverged after {crashes} crashes"
        );
    }
}
