//! The incremental-vs-scratch water-fill equivalence oracle.
//!
//! The incremental engine (calendar event queue, keyed memo, argmin
//! prediction scheduling) is documented to be *bit-identical* to the
//! scratch reference engine (binary heap, re-solve every component) on
//! every observable: makespan, per-op completion times, event count and
//! per-resource byte totals. This oracle enforces that claim over random
//! collective schedules from all four case families — with a slice of the
//! sweep run under random rail-fault timelines so the stall/retry paths
//! are differenced too.

use mha_simnet::{set_incremental_enabled, ClusterSpec, FaultSpec, SimResult, Simulator};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cases::{sample_case, Family};

/// Waterfill-oracle knobs (all overridable from the environment).
#[derive(Debug, Clone)]
pub struct WaterfillOracleConfig {
    /// Number of random schedules to difference (`MHA_WATERFILL_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_WATERFILL_SEED`); the sweep is deterministic given
    /// it.
    pub seed: u64,
}

impl Default for WaterfillOracleConfig {
    fn default() -> Self {
        WaterfillOracleConfig {
            cases: 120,
            seed: 0x7A7E2,
        }
    }
}

impl WaterfillOracleConfig {
    /// The default configuration with `MHA_WATERFILL_CASES` and
    /// `MHA_WATERFILL_SEED` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = WaterfillOracleConfig::default();
        if let Some(v) = env_parse("MHA_WATERFILL_CASES") {
            cfg.cases = v;
        }
        if let Some(v) = env_parse("MHA_WATERFILL_SEED") {
            cfg.seed = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// The outcome of an equivalence sweep.
#[derive(Debug)]
pub struct WaterfillOracleReport {
    /// Schedules differenced.
    pub cases: usize,
    /// How many ran under a random fault timeline.
    pub faulted: usize,
    /// Human-readable description of every divergence (empty = pass).
    pub disagreements: Vec<String>,
}

impl WaterfillOracleReport {
    /// Whether the sweep found no divergence.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// First bitwise difference between the two engines' results, if any.
fn diff(inc: &SimResult, scr: &SimResult) -> Option<String> {
    if inc.makespan.to_bits() != scr.makespan.to_bits() {
        return Some(format!(
            "makespan {} (inc) vs {} (scratch)",
            inc.makespan, scr.makespan
        ));
    }
    if inc.events != scr.events {
        return Some(format!(
            "event count {} (inc) vs {} (scratch)",
            inc.events, scr.events
        ));
    }
    if inc.op_end.len() != scr.op_end.len() {
        return Some("op_end length mismatch".into());
    }
    for (i, (a, b)) in inc.op_end.iter().zip(&scr.op_end).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Some(format!("op_end[{i}] {a} (inc) vs {b} (scratch)"));
        }
    }
    for (i, (a, b)) in inc
        .resource_bytes
        .iter()
        .zip(&scr.resource_bytes)
        .enumerate()
    {
        if a.to_bits() != b.to_bits() {
            return Some(format!(
                "resource_bytes[{}] {a} (inc) vs {b} (scratch)",
                inc.resource_labels[i]
            ));
        }
    }
    None
}

/// A random fault timeline against a `rails`-rail cluster: one rail goes
/// down early (sometimes at t = 0) and usually comes back, with a short
/// retry timeout so stall/retry/backoff all fire within the run.
fn sample_faults(rng: &mut StdRng, rails: u8) -> FaultSpec {
    let rail = rng.gen_range(0..rails);
    let t_down = if rng.gen_range(0..3u32) == 0 {
        0.0
    } else {
        rng.gen_range(1.0e-6..50.0e-6)
    };
    let mut faults = if rng.gen_range(0..4u32) == 0 {
        FaultSpec::rail_down_at(rail, t_down) // stays down for the run
    } else {
        FaultSpec::flap(rail, t_down, t_down + rng.gen_range(10.0e-6..200.0e-6))
    };
    faults.retry_timeout = rng.gen_range(5.0e-6..50.0e-6);
    faults
}

/// Runs the equivalence sweep: each drawn schedule is simulated once with
/// the incremental engine and once with the scratch engine, and every
/// observable is compared bit for bit.
///
/// The incremental override is flipped around each run, so the sweep runs
/// cases sequentially on the calling thread (both engine modes are
/// bit-identical by contract, so a concurrent *other* test only changes
/// speed, never results).
pub fn run_waterfill_oracle(cfg: &WaterfillOracleConfig) -> WaterfillOracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = WaterfillOracleReport {
        cases: 0,
        faulted: 0,
        disagreements: Vec::new(),
    };
    for i in 0..cfg.cases {
        let family = Family::ALL[i % Family::ALL.len()];
        let case = sample_case(&mut rng, family);
        let spec = ClusterSpec::thor();
        let built = match case.build(&spec) {
            Ok(b) => b,
            Err(e) => {
                report
                    .disagreements
                    .push(format!("{}: build failed: {e}", case.describe()));
                continue;
            }
        };
        // Every third case runs under a random fault timeline so the
        // stall/retry/backoff machinery is differenced too.
        let (sim, faulted) = if i % 3 == 2 {
            let faults = sample_faults(&mut rng, spec.rails);
            (
                Simulator::with_faults(spec, faults).expect("sampled faults validate"),
                true,
            )
        } else {
            (Simulator::new(spec).expect("thor spec validates"), false)
        };
        report.cases += 1;
        report.faulted += usize::from(faulted);

        set_incremental_enabled(Some(true));
        let inc = sim.run(&built.sched);
        set_incremental_enabled(Some(false));
        let scr = sim.run(&built.sched);
        set_incremental_enabled(None);

        match (inc, scr) {
            (Ok(inc), Ok(scr)) => {
                if let Some(d) = diff(&inc, &scr) {
                    report.disagreements.push(format!(
                        "{}{}: {d}",
                        case.describe(),
                        if faulted { " [faulted]" } else { "" }
                    ));
                }
            }
            (inc, scr) => {
                if inc.is_err() != scr.is_err() {
                    report.disagreements.push(format!(
                        "{}: one engine errored ({:?} vs {:?})",
                        case.describe(),
                        inc.err(),
                        scr.err()
                    ));
                }
            }
        }
    }
    report
}
