//! # mha-collectives — the paper's Allgather/Allreduce designs and baselines
//!
//! Every algorithm compiles an MPI-style collective into an `mha-sched`
//! schedule: flat baselines (Ring, Recursive Doubling, Bruck, Direct
//! Spread), two-level designs (single-leader and Kandalla-style
//! multi-leader), the paper's multi-HCA-aware contributions (MHA-intra with
//! HCA offload, hierarchical MHA-inter with an overlapped shared-memory
//! pipeline), Ring Allreduce with a pluggable Allgather phase, and the
//! HPC-X / MVAPICH2-X library surrogates the evaluation compares against.
//!
//! Hierarchical families are emitted by one **generic composer**
//! ([`build_composed`]): a [`ComposePlan`] assigns a [`LevelAlgo`] to each
//! level of an `mha_sched::Topology` tree (exchange at the top, import
//! rounds through the middle, leader gather at the leaves), so two-level
//! MHA-inter and the 3-level NUMA-aware design are instantiations of the
//! same recursion rather than separate emitters.

#![warn(missing_docs)]

mod algo;
mod allreduce;
mod alltoall;
mod baselines;
mod bcast;
mod chunks;
mod compose;
mod config;
mod ctx;
pub mod flat;
pub mod mha;
mod tuned;
pub mod tuning;
pub mod twolevel;

pub use algo::AllgatherAlgo;
pub use allreduce::{build_ring_allreduce, AllgatherPhase};
pub use alltoall::{build_direct_alltoall, build_mha_alltoall, AlltoallBuilt};
pub use baselines::{mha_default_allgather, Library};
pub use bcast::{build_binomial_bcast, build_mha_bcast, BcastBuilt};
pub use chunks::{chunk_bounds, chunk_bounds_aligned, chunk_len};
pub use compose::{build_composed, build_composed_degraded, ComposePlan, LevelAlgo};
pub use config::{build, AlgoConfig, Family};
pub use ctx::{BuildError, Built};
pub use tuned::{msg_bucket, TableError, TableKey, TunedTable, TABLE_FORMAT_VERSION};
pub use tuning::{build_tuned_mha, select_inter_algo, InterChoice, TuneError};
