//! Figure 17: synthetic Horovod-style training throughput (images/s),
//! ResNet-50/101/152, batch 16 per worker, MVAPICH2-X vs MHA. (HPC-X is
//! absent as in the paper — it could not be run with Horovod, Section 5.6.)
//! Each (model × process count) pair is one campaign point (see
//! `mha_bench::campaign`) running both contestants.

use mha_apps::deep_learning::{run_training_step, DlConfig, RESNET101, RESNET152, RESNET50};
use mha_apps::report::Table;
use mha_apps::Contestant;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::Library;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let models = [RESNET50, RESNET101, RESNET152];
    let node_counts = [8u32, 16, 32];
    let mut points = Vec::new();
    for model in models {
        for &nodes in &node_counts {
            let grid = ProcGrid::new(nodes, 32);
            let cfg = DlConfig {
                grid,
                model,
                batch: 16,
            };
            let spec = spec.clone();
            points.push(CampaignPoint::custom(
                format!("{}/{}", model.name, grid.nranks()),
                move |_seed| {
                    let mva =
                        run_training_step(cfg, Contestant::Library(Library::Mvapich2X), &spec)
                            .map_err(|e| format!("{e:?}"))?;
                    let mha = run_training_step(cfg, Contestant::MhaTuned, &spec)
                        .map_err(|e| format!("{e:?}"))?;
                    Ok(vec![Row::new(
                        grid.nranks().to_string(),
                        vec![
                            mva.images_per_sec,
                            mha.images_per_sec,
                            (mha.images_per_sec / mva.images_per_sec - 1.0) * 100.0,
                        ],
                    )])
                },
            ));
        }
    }
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    for (mi, model) in models.iter().enumerate() {
        let mut t = Table::new(
            format!(
                "Figure 17: {} ({:.1} M params), images/sec, batch 16",
                model.name,
                model.params as f64 / 1e6
            ),
            "processes",
            vec!["MVAPICH2-X".into(), "MHA".into(), "improvement_pct".into()],
        );
        for ni in 0..node_counts.len() {
            let rows = report.rows_for(mi * node_counts.len() + ni);
            for row in rows {
                t.push(row.label.clone(), row.values.clone());
            }
        }
        let tag = model.name.to_lowercase().replace('-', "");
        mha_bench::emit(&t, &format!("fig17_dl_{tag}"));
    }
    // Summarize a representative gradient-bucket Allreduce (2 MB, 256 ranks).
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::build_ring_allreduce(
        ProcGrid::new(8, 32),
        (2 << 20) / 4,
        mha_collectives::AllgatherPhase::MhaInter(Default::default()),
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig17_dl");
}
