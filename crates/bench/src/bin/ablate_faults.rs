//! Ablation: graceful degradation under rail failures. Sweeps `k` rails
//! failing *mid-run* (at 2% of the fault-free makespan, while the rail
//! traffic is in flight) on an 8-rail cluster and compares two strategies
//! against the α–β model evaluated at `H − k` rails:
//!
//! * `oblivious`: the fault-oblivious schedule — `AllRails` flows already
//!   in flight on a dying rail stall, then re-issue on a survivor after
//!   the retry timeout; flows started after the fault resolve against the
//!   surviving set automatically;
//! * `aware`: the failure-aware build whose leader exchanges are re-tiled
//!   over the surviving set up front (its intra-node offload traffic is
//!   still `AllRails`, so mid-run faults cost both strategies the same
//!   in-flight stalls);
//! * `model`: `T(H − k)` — the ideal a degraded run should track (the
//!   conformance bar requires staying within 2x of it).

use mha_apps::report::Table;
use mha_collectives::mha::{build_mha_inter, build_mha_inter_degraded, MhaInterConfig};
use mha_model::{mha_inter_latency, ModelParams, Phase2};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, FaultEvent, FaultKind, FaultSpec, Simulator, DEFAULT_RETRY_TIMEOUT};

fn main() {
    mha_bench::apply_check_flag();
    let rails = 8u8;
    let grid = ProcGrid::new(4, 4);
    let msg = 256 * 1024;
    let spec = ClusterSpec::thor_with_rails(rails);
    let cfg = MhaInterConfig::default();

    let mut table = Table::new(
        "Ablation: MHA-inter latency (us), k of 8 rails fail mid-run, 4 nodes x 4 PPN, 256 KB",
        "k_down",
        vec![
            "oblivious_us".into(),
            "aware_us".into(),
            "model_us".into(),
            "aware_vs_model".into(),
        ],
    );

    let oblivious = build_mha_inter(grid, msg, cfg, &spec).unwrap();
    let healthy = Simulator::new(spec.clone()).unwrap();
    let t_fault = 0.02 * healthy.run(&oblivious.sched).unwrap().makespan;

    for k in 0..rails {
        let down: Vec<u8> = (0..k).collect();
        let mut faults = FaultSpec::new(DEFAULT_RETRY_TIMEOUT);
        for &r in &down {
            faults = faults.with_event(FaultEvent {
                time: t_fault,
                rail: r,
                node: None,
                kind: FaultKind::Down,
            });
        }
        let sim = Simulator::with_faults(spec.clone(), faults).unwrap();

        let aware = build_mha_inter_degraded(grid, msg, cfg, &spec, &down).unwrap();
        let t_obl = sim.run(&oblivious.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();

        let p = ModelParams::from_spec(&ClusterSpec::thor_with_rails(rails - k));
        let t_model = mha_inter_latency(&p, grid.nodes(), grid.ppn(), msg, Phase2::Ring) * 1e6;

        table.push(
            k.to_string(),
            vec![t_obl, t_aware, t_model, t_aware / t_model],
        );
    }
    mha_bench::emit(&table, "ablate_faults");
}
