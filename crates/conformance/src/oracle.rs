//! The three-way differential oracle: simnet × executor × α–β model.
//!
//! For each randomly drawn [`Case`](crate::Case) the oracle checks that
//! three independent interpretations of the same frozen schedule agree:
//!
//! * the **threaded executor** moves real bytes and lands on MPI_Allgather
//!   semantics ([`mha_exec::verify_allgather`], single-threaded and
//!   thread-pool execution) — plus the static byte-coverage partition
//!   ([`crate::check_allgather_coverage`]);
//! * the **simulator** survives a full invariant audit
//!   ([`mha_sched::InvariantProbe`]: causality, capacity, conservation)
//!   and orders op completions consistently with the executor — every
//!   dependency edge finishes in order in both backends, and the simulated
//!   critical path's completion order is reproduced by the executor's
//!   wall-clock stamps;
//! * the **α–β model** brackets the simulated latency: for representative
//!   large-message sweeps per family, simulated latency is monotone in
//!   message size and within a configurable multiplicative envelope of the
//!   [`mha_model`] prediction.

use std::sync::Arc;

use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::mha::{InterAlgo, MhaInterConfig, Offload};
use mha_collectives::AllgatherAlgo;
use mha_exec::{run_threaded_probed, BufferStore, Mode};
use mha_model::{mha_inter_latency, mha_intra_latency_auto, ModelParams, Phase2};
use mha_sched::{FrozenSchedule, InvariantProbe, Probe, ProcGrid};
use mha_simnet::{ClusterSpec, Simulator};
use rand::{rngs::StdRng, SeedableRng};

use crate::cases::{sample_case, Case, Family};
use crate::coverage::check_allgather_coverage;

/// Oracle knobs (all overridable from the environment).
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Number of random configurations to draw (≥ 200 for the acceptance
    /// bar; `MHA_CONFORMANCE_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_CONFORMANCE_SEED`); the whole run is deterministic
    /// given the seed.
    pub seed: u64,
    /// Multiplicative model envelope: simulated latency must lie within
    /// `[model / envelope, model · envelope]` (`MHA_MODEL_ENVELOPE`).
    pub envelope: f64,
    /// Worker threads for the thread-pool verification runs.
    pub threads: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cases: 200,
            seed: 0xC0FFEE,
            // Measured ratios on the seed engine: 0.91–1.47 across the
            // three series; 2.0 brackets them with headroom against
            // incidental engine drift while still catching a misplaced
            // factor of L, H or N.
            envelope: 2.0,
            threads: 4,
        }
    }
}

impl OracleConfig {
    /// The default configuration with `MHA_CONFORMANCE_CASES`,
    /// `MHA_CONFORMANCE_SEED` and `MHA_MODEL_ENVELOPE` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = OracleConfig::default();
        if let Some(v) = env_parse("MHA_CONFORMANCE_CASES") {
            cfg.cases = v;
        }
        if let Some(v) = env_parse("MHA_CONFORMANCE_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_parse("MHA_MODEL_ENVELOPE") {
            cfg.envelope = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// The outcome of an oracle sweep.
#[derive(Debug)]
pub struct OracleReport {
    /// Configurations checked.
    pub cases: usize,
    /// Cases per family, indexed by [`Family::index`].
    pub by_family: [usize; 4],
    /// Human-readable description of every disagreement (empty = pass).
    pub disagreements: Vec<String>,
}

impl OracleReport {
    /// Whether the sweep found no disagreement.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Records per-op completion stamps from a probed execution.
#[derive(Default)]
struct EndStamps {
    end: Vec<f64>,
}

impl Probe for EndStamps {
    fn begin_run(&mut self, fs: &FrozenSchedule, _backend: &'static str) {
        self.end = vec![f64::NAN; fs.n_ops()];
    }

    fn op_end(&mut self, op: u32, t: f64) {
        self.end[op as usize] = t;
    }
}

/// Runs the full oracle sweep: `cfg.cases` random configurations
/// (families round-robin) plus the per-family model-envelope series.
///
/// Cases are pre-sampled sequentially from the seeded RNG — so the case
/// sequence is identical to a serial sweep — then fanned across the
/// campaign worker pool (`MHA_CAMPAIGN_WORKERS`); disagreements are
/// reassembled in case order, so the report is independent of pool width.
pub fn run_oracle(cfg: &OracleConfig) -> OracleReport {
    let spec = ClusterSpec::thor();
    let sim = Arc::new(Simulator::new(spec.clone()).unwrap());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut by_family = [0usize; 4];

    let mut cases = Vec::with_capacity(cfg.cases);
    for i in 0..cfg.cases {
        let family = Family::ALL[i % Family::ALL.len()];
        cases.push(sample_case(&mut rng, family));
        by_family[family.index()] += 1;
    }

    let threads = cfg.threads;
    let points: Vec<CampaignPoint> = cases
        .into_iter()
        .map(|case| {
            let sim = Arc::clone(&sim);
            let spec = spec.clone();
            let label = case.describe();
            CampaignPoint::custom(label, move |_seed| {
                Ok(vec![match check_case(&case, &sim, &spec, threads) {
                    Ok(()) => Row::new("ok", vec![1.0]),
                    Err(e) => Row::note(case.describe(), e),
                }])
            })
        })
        .collect();
    // A disagreement is data, not a pool failure: each case reports
    // through its row so one bad case never aborts the sweep. Reps are
    // pinned to 1 — the sweep's case count is the repetition policy.
    let mut pool = CampaignConfig::from_env();
    pool.reps = 1;
    let report = run_campaign(&points, &pool).expect("oracle pool failed");

    let mut disagreements = Vec::new();
    for pr in &report.results {
        for row in &pr.rows {
            if let Some(e) = &row.note {
                disagreements.push(format!("case {} [{}]: {e}", pr.point, row.label));
            }
        }
    }
    disagreements.extend(check_model_envelope(cfg.envelope));

    OracleReport {
        cases: cfg.cases,
        by_family,
        disagreements,
    }
}

/// Checks one configuration across the executor and the simulator; returns
/// a description of the first disagreement found.
pub fn check_case(
    case: &Case,
    sim: &Simulator,
    spec: &ClusterSpec,
    threads: usize,
) -> Result<(), String> {
    let built = case
        .build(spec)
        .map_err(|e| format!("build failed: {e:?}"))?;
    let sch = &built.sched;

    // Structural layer: validation, determinism, static byte coverage.
    mha_sched::validate(sch, Some(spec.rails)).map_err(|e| format!("validate: {e}"))?;
    let races = mha_sched::check_races(sch);
    if !races.is_empty() {
        return Err(format!("{} races, first on {}", races.len(), races[0].buf));
    }
    check_allgather_coverage(&built).map_err(|e| format!("coverage: {e}"))?;

    // Executor layer: real bytes, MPI semantics, both execution modes.
    mha_exec::verify_allgather(sch, &built.send, &built.recv, built.msg, Mode::Single)
        .map_err(|e| format!("verify single: {e:?}"))?;
    mha_exec::verify_allgather(
        sch,
        &built.send,
        &built.recv,
        built.msg,
        Mode::Threaded(threads),
    )
    .map_err(|e| format!("verify threaded: {e:?}"))?;

    // Simulator layer: full invariant audit.
    let mut audit = InvariantProbe::new();
    let result = sim
        .run_probed(sch, &mut audit)
        .map_err(|e| format!("simnet: {e}"))?;
    if !audit.is_clean() {
        return Err(format!("invariant violations: {}", audit.violations()[0]));
    }

    // Ordering agreement: every dependency edge completes in order in both
    // backends, and the simulated critical path's completion order is
    // reproduced by the executor's wall-clock stamps.
    let mut stamps = EndStamps::default();
    let store = BufferStore::new(sch);
    run_threaded_probed(sch, &store, threads, &mut stamps)
        .map_err(|e| format!("probed exec: {e:?}"))?;
    for op in 0..sch.n_ops() as u32 {
        for &p in sch.preds(op) {
            let (ps, os) = (result.op_end[p as usize], result.op_end[op as usize]);
            if ps > os {
                return Err(format!(
                    "simnet finished {op} at {os} before pred {p} at {ps}"
                ));
            }
            let (pe, oe) = (stamps.end[p as usize], stamps.end[op as usize]);
            if pe > oe {
                return Err(format!(
                    "executor finished {op} at {oe} before pred {p} at {pe}"
                ));
            }
        }
    }
    let chain = critical_path(sch, &result.op_end);
    for w in chain.windows(2) {
        if stamps.end[w[0] as usize] > stamps.end[w[1] as usize] {
            return Err(format!(
                "critical-path order diverged: executor finished {} after {}",
                w[0], w[1]
            ));
        }
    }
    Ok(())
}

/// The simulated critical path: from the last op to finish, walk backwards
/// through the latest-finishing predecessor. Returned root → sink.
pub fn critical_path(sch: &FrozenSchedule, op_end: &[f64]) -> Vec<u32> {
    let Some((mut cur, _)) = op_end.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
        return Vec::new();
    };
    let mut chain = vec![cur as u32];
    while let Some(&p) = sch
        .preds(cur as u32)
        .iter()
        .max_by(|a, b| op_end[**a as usize].total_cmp(&op_end[**b as usize]))
    {
        chain.push(p);
        cur = p as usize;
    }
    chain.reverse();
    chain
}

/// The model layer: per-family large-message series checking that simulated
/// latency is monotone in message size and within `envelope` of the α–β
/// prediction. Returns one description per failure (empty = pass).
pub fn check_model_envelope(envelope: f64) -> Vec<String> {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let p = ModelParams::from_spec(&spec);
    let sizes = [16 * 1024usize, 64 * 1024, 256 * 1024];

    // (name, algorithm, grid, model prediction in seconds)
    type Model<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
    let series: Vec<(&str, AllgatherAlgo, ProcGrid, Model<'_>)> = vec![
        (
            "flat/ring 4x1",
            AllgatherAlgo::Ring,
            ProcGrid::new(4, 1),
            // Textbook α–β ring over P ranks: (P−1) fully-striped steps.
            Box::new(|m| 3.0 * (p.rail_startup(m) + m as f64 / (p.bw_h * f64::from(p.h)))),
        ),
        (
            "mha/intra 1x8",
            AllgatherAlgo::MhaIntra {
                offload: Offload::Auto,
            },
            ProcGrid::single_node(8),
            Box::new(|m| mha_intra_latency_auto(&p, 8, m)),
        ),
        (
            "mha/inter-ring 4x8",
            AllgatherAlgo::MhaInter(MhaInterConfig {
                inter: InterAlgo::Ring,
                offload: Offload::Auto,
                overlap: true,
            }),
            ProcGrid::new(4, 8),
            Box::new(|m| mha_inter_latency(&p, 4, 8, m, Phase2::Ring)),
        ),
    ];

    let mut failures = Vec::new();
    for (name, algo, grid, model) in &series {
        let mut prev = 0.0f64;
        for &m in &sizes {
            let built = match algo.build(*grid, m, &spec) {
                Ok(b) => b,
                Err(e) => {
                    failures.push(format!("{name} msg={m}: build failed: {e:?}"));
                    continue;
                }
            };
            let t = match sim.run(&built.sched) {
                Ok(r) => r.makespan,
                Err(e) => {
                    failures.push(format!("{name} msg={m}: simnet failed: {e}"));
                    continue;
                }
            };
            if t < prev {
                failures.push(format!(
                    "{name}: latency not monotone, {t:.3e}s at msg={m} after {prev:.3e}s"
                ));
            }
            prev = t;
            let predicted = model(m);
            let ratio = t / predicted;
            if !(1.0 / envelope..=envelope).contains(&ratio) {
                failures.push(format!(
                    "{name} msg={m}: simulated {t:.3e}s vs model {predicted:.3e}s \
                     (ratio {ratio:.2} outside ±{envelope}x)"
                ));
            }
        }
    }

    // Hierarchical series: the composer's 3-level NUMA schedule on the
    // NUMA spec, priced by the per-level model over the spec's own tree.
    {
        let name = "hier/numa3 4x2x8";
        let spec = ClusterSpec::thor_numa();
        let sim = Simulator::new(spec.clone()).unwrap();
        let p = ModelParams::from_spec(&spec);
        let topo = spec.topology_of(&ProcGrid::new(4, 16));
        let plan = mha_collectives::ComposePlan::numa3(true);
        let mut prev = 0.0f64;
        for &m in &sizes {
            let (built, predicted) = match (
                mha_collectives::build_composed(&topo, m, &plan, &spec),
                mha_model::composed_latency(&p, &topo, &plan, m),
            ) {
                (Ok(b), Some(t)) => (b, t),
                (Err(e), _) => {
                    failures.push(format!("{name} msg={m}: build failed: {e:?}"));
                    continue;
                }
                (_, None) => {
                    failures.push(format!("{name} msg={m}: model declined the plan"));
                    continue;
                }
            };
            let t = match sim.run(&built.sched) {
                Ok(r) => r.makespan,
                Err(e) => {
                    failures.push(format!("{name} msg={m}: simnet failed: {e}"));
                    continue;
                }
            };
            if t < prev {
                failures.push(format!(
                    "{name}: latency not monotone, {t:.3e}s at msg={m} after {prev:.3e}s"
                ));
            }
            prev = t;
            let ratio = t / predicted;
            if !(1.0 / envelope..=envelope).contains(&ratio) {
                failures.push(format!(
                    "{name} msg={m}: simulated {t:.3e}s vs model {predicted:.3e}s \
                     (ratio {ratio:.2} outside ±{envelope}x)"
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_case_passes_every_layer() {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let case = Case {
            family: Family::Mha,
            algo: AllgatherAlgo::MhaInter(MhaInterConfig::default()),
            grid: ProcGrid::new(2, 4),
            msg: 512,
            tree: None,
        };
        check_case(&case, &sim, &spec, 4).unwrap();
    }

    #[test]
    fn critical_path_follows_latest_predecessors() {
        use mha_sched::{RankId, ScheduleBuilder};
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(2), "cp");
        let a = b.compute(RankId(0), 100, &[], 0);
        let c = b.compute(RankId(1), 10_000, &[], 0);
        b.compute(RankId(0), 100, &[a, c], 1);
        let sch = b.finish().freeze();
        let sim = Simulator::new(ClusterSpec::thor()).unwrap();
        let r = sim.run(&sch).unwrap();
        assert_eq!(critical_path(&sch, &r.op_end), vec![1, 2]);
    }
}
