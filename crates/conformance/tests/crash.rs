//! The crash-oracle acceptance bar plus the journal property suite.
//!
//! * ≥ 100 seeded kill schedules across all four collective families must
//!   recover **byte-identically** to an unfailed run on both the Single and
//!   Threaded executors, and the same crash modeled as a simnet node outage
//!   must stay invariant-clean with a makespan that absorbs the recovery
//!   penalty.
//! * 200 seeded (schedule, kill-point) pairs: journal replay is idempotent
//!   (resume twice ≡ resume once) and a journal claiming an op whose
//!   dependencies are incomplete is rejected with a typed error.

use mha_conformance::{run_crash_oracle, sample_case, CrashOracleConfig, Family};
use mha_exec::{
    resume_single, resume_threaded, run_single, run_single_killed, BufferStore, CompletionJournal,
    ExecError, JournalError,
};
use mha_sched::FrozenSchedule;
use mha_simnet::ClusterSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn crash_oracle_sweep_has_zero_disagreements() {
    let cfg = CrashOracleConfig::from_env();
    assert!(cfg.cases >= 100, "acceptance bar requires >= 100 cases");
    let report = run_crash_oracle(&cfg);
    assert_eq!(report.cases, cfg.cases);
    assert!(
        report.is_clean(),
        "{} disagreement(s):\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n")
    );
}

fn seeded_store(sch: &FrozenSchedule, built: &mha_collectives::Built) -> BufferStore {
    let store = BufferStore::new(sch);
    for (rank, &buf) in built.send.iter().enumerate() {
        store.fill(buf, 0, &mha_exec::rank_pattern(rank, built.msg));
    }
    store
}

fn snapshot(sch: &FrozenSchedule, store: &BufferStore) -> Vec<Vec<u8>> {
    sch.buffers().iter().map(|b| store.read_all(b.id)).collect()
}

/// 200 seeded (schedule, kill-point) pairs: after a kill at op `k`,
/// resuming twice (and once more on the pool for good measure) leaves the
/// journal and every buffer exactly as a single resume does.
#[test]
fn journal_replay_is_idempotent_over_200_pairs() {
    let spec = ClusterSpec::thor();
    let mut rng = StdRng::seed_from_u64(0xD0_0DEAD);
    let mut checked = 0usize;
    while checked < 200 {
        let case = sample_case(&mut rng, Family::ALL[checked % Family::ALL.len()]);
        let built = case.build(&spec).expect("oracle cases always build");
        let sch = &built.sched;
        let n = sch.n_ops();
        if n == 0 {
            continue;
        }
        let k = rng.gen_range(0..n);

        let store = seeded_store(sch, &built);
        let journal = CompletionJournal::for_schedule(sch);
        match run_single_killed(sch, &store, &journal, k) {
            Err(ExecError::Killed { .. }) => {}
            other => panic!("{}: kill at {k} of {n}: {other:?}", case.describe()),
        }
        resume_single(sch, &store, &journal)
            .unwrap_or_else(|e| panic!("{}: first resume: {e}", case.describe()));
        let once = snapshot(sch, &store);
        let len_once = journal.len();
        let digest_once = journal.digest();

        // Second (and third, threaded) resume: nothing left to do, nothing
        // may change — not the bytes, not the journal.
        resume_single(sch, &store, &journal)
            .unwrap_or_else(|e| panic!("{}: second resume: {e}", case.describe()));
        resume_threaded(sch, &store, 3, &journal)
            .unwrap_or_else(|e| panic!("{}: threaded resume: {e}", case.describe()));
        assert_eq!(journal.len(), len_once, "{}: journal grew", case.describe());
        assert_eq!(
            journal.digest(),
            digest_once,
            "{}: journal mutated",
            case.describe()
        );
        assert_eq!(
            snapshot(sch, &store),
            once,
            "{}: bytes changed on re-resume",
            case.describe()
        );

        // And the recovered bytes match an unfailed run.
        let ref_store = seeded_store(sch, &built);
        run_single(sch, &ref_store).unwrap();
        assert_eq!(
            once,
            snapshot(sch, &ref_store),
            "{}: recovery diverged",
            case.describe()
        );
        checked += 1;
    }
}

/// A journal claiming an op whose dependencies are incomplete must be
/// rejected with the typed [`JournalError::DepIncomplete`] by validation
/// and by every resume entry point.
#[test]
fn dependency_incomplete_journals_are_rejected_typed() {
    let spec = ClusterSpec::thor();
    let mut rng = StdRng::seed_from_u64(0xBAD_5EED);
    let mut checked = 0usize;
    while checked < 50 {
        let case = sample_case(&mut rng, Family::ALL[checked % Family::ALL.len()]);
        let built = case.build(&spec).expect("oracle cases always build");
        let sch = &built.sched;
        // Find an op with at least one dependency and journal it alone.
        let Some(op) = (0..sch.n_ops() as u32).find(|&i| !sch.preds(i).is_empty()) else {
            continue;
        };
        let dep = sch.preds(op)[0];
        let journal = CompletionJournal::from_entries(sch.n_ops(), vec![op]);
        let err = journal.validate(sch).unwrap_err();
        assert_eq!(
            err,
            JournalError::DepIncomplete { op, dep },
            "{}",
            case.describe()
        );
        let store = seeded_store(sch, &built);
        assert!(matches!(
            resume_single(sch, &store, &journal),
            Err(ExecError::Journal(JournalError::DepIncomplete { .. }))
        ));
        assert!(matches!(
            resume_threaded(sch, &store, 2, &journal),
            Err(ExecError::Journal(JournalError::DepIncomplete { .. }))
        ));
        checked += 1;
    }
}
