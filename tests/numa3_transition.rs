//! Transition pin for the numa3 → composer migration.
//!
//! The legacy hand-written 3-level emitter (`mha/numa3.rs`) was replaced by
//! the generic hierarchical composer. Before deleting it, every config below
//! was built with BOTH emitters and the op streams compared bit-for-bit;
//! the fingerprints here are that captured record. If a composer change
//! breaks one of these constants, the 3-level schedule shape changed — that
//! may be intentional, but it must be a conscious decision, because it also
//! invalidates golden latencies and campaign cache entries.

use mha::collectives::mha::{build_mha_numa3, Numa3Config};
use mha::collectives::{build_composed, ComposePlan};
use mha::sched::{ProcGrid, Topology};
use mha::simnet::{ClusterSpec, NumaSpec};

/// (nodes, ppn, msg, offload_xsocket) → schedule fingerprint captured from
/// the legacy emitter on `ClusterSpec::thor_numa()` (2 sockets).
const PINNED: &[(u32, u32, usize, bool, u64)] = &[
    (1, 4, 24, true, 0x88b29f4f2aa3a942),
    (1, 8, 65536, true, 0x4e837924494b25a6),
    (2, 4, 24, true, 0x46d1105d3269448c),
    (2, 8, 16, true, 0x3a32fa54f1720734),
    (3, 4, 512, true, 0xced996a5b1a9623a),
    (4, 8, 4096, true, 0xbdbd9374aa81db05),
    (2, 16, 524288, true, 0xb0495c4b47d23919),
    (1, 4, 24, false, 0xfff98f1cdf3b2986),
    (1, 8, 65536, false, 0x332b83311c6f4f22),
    (2, 4, 24, false, 0xcf84306170d51858),
    (2, 8, 16, false, 0x6eaa0cb9ad6a63a8),
    (3, 4, 512, false, 0x444756bf708ac558),
    (4, 8, 4096, false, 0xc5ed48dd2390a135),
    (2, 16, 524288, false, 0x8a42a76f0017ee45),
];

#[test]
fn numa3_wrapper_matches_the_legacy_emitter_fingerprints() {
    let spec = ClusterSpec::thor_numa();
    for &(nodes, ppn, msg, offload, want) in PINNED {
        let built = build_mha_numa3(
            ProcGrid::new(nodes, ppn),
            msg,
            Numa3Config {
                offload_xsocket: offload,
            },
            &spec,
        )
        .unwrap();
        assert_eq!(
            built.sched.fingerprint().0,
            want,
            "fingerprint drift at nodes={nodes} ppn={ppn} msg={msg} offload={offload}"
        );
    }
}

#[test]
fn composed_three_level_matches_the_same_pins() {
    // The wrapper and a direct composer invocation must agree — the wrapper
    // adds nothing but the topology derivation and parameter checks.
    let spec = ClusterSpec::thor_numa();
    let sockets = spec.sockets();
    for &(nodes, ppn, msg, offload, want) in PINNED {
        let topo = Topology::three_level(nodes, sockets, ppn / sockets);
        let built = build_composed(&topo, msg, &ComposePlan::numa3(offload), &spec).unwrap();
        assert_eq!(
            built.sched.fingerprint().0,
            want,
            "composed fingerprint drift at nodes={nodes} ppn={ppn} msg={msg} offload={offload}"
        );
    }
}

#[test]
fn four_socket_custom_spec_pin() {
    // A non-thor layout exercises the socket-count-dependent paths: shm
    // homing, import fan-in width, and the distribute segmentation.
    let spec = ClusterSpec {
        numa: Some(NumaSpec {
            sockets: 4,
            xsocket_bw: 5.0e9,
            xsocket_alpha: 0.2e-6,
        }),
        ..ClusterSpec::thor()
    };
    let built = build_mha_numa3(
        ProcGrid::new(2, 8),
        1024,
        Numa3Config {
            offload_xsocket: true,
        },
        &spec,
    )
    .unwrap();
    assert_eq!(built.sched.fingerprint().0, 0x9683cb958b966de6);
}
