//! OSU-micro-benchmark-style sweep driver over the simulator.
//!
//! The paper reports `osu_allgather` / `osu_allreduce` latencies averaged
//! over ≥ 3 runs of 1000 iterations (Section 5.1); the simulator is
//! deterministic, so one virtual iteration *is* the converged average —
//! the driver keeps the same sweep structure and reporting format.

use mha_collectives::mha::{MhaInterConfig, Offload};
use mha_collectives::{
    build_ring_allreduce, build_tuned_mha, AllgatherAlgo, AllgatherPhase, BuildError, Library,
    TuneError,
};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, SimError, Simulator};

use crate::report::{fmt_bytes, Table};

/// An error from a sweep.
#[derive(Debug)]
pub enum AppError {
    /// A collective failed to build.
    Build(BuildError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Build(e) => write!(f, "build failed: {e}"),
            AppError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<BuildError> for AppError {
    fn from(e: BuildError) -> Self {
        AppError::Build(e)
    }
}

impl From<SimError> for AppError {
    fn from(e: SimError) -> Self {
        AppError::Sim(e)
    }
}

impl From<TuneError> for AppError {
    fn from(e: TuneError) -> Self {
        match e {
            TuneError::Build(b) => AppError::Build(b),
            TuneError::Sim(s) => AppError::Sim(s),
        }
    }
}

/// One entrant in a comparison sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contestant {
    /// A library surrogate's tuned selection.
    Library(Library),
    /// The paper's design: MHA-intra on one node, tuned MHA-inter across
    /// nodes (Ring/RD chosen per point, Figures 12–14's procedure).
    MhaTuned,
    /// A pinned algorithm (for ablations).
    Fixed(AllgatherAlgo),
}

impl Contestant {
    /// Column label.
    pub fn name(&self) -> String {
        match self {
            Contestant::Library(l) => l.name().to_string(),
            Contestant::MhaTuned => "MHA".to_string(),
            Contestant::Fixed(a) => a.name(),
        }
    }

    /// Builds (without running) this contestant's Allgather schedule —
    /// the build half of [`Contestant::allgather_latency_us`], exposed so
    /// campaign runners can cache the frozen schedule and price it in a
    /// reused engine arena.
    pub fn build_allgather(
        &self,
        grid: ProcGrid,
        msg: usize,
        spec: &ClusterSpec,
    ) -> Result<mha_collectives::Built, AppError> {
        Ok(match self {
            Contestant::Library(l) => l.build_allgather(grid, msg, spec)?,
            Contestant::MhaTuned => {
                if grid.nodes() == 1 {
                    // The paper's proposed intra design sizes the offload
                    // with Eq. 1 (Section 4.1); this is what produces the
                    // decaying-gain trend of Section 5.2 as L grows. (The
                    // Figure 5 empirical tuner — `tune_offload` — can find
                    // still-larger offloads under congestion; fig05 and the
                    // ablation bench quantify that gap.)
                    AllgatherAlgo::MhaIntra {
                        offload: Offload::Auto,
                    }
                    .build(grid, msg, spec)?
                } else {
                    let (built, _) = build_tuned_mha(grid, msg, spec)?;
                    built
                }
            }
            Contestant::Fixed(a) => a.build(grid, msg, spec)?,
        })
    }

    /// Builds (without running) this contestant's Ring-Allreduce schedule
    /// for a vector of `elems` f32 elements.
    pub fn build_allreduce(
        &self,
        grid: ProcGrid,
        elems: usize,
        spec: &ClusterSpec,
    ) -> Result<mha_collectives::Built, AppError> {
        let phase = match self {
            Contestant::Library(_) => AllgatherPhase::FlatRing,
            Contestant::MhaTuned | Contestant::Fixed(_) => {
                AllgatherPhase::MhaInter(MhaInterConfig::default())
            }
        };
        Ok(build_ring_allreduce(grid, elems, phase, spec)?)
    }

    /// Simulated Allgather latency at one point, in microseconds.
    pub fn allgather_latency_us(
        &self,
        grid: ProcGrid,
        msg: usize,
        spec: &ClusterSpec,
    ) -> Result<f64, AppError> {
        let sim = Simulator::new(spec.clone())?;
        let built = self.build_allgather(grid, msg, spec)?;
        Ok(sim.run(&built.sched)?.latency_us())
    }

    /// Simulated Allreduce latency for a vector of `elems` f32 elements.
    pub fn allreduce_latency_us(
        &self,
        grid: ProcGrid,
        elems: usize,
        spec: &ClusterSpec,
    ) -> Result<f64, AppError> {
        let sim = Simulator::new(spec.clone())?;
        let built = self.build_allreduce(grid, elems, spec)?;
        Ok(sim.run(&built.sched)?.latency_us())
    }
}

/// Sweeps `osu_allgather` over `sizes` for each contestant; returns a
/// table of latencies in microseconds (rows = message sizes).
pub fn allgather_sweep(
    title: &str,
    grid: ProcGrid,
    sizes: &[usize],
    contestants: &[Contestant],
    spec: &ClusterSpec,
) -> Result<Table, AppError> {
    let mut table = Table::new(
        title,
        "msg_bytes",
        contestants.iter().map(Contestant::name).collect(),
    );
    for &msg in sizes {
        let mut row = Vec::with_capacity(contestants.len());
        for c in contestants {
            row.push(c.allgather_latency_us(grid, msg, spec)?);
        }
        table.push(fmt_bytes(msg), row);
    }
    Ok(table)
}

/// Sweeps `osu_allreduce` over vector sizes in bytes (f32 elements are
/// `bytes / 4`, padded up to the rank count).
pub fn allreduce_sweep(
    title: &str,
    grid: ProcGrid,
    sizes_bytes: &[usize],
    contestants: &[Contestant],
    spec: &ClusterSpec,
) -> Result<Table, AppError> {
    let mut table = Table::new(
        title,
        "msg_bytes",
        contestants.iter().map(Contestant::name).collect(),
    );
    let r = grid.nranks() as usize;
    for &bytes in sizes_bytes {
        let elems = (bytes / 4).div_ceil(r) * r; // pad to divisibility
        let mut row = Vec::with_capacity(contestants.len());
        for c in contestants {
            row.push(c.allreduce_latency_us(grid, elems, spec)?);
        }
        table.push(fmt_bytes(bytes), row);
    }
    Ok(table)
}

/// The standard contestant line-up of Figures 11–15.
pub fn paper_contestants() -> Vec<Contestant> {
    vec![
        Contestant::Library(Library::HpcX),
        Contestant::Library(Library::Mvapich2X),
        Contestant::MhaTuned,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_sweep_produces_full_table() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        let sizes = [1024usize, 16 * 1024];
        let t = allgather_sweep("t", grid, &sizes, &paper_contestants(), &spec).unwrap();
        assert_eq!(t.len(), 2);
        for (_, row) in t.rows() {
            assert_eq!(row.len(), 3);
            assert!(row.iter().all(|v| *v > 0.0));
        }
    }

    #[test]
    fn mha_wins_the_inter_node_sweep() {
        // The qualitative content of Figures 12–14, at miniature scale.
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(4, 8);
        for msg in [1024usize, 64 * 1024] {
            let hpcx = Contestant::Library(Library::HpcX)
                .allgather_latency_us(grid, msg, &spec)
                .unwrap();
            let mva = Contestant::Library(Library::Mvapich2X)
                .allgather_latency_us(grid, msg, &spec)
                .unwrap();
            let mha = Contestant::MhaTuned
                .allgather_latency_us(grid, msg, &spec)
                .unwrap();
            assert!(mha < hpcx, "msg={msg}: mha {mha} vs hpcx {hpcx}");
            assert!(mha < mva, "msg={msg}: mha {mha} vs mvapich {mva}");
        }
    }

    #[test]
    fn allreduce_sweep_pads_indivisible_sizes() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 3); // 6 ranks: 1000 bytes won't divide
        let t = allreduce_sweep("t", grid, &[1000], &[Contestant::MhaTuned], &spec).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn contestant_names_match_figures() {
        let names: Vec<String> = paper_contestants().iter().map(Contestant::name).collect();
        assert_eq!(names, vec!["HPC-X", "MVAPICH2-X", "MHA"]);
    }
}
