//! Workload mixes: what kind of collective a newly arrived job runs.
//!
//! A [`WorkloadMix`] is a weighted list of [`WorkloadEntry`]s; each entry
//! fixes an [`AlgoConfig`] and a node width and offers a palette of
//! message sizes. Sampling draws the entry by weight and the size
//! uniformly from its palette, consuming the traffic spec's seeded
//! generator — the same seed always produces the same job stream.

use mha_collectives::AlgoConfig;
use mha_sched::ProcGrid;
use rand::{rngs::StdRng, Rng};

/// One kind of job a tenant may submit.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    /// The collective to build (coerced onto the job grid at sampling
    /// time, so any config is safe to list).
    pub cfg: AlgoConfig,
    /// Nodes the job asks for (whole-node placement at the cluster ppn).
    pub nodes: u32,
    /// Message-size palette in bytes (one drawn uniformly per job).
    pub msgs: Vec<usize>,
    /// Relative sampling weight (> 0).
    pub weight: f64,
}

impl WorkloadEntry {
    /// An entry with weight 1.
    pub fn new(cfg: AlgoConfig, nodes: u32, msgs: Vec<usize>) -> Self {
        WorkloadEntry {
            cfg,
            nodes,
            msgs,
            weight: 1.0,
        }
    }

    /// Replaces the weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "bad weight {weight}");
        self.weight = weight;
        self
    }
}

/// A weighted set of job kinds.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    entries: Vec<WorkloadEntry>,
}

impl WorkloadMix {
    /// A mix over `entries` (at least one, all weights positive, every
    /// entry with at least one message size and one node).
    pub fn new(entries: Vec<WorkloadEntry>) -> Self {
        assert!(!entries.is_empty(), "workload mix must have entries");
        for e in &entries {
            assert!(e.nodes >= 1, "entry asks for zero nodes");
            assert!(!e.msgs.is_empty(), "entry has no message sizes");
            assert!(e.weight > 0.0 && e.weight.is_finite(), "bad weight");
        }
        WorkloadMix { entries }
    }

    /// The paper-flavored default mix on a `cluster_nodes`-wide cluster:
    /// MHA-inter jobs at two widths plus a flat-ring background job, over
    /// the medium message range.
    pub fn paper_default(cluster_nodes: u32) -> Self {
        use mha_collectives::Family;
        let wide = cluster_nodes.max(2);
        let narrow = (cluster_nodes / 2).max(2).min(wide);
        let msgs = vec![1 << 10, 1 << 12, 1 << 14];
        WorkloadMix::new(vec![
            WorkloadEntry::new(AlgoConfig::default(), narrow, msgs.clone()).with_weight(2.0),
            WorkloadEntry::new(AlgoConfig::default(), wide, msgs.clone()),
            WorkloadEntry::new(AlgoConfig::flat(Family::Ring), narrow, msgs),
        ])
    }

    /// The entries, in declaration order.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Draws one `(config, nodes, msg)` triple: the entry by weight, the
    /// size uniformly from its palette. The config is
    /// [`AlgoConfig::coerce_for`]-adjusted to the job grid so the draw is
    /// always buildable.
    pub fn sample(&self, ppn: u32, rng: &mut StdRng) -> (AlgoConfig, u32, usize) {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        let mut x = rng.gen_f64() * total;
        let mut idx = self.entries.len() - 1;
        for (i, e) in self.entries.iter().enumerate() {
            if x < e.weight {
                idx = i;
                break;
            }
            x -= e.weight;
        }
        let e = &self.entries[idx];
        let msg = e.msgs[rng.gen_range(0..e.msgs.len())];
        let grid = ProcGrid::new(e.nodes, ppn);
        (e.cfg.coerce_for(grid), e.nodes, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampling_is_seed_deterministic_and_in_palette() {
        let mix = WorkloadMix::paper_default(8);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| mix.sample(4, &mut rng)).collect::<Vec<_>>()
        };
        let a = draw(3);
        assert_eq!(
            format!("{:?}", a),
            format!("{:?}", draw(3)),
            "same seed, same stream"
        );
        for (cfg, nodes, msg) in &a {
            assert!(*nodes >= 2 && *nodes <= 8);
            assert!([1usize << 10, 1 << 12, 1 << 14].contains(msg));
            assert!(cfg.valid_for(ProcGrid::new(*nodes, 4)), "coerced invalid");
        }
    }

    #[test]
    fn weights_bias_the_draw() {
        use mha_collectives::Family;
        let mix = WorkloadMix::new(vec![
            WorkloadEntry::new(AlgoConfig::flat(Family::Ring), 2, vec![64]).with_weight(99.0),
            WorkloadEntry::new(AlgoConfig::flat(Family::Bruck), 3, vec![64]),
        ]);
        let mut rng = StdRng::seed_from_u64(11);
        let wide = (0..200).filter(|_| mix.sample(2, &mut rng).1 == 2).count();
        assert!(wide > 150, "99:1 weighting should dominate, got {wide}/200");
    }
}
