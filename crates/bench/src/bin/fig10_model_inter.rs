//! Figure 10: validation of the MHA-inter cost model (Eqs. 6/7) against
//! the simulator, 8 nodes × 32 PPN, 1 KB – 1 MB.

use mha_apps::report::{fmt_bytes, Table};
use mha_model::{calibrate, mean_rel_error, validate_inter};
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let params = calibrate(&spec).unwrap();
    let sizes = size_sweep(1024, 1 << 20);
    let points = validate_inter(&spec, &params, 8, 32, &sizes).unwrap();
    let mut t = Table::new(
        format!(
            "Figure 10: MHA-inter model validation, 8 nodes x 32 PPN \
             (mean rel. error {:.1}%)",
            mean_rel_error(&points) * 100.0
        ),
        "msg_bytes",
        vec![
            "actual_us".into(),
            "predicted_us".into(),
            "rel_err_pct".into(),
        ],
    );
    for p in &points {
        t.push(
            fmt_bytes(p.msg),
            vec![p.actual_us, p.predicted_us, p.rel_error() * 100.0],
        );
    }
    mha_bench::emit(&t, "fig10_model_inter");
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_inter(
        mha_sched::ProcGrid::new(8, 32),
        64 * 1024,
        Default::default(),
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig10_model_inter");
}
