//! The searched design space: candidate [`AlgoConfig`]s per tuning point,
//! and the untuned baseline families the tuned pick must beat.

use mha_collectives::mha::{InterAlgo, Offload};
use mha_collectives::{AlgoConfig, Family, Library};
use mha_sched::ProcGrid;

/// The untuned baseline families of Figures 12–14 — exactly the sweep
/// columns a plain (no `--tuned`) figure run prices: the two library
/// surrogates and the paper's MHA-inter design with each phase-2
/// algorithm at its defaults. Every one of these joins rung 1 of the
/// search, so the tuned winner can never lose to them.
pub fn untuned_families() -> Vec<(&'static str, AlgoConfig)> {
    vec![
        ("HPC-X", AlgoConfig::flat(Family::Library(Library::HpcX))),
        (
            "MVAPICH2-X",
            AlgoConfig::flat(Family::Library(Library::Mvapich2X)),
        ),
        ("mha-ring", AlgoConfig::default()),
        (
            "mha-rd",
            AlgoConfig {
                inter: InterAlgo::RecursiveDoubling,
                ..AlgoConfig::default()
            },
        ),
    ]
}

/// The full candidate set at one tuning point: both library surrogates
/// plus the MHA-inter cross product over phase-2 algorithm, phase-3
/// overlap, offload policy, exchange-pipeline chunk (`None` plus two
/// fractions of the node block) and stripe-threshold override. MHA-inter
/// candidates carry `down_rails` so a degraded point tunes
/// degraded-aware builds; configs invalid for `grid` are filtered out.
pub fn candidates(grid: ProcGrid, down_rails: &[u8]) -> Vec<AlgoConfig> {
    let mut out = vec![
        AlgoConfig::flat(Family::Library(Library::HpcX)),
        AlgoConfig::flat(Family::Library(Library::Mvapich2X)),
    ];
    let ppn = grid.ppn();
    let chunks = [None, Some((ppn / 4).max(1)), Some((ppn / 2).max(1))];
    let stripes = [None, Some(4 * 1024), Some(64 * 1024)];
    for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
        for overlap in [true, false] {
            for offload in [Offload::Auto, Offload::None] {
                for chunk in chunks {
                    for stripe_threshold in stripes {
                        out.push(AlgoConfig {
                            family: Family::MhaInter,
                            inter,
                            overlap,
                            offload,
                            chunk,
                            stripe_threshold,
                            down_rails: down_rails.to_vec(),
                        });
                    }
                }
            }
        }
    }
    out.retain(|c| c.valid_for(grid));
    dedup_by_digest(out)
}

/// Removes digest-duplicate configs, keeping first occurrences (the chunk
/// fractions can collide at tiny ppn).
pub(crate) fn dedup_by_digest(configs: Vec<AlgoConfig>) -> Vec<AlgoConfig> {
    let mut seen = std::collections::HashSet::new();
    configs
        .into_iter()
        .filter(|c| seen.insert(c.digest()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_covers_the_advertised_axes() {
        let grid = ProcGrid::new(8, 32);
        let cands = candidates(grid, &[]);
        // 2 libraries + 2×2×2×3×3 MHA-inter points, all valid, no dups.
        assert_eq!(cands.len(), 2 + 72);
        assert!(cands.iter().all(|c| c.valid_for(grid)));
        let mut digests: Vec<u64> = cands.iter().map(AlgoConfig::digest).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), cands.len());
        // Degraded variants carry the down set on every MHA-inter config.
        let degraded = candidates(grid, &[1]);
        assert!(degraded
            .iter()
            .filter(|c| c.family == Family::MhaInter)
            .all(|c| c.down_rails == [1]));
    }

    #[test]
    fn non_power_of_two_nodes_drop_rd_candidates() {
        let cands = candidates(ProcGrid::new(3, 8), &[]);
        assert!(cands
            .iter()
            .all(|c| c.family != Family::MhaInter || c.inter == InterAlgo::Ring));
        assert!(!cands.is_empty());
    }

    #[test]
    fn untuned_families_are_the_figure_columns() {
        let fams = untuned_families();
        let labels: Vec<&str> = fams.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["HPC-X", "MVAPICH2-X", "mha-ring", "mha-rd"]);
        // Every untuned family is also a member of the candidate space at
        // a representative grid (the search would find it on its own).
        let grid = ProcGrid::new(8, 32);
        let space: std::collections::HashSet<u64> = candidates(grid, &[])
            .iter()
            .map(AlgoConfig::digest)
            .collect();
        for (label, cfg) in &fams {
            assert!(space.contains(&cfg.digest()), "{label} not in the space");
        }
    }
}
