//! Multi-tenant traffic engine for the MHA Allgather reproduction.
//!
//! The figure-level benchmarks price one collective at a time on an idle
//! cluster. Real clusters run *many* jobs at once: an arrival process
//! emits collective jobs, a placement policy scatters them over node
//! subsets of one shared machine, and their flows contend on the same
//! HCAs, memory buses and CPUs. This crate models exactly that on top of
//! `mha-simnet` without touching the engine's pricing at all:
//!
//! 1. [`sample_jobs`] expands a [`TrafficSpec`] — arrival process
//!    ([`Arrival::Closed`] clients with think times, [`Arrival::Poisson`]
//!    open loop, or an explicit [`Arrival::Trace`]), workload mix
//!    ([`WorkloadMix`]), placement policy ([`PlacementPolicy`]) — into a
//!    deterministic, seed-reproducible list of [`JobSpec`]s.
//! 2. Each job's schedule is built solo on its own grid, then
//!    [`mha_sched::relocate_onto`] its placed node subset.
//! 3. [`mha_sched::merge_parts`] fuses all jobs into **one** schedule
//!    over the cluster grid — arrivals become per-root release delays,
//!    closed-loop feedback becomes DAG edges onto the predecessor's
//!    sinks — and a single [`mha_simnet::Simulator`] run prices it.
//!    Cross-job contention *emerges* from the existing max-min
//!    water-filler; nothing in the engine knows jobs exist.
//! 4. A per-tenant probe attributes op completions back through the
//!    merge spans: [`TrafficReport`] carries per-job arrival/end, and
//!    [`tenant_stats`]/[`jain`] turn that into p50/p95/p99 latency,
//!    throughput and Jain's fairness index per tenant.
//!
//! Because a merged single job with zero release is *identical* to its
//! solo schedule, every existing single-job path is bit-preserved, and
//! jobs on disjoint placements price bit-identically to their solo runs
//! (the tenant oracle in `mha-conformance` holds both bars).

#![warn(missing_docs)]

mod arrival;
mod metrics;
mod placement;
mod run;
mod workload;

pub use arrival::{sample_jobs, Arrival, JobSpec};
pub use metrics::{
    jain, job_trace_csv, percentile, tenant_csv, tenant_fairness, tenant_stats, TenantStats,
};
pub use placement::{place, placement_digest, PlacementPolicy};
pub use run::{
    default_builder, run_jobs, run_traffic, tenant_jobs, BuildJob, JobRecord, ResourceUse,
    TrafficReport, TrafficSpec,
};
pub use workload::{WorkloadEntry, WorkloadMix};
