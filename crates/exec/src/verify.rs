//! Semantic verification of collective schedules.
//!
//! A collective algorithm hands over its schedule plus the per-rank send and
//! receive buffer ids; these helpers fill the send buffers with a
//! deterministic per-rank pattern, execute the schedule (sequentially or on
//! a thread pool), and check the collective's postcondition:
//!
//! * **Allgather**: every rank's receive buffer equals the concatenation of
//!   all ranks' send buffers in rank order (MPI_Allgather semantics).
//! * **Allreduce**: every rank's receive buffer equals the elementwise sum
//!   of all ranks' contributions (MPI_Allreduce with MPI_SUM).

use mha_sched::{BufId, FrozenSchedule};

use crate::executor::{run_single, run_threaded, ExecError};
use crate::memory::BufferStore;

/// How to execute during verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sequential reference execution.
    Single,
    /// Thread-pool execution with the given worker count.
    Threaded(usize),
}

/// A verification failure.
#[derive(Debug)]
pub enum VerifyError {
    /// Execution itself failed.
    Exec(ExecError),
    /// A rank's output did not match the expected bytes.
    Mismatch {
        /// The failing rank (index into the handed-in buffer lists).
        rank: usize,
        /// First differing byte offset.
        offset: usize,
        /// Expected byte.
        expected: u8,
        /// Actual byte.
        actual: u8,
    },
    /// A rank's output float did not match the expected value.
    FloatMismatch {
        /// The failing rank.
        rank: usize,
        /// Element index.
        index: usize,
        /// Expected value.
        expected: f32,
        /// Actual value.
        actual: f32,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Exec(e) => write!(f, "execution failed: {e}"),
            VerifyError::Mismatch {
                rank,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "rank {rank}: byte {offset} expected {expected:#04x}, got {actual:#04x}"
            ),
            VerifyError::FloatMismatch {
                rank,
                index,
                expected,
                actual,
            } => write!(
                f,
                "rank {rank}: element {index} expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ExecError> for VerifyError {
    fn from(e: ExecError) -> Self {
        VerifyError::Exec(e)
    }
}

/// The deterministic fill pattern for `rank`'s `len`-byte contribution.
/// Distinct across ranks and positions, so any routing mistake (wrong
/// source, wrong offset, truncation) shows up as a mismatch.
pub fn rank_pattern(rank: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (x >> 32) as u8
        })
        .collect()
}

fn run_mode(sch: &FrozenSchedule, store: &BufferStore, mode: Mode) -> Result<(), ExecError> {
    match mode {
        Mode::Single => run_single(sch, store),
        Mode::Threaded(n) => run_threaded(sch, store, n),
    }
}

/// Fills each rank's send buffer with [`rank_pattern`], executes, and checks
/// MPI_Allgather semantics: `recv[rank] == concat(pattern(0..nranks))`.
///
/// `send[r]`/`recv[r]` are the send/recv buffers of rank `r`; `msg` is the
/// per-rank contribution size in bytes.
pub fn verify_allgather(
    sch: &FrozenSchedule,
    send: &[BufId],
    recv: &[BufId],
    msg: usize,
    mode: Mode,
) -> Result<(), VerifyError> {
    assert_eq!(send.len(), recv.len(), "send/recv lists must align");
    let n = send.len();
    let store = BufferStore::new(sch);
    for (r, &buf) in send.iter().enumerate() {
        store.fill(buf, 0, &rank_pattern(r, msg));
    }
    run_mode(sch, &store, mode)?;
    let expected: Vec<u8> = (0..n).flat_map(|r| rank_pattern(r, msg)).collect();
    for (r, &buf) in recv.iter().enumerate() {
        let got = store.read(buf, 0, n * msg);
        if let Some(off) = got.iter().zip(&expected).position(|(a, b)| a != b) {
            return Err(VerifyError::Mismatch {
                rank: r,
                offset: off,
                expected: expected[off],
                actual: got[off],
            });
        }
    }
    Ok(())
}

/// The deterministic f32 contribution of `rank`: element `i` is
/// `(rank + 1) * (i % 13 + 1)` — small integers, so float sums are exact and
/// order-independent.
pub fn rank_values_f32(rank: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| (rank as f32 + 1.0) * ((i % 13) as f32 + 1.0))
        .collect()
}

/// Fills each rank's send buffer with [`rank_values_f32`], executes, and
/// checks MPI_Allreduce(SUM) semantics: every rank's receive buffer holds
/// the elementwise sum over all ranks.
pub fn verify_allreduce_sum_f32(
    sch: &FrozenSchedule,
    send: &[BufId],
    recv: &[BufId],
    elems: usize,
    mode: Mode,
) -> Result<(), VerifyError> {
    assert_eq!(send.len(), recv.len(), "send/recv lists must align");
    let n = send.len();
    let store = BufferStore::new(sch);
    for (r, &buf) in send.iter().enumerate() {
        let bytes: Vec<u8> = rank_values_f32(r, elems)
            .iter()
            .flat_map(|v| v.to_ne_bytes())
            .collect();
        store.fill(buf, 0, &bytes);
    }
    run_mode(sch, &store, mode)?;
    // sum over ranks of (rank+1) = n(n+1)/2; element i scales by (i%13 + 1).
    let rank_sum = (n * (n + 1) / 2) as f32;
    for (r, &buf) in recv.iter().enumerate() {
        let got = store.read(buf, 0, elems * 4);
        for i in 0..elems {
            let v = f32::from_ne_bytes(got[i * 4..i * 4 + 4].try_into().unwrap());
            let expected = rank_sum * ((i % 13) as f32 + 1.0);
            if (v - expected).abs() > 1e-3 * expected.abs().max(1.0) {
                return Err(VerifyError::FloatMismatch {
                    rank: r,
                    index: i,
                    expected,
                    actual: v,
                });
            }
        }
    }
    Ok(())
}

/// Fills the root's buffer with [`rank_pattern`], executes, and checks
/// MPI_Bcast semantics: every rank's buffer equals the root's `msg` bytes.
///
/// `bufs[r]` is rank `r`'s broadcast buffer (the root's doubles as input).
pub fn verify_bcast(
    sch: &FrozenSchedule,
    bufs: &[BufId],
    root: usize,
    msg: usize,
    mode: Mode,
) -> Result<(), VerifyError> {
    let store = BufferStore::new(sch);
    let payload = rank_pattern(root.wrapping_add(17), msg);
    store.fill(bufs[root], 0, &payload);
    run_mode(sch, &store, mode)?;
    for (r, &buf) in bufs.iter().enumerate() {
        let got = store.read(buf, 0, msg);
        if let Some(off) = got.iter().zip(&payload).position(|(a, b)| a != b) {
            return Err(VerifyError::Mismatch {
                rank: r,
                offset: off,
                expected: payload[off],
                actual: got[off],
            });
        }
    }
    Ok(())
}

/// Fills each rank's send buffer with [`rank_pattern`] (length
/// `nranks * msg`, block `d` destined to rank `d`), executes, and checks
/// MPI_Alltoall semantics: `recv[r]` block `s` equals block `r` of rank
/// `s`'s send buffer.
pub fn verify_alltoall(
    sch: &FrozenSchedule,
    send: &[BufId],
    recv: &[BufId],
    msg: usize,
    mode: Mode,
) -> Result<(), VerifyError> {
    assert_eq!(send.len(), recv.len(), "send/recv lists must align");
    let n = send.len();
    let store = BufferStore::new(sch);
    for (r, &buf) in send.iter().enumerate() {
        store.fill(buf, 0, &rank_pattern(r, n * msg));
    }
    run_mode(sch, &store, mode)?;
    for (r, &buf) in recv.iter().enumerate() {
        let got = store.read(buf, 0, n * msg);
        for s in 0..n {
            let expected = &rank_pattern(s, n * msg)[r * msg..(r + 1) * msg];
            let actual = &got[s * msg..(s + 1) * msg];
            if let Some(off) = actual.iter().zip(expected).position(|(a, b)| a != b) {
                return Err(VerifyError::Mismatch {
                    rank: r,
                    offset: s * msg + off,
                    expected: expected[off],
                    actual: actual[off],
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};

    /// Hand-rolled 2-rank allgather: each rank copies its own data into its
    /// recv buffer and CMA-reads the peer's.
    fn manual_allgather(msg: usize) -> (FrozenSchedule, Vec<BufId>, Vec<BufId>) {
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "manual");
        let sends: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), msg, format!("s{r}")))
            .collect();
        let recvs: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), 2 * msg, format!("r{r}")))
            .collect();
        for r in 0..2u32 {
            let me = RankId(r);
            let peer = RankId(1 - r);
            b.copy(
                me,
                Loc::new(sends[r as usize], 0),
                Loc::new(recvs[r as usize], r as usize * msg),
                msg,
                &[],
                0,
            );
            b.transfer(
                peer,
                me,
                Loc::new(sends[1 - r as usize], 0),
                Loc::new(recvs[r as usize], (1 - r as usize) * msg),
                msg,
                Channel::Cma,
                &[],
                0,
            );
        }
        (b.finish().freeze(), sends, recvs)
    }

    #[test]
    fn correct_allgather_verifies_in_both_modes() {
        let (sch, s, r) = manual_allgather(64);
        verify_allgather(&sch, &s, &r, 64, Mode::Single).unwrap();
        verify_allgather(&sch, &s, &r, 64, Mode::Threaded(4)).unwrap();
    }

    #[test]
    fn broken_allgather_is_caught() {
        // Forget the peer transfer for rank 1.
        let grid = ProcGrid::single_node(2);
        let msg = 32;
        let mut b = ScheduleBuilder::new(grid, "broken");
        let sends: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), msg, format!("s{r}")))
            .collect();
        let recvs: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), 2 * msg, format!("r{r}")))
            .collect();
        for r in 0..2usize {
            b.copy(
                RankId(r as u32),
                Loc::new(sends[r], 0),
                Loc::new(recvs[r], r * msg),
                msg,
                &[],
                0,
            );
        }
        b.transfer(
            RankId(1),
            RankId(0),
            Loc::new(sends[1], 0),
            Loc::new(recvs[0], msg),
            msg,
            Channel::Cma,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let err = verify_allgather(&sch, &sends, &recvs, msg, Mode::Single).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { rank: 1, .. }));
    }

    #[test]
    fn patterns_differ_across_ranks_and_positions() {
        let a = rank_pattern(0, 256);
        let b = rank_pattern(1, 256);
        assert_ne!(a, b);
        assert_ne!(a[0..128], a[128..256]);
    }

    #[test]
    fn rank_values_are_exact_small_floats() {
        let v = rank_values_f32(3, 30);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[13], 4.0);
        assert_eq!(v[1], 8.0);
    }

    #[test]
    fn manual_allreduce_two_ranks() {
        use mha_sched::{DType, RedOp};
        let grid = ProcGrid::single_node(2);
        let elems = 16;
        let bytes = elems * 4;
        let mut b = ScheduleBuilder::new(grid, "ar");
        let sends: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), bytes, format!("s{r}")))
            .collect();
        let recvs: Vec<_> = (0..2)
            .map(|r| b.private_buf(RankId(r), bytes, format!("r{r}")))
            .collect();
        for r in 0..2usize {
            // recv = own send
            let c = b.copy(
                RankId(r as u32),
                Loc::new(sends[r], 0),
                Loc::new(recvs[r], 0),
                bytes,
                &[],
                0,
            );
            // tmp = peer's send, then recv += tmp
            let tmp = b.private_buf(RankId(r as u32), bytes, format!("t{r}"));
            let t = b.transfer(
                RankId(1 - r as u32),
                RankId(r as u32),
                Loc::new(sends[1 - r], 0),
                Loc::new(tmp, 0),
                bytes,
                Channel::Cma,
                &[],
                0,
            );
            b.reduce(
                RankId(r as u32),
                Loc::new(recvs[r], 0),
                Loc::new(tmp, 0),
                bytes,
                DType::F32,
                RedOp::Sum,
                &[c, t],
                1,
            );
        }
        let sch = b.finish().freeze();
        verify_allreduce_sum_f32(&sch, &sends, &recvs, elems, Mode::Single).unwrap();
        verify_allreduce_sum_f32(&sch, &sends, &recvs, elems, Mode::Threaded(3)).unwrap();
    }
}
