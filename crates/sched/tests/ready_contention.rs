//! Stress test for `AtomicReadySet` under real thread contention: across
//! many rounds on random DAGs, every op must be released exactly once —
//! none lost (the drain would stall), none double-released (an op would
//! execute twice).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use mha_sched::{AtomicReadySet, FrozenSchedule, ProcGrid, RankId, ScheduleBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random layered DAG: each op depends on a random subset of the
/// previous layer (plus occasional long-range edges), so completion order
/// under contention is highly interleaved.
fn random_dag(rng: &mut StdRng, n_ops: usize) -> FrozenSchedule {
    let mut b = ScheduleBuilder::new(ProcGrid::single_node(4), "contention");
    let mut ids = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        let mut deps = Vec::new();
        if i > 0 {
            let n_deps = rng.gen_range(0..=3usize.min(i));
            for _ in 0..n_deps {
                deps.push(ids[rng.gen_range(i.saturating_sub(8)..i)]);
            }
            deps.sort_unstable();
            deps.dedup();
        }
        ids.push(b.compute(RankId((i % 4) as u32), 1, &deps, 0));
    }
    b.finish().freeze()
}

/// Drains `fs` with `workers` threads pulling from a shared worklist,
/// counting how many times each op is released. Returns the counters.
fn drain(fs: &FrozenSchedule, workers: usize) -> Vec<u32> {
    let n = fs.n_ops();
    let released: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let worklist: Mutex<Vec<u32>> = Mutex::new(fs.roots().to_vec());
    for &r in fs.roots() {
        released[r as usize].fetch_add(1, Ordering::Relaxed);
    }
    let ready = AtomicReadySet::new(fs);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(op) = worklist.lock().unwrap().pop() else {
                    // Either done, or another worker is about to release
                    // more ops; spin until the total accounts for all ops.
                    let done: u32 = released.iter().map(|c| c.load(Ordering::Acquire)).sum();
                    if done as usize >= n {
                        return;
                    }
                    std::hint::spin_loop();
                    continue;
                };
                ready.complete(fs, op, |s| {
                    released[s as usize].fetch_add(1, Ordering::AcqRel);
                    worklist.lock().unwrap().push(s);
                });
            });
        }
    });
    released.into_iter().map(|c| c.into_inner()).collect()
}

#[test]
fn every_op_released_exactly_once_under_contention() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..20 {
        let n_ops = rng.gen_range(20..200usize);
        let fs = random_dag(&mut rng, n_ops);
        let released = drain(&fs, 8);
        assert_eq!(released.len(), n_ops);
        for (op, &count) in released.iter().enumerate() {
            assert_eq!(
                count, 1,
                "round {round}: op {op} released {count} times (n_ops={n_ops})"
            );
        }
    }
}

#[test]
fn wide_fanout_dag_is_fully_drained() {
    // One root fanning out to 256 leaves, all releasable at once — the
    // maximum-contention shape for the atomic counters.
    let mut b = ScheduleBuilder::new(ProcGrid::single_node(4), "fanout");
    let root = b.compute(RankId(0), 1, &[], 0);
    let mids: Vec<_> = (0..256u32)
        .map(|i| b.compute(RankId(i % 4), 1, &[root], 1))
        .collect();
    b.compute(RankId(0), 1, &mids, 2);
    let fs = b.finish().freeze();
    for _ in 0..10 {
        let released = drain(&fs, 8);
        assert!(released.iter().all(|&c| c == 1));
        let total: u32 = released.iter().sum();
        assert_eq!(total as usize, fs.n_ops());
    }
}
