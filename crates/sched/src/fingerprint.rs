//! Stable structural fingerprints for cache keys.
//!
//! The campaign runner (in `mha-bench`) memoizes built-and-frozen schedules
//! across sweep points, keyed by the *build-relevant* configuration. Rust's
//! `DefaultHasher` is explicitly unstable across releases and (with
//! `RandomState`) across processes, so cache keys and persisted digests use
//! this module instead: a fixed FNV-1a 64-bit construction whose output for
//! a given byte sequence never changes.
//!
//! Two layers:
//!
//! * [`Fingerprinter`] — an order-sensitive accumulator with typed `push_*`
//!   methods (each value is framed by a type tag so `push_u32(1); push_u32(2)`
//!   and `push_u64(…)` of the concatenated bits cannot collide by framing);
//! * [`FrozenSchedule::fingerprint`] — a digest of everything execution
//!   observes about a schedule: grid, buffer table, op table (kinds, ranks,
//!   locations, lengths, channels), dependency edges and step tags. Two
//!   schedules with equal fingerprints simulate identically on the same
//!   cluster spec (up to the 64-bit collision bound).

use crate::buffer::BufKind;
use crate::frozen::FrozenSchedule;
use crate::op::{Channel, OpKind};

/// A 64-bit stable digest (see module docs for guarantees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Order-sensitive stable hasher over typed values.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn tagged(&mut self, tag: u8, bytes: &[u8]) {
        self.byte(tag);
        self.raw(bytes);
    }

    /// Mixes in one byte.
    pub fn push_u8(&mut self, v: u8) -> &mut Self {
        self.tagged(1, &[v]);
        self
    }

    /// Mixes in a `u32`.
    pub fn push_u32(&mut self, v: u32) -> &mut Self {
        self.tagged(2, &v.to_le_bytes());
        self
    }

    /// Mixes in a `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.tagged(3, &v.to_le_bytes());
        self
    }

    /// Mixes in a `usize` (widened to 64 bits so 32/64-bit hosts agree).
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.tagged(4, &(v as u64).to_le_bytes());
        self
    }

    /// Mixes in an `f64` by exact bit pattern (`-0.0` and `0.0` differ).
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.tagged(5, &v.to_bits().to_le_bytes());
        self
    }

    /// Mixes in a boolean.
    pub fn push_bool(&mut self, v: bool) -> &mut Self {
        self.tagged(6, &[u8::from(v)]);
        self
    }

    /// Mixes in a string, length-framed so `("ab","c")` ≠ `("a","bc")`.
    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.byte(7);
        self.raw(&(v.len() as u64).to_le_bytes());
        self.raw(v.as_bytes());
        self
    }

    /// The digest of everything pushed so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

fn push_loc(fp: &mut Fingerprinter, loc: &crate::buffer::Loc) {
    fp.push_u32(loc.buf.0).push_usize(loc.offset);
}

impl FrozenSchedule {
    /// A stable structural digest of the schedule: grid, buffers, op kinds
    /// with all operands, dependency edges and step tags. Everything the
    /// simulator and executors can observe contributes; the human-readable
    /// schedule name does not (two identically-built schedules with
    /// different names are interchangeable for execution).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.push_u32(self.grid().nodes()).push_u32(self.grid().ppn());

        fp.push_usize(self.buffers().len());
        for b in self.buffers() {
            match b.kind {
                BufKind::Private(r) => fp.push_u8(0).push_u32(r.0),
                BufKind::NodeShared(n) => fp.push_u8(1).push_u32(n.0),
            };
            fp.push_usize(b.len);
            match b.home_socket {
                None => fp.push_u8(0),
                Some(s) => fp.push_u8(1).push_u32(s),
            };
        }

        fp.push_usize(self.ops().len());
        for op in self.ops() {
            match &op.kind {
                OpKind::Transfer {
                    src_rank,
                    dst_rank,
                    src,
                    dst,
                    len,
                    channel,
                } => {
                    fp.push_u8(10).push_u32(src_rank.0).push_u32(dst_rank.0);
                    push_loc(&mut fp, src);
                    push_loc(&mut fp, dst);
                    fp.push_usize(*len);
                    match channel {
                        Channel::Cma => fp.push_u8(0),
                        Channel::Rail(h) => fp.push_u8(1).push_u8(*h),
                        Channel::AllRails => fp.push_u8(2),
                    };
                }
                OpKind::Copy {
                    actor,
                    src,
                    dst,
                    len,
                } => {
                    fp.push_u8(11).push_u32(actor.0);
                    push_loc(&mut fp, src);
                    push_loc(&mut fp, dst);
                    fp.push_usize(*len);
                }
                OpKind::Reduce {
                    actor,
                    acc,
                    operand,
                    len,
                    dtype,
                    op: red,
                } => {
                    fp.push_u8(12).push_u32(actor.0);
                    push_loc(&mut fp, acc);
                    push_loc(&mut fp, operand);
                    fp.push_usize(*len)
                        .push_u8(dtype.size() as u8)
                        .push_u8(*red as u8);
                }
                OpKind::Compute { actor, flops } => {
                    fp.push_u8(13).push_u32(actor.0).push_u64(*flops);
                }
            }
            fp.push_u32(op.step);
            fp.push_usize(op.deps.len());
            for d in &op.deps {
                fp.push_u32(d.0);
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Loc;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::RankId;

    fn sched(len: usize, channel: Channel) -> FrozenSchedule {
        let mut b = ScheduleBuilder::new(ProcGrid::new(2, 1), "s");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            channel,
            &[],
            0,
        );
        b.finish().freeze()
    }

    #[test]
    fn fingerprint_is_stable_across_rebuilds() {
        assert_eq!(
            sched(1024, Channel::AllRails).fingerprint(),
            sched(1024, Channel::AllRails).fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_len_and_channel() {
        let base = sched(1024, Channel::AllRails).fingerprint();
        assert_ne!(base, sched(2048, Channel::AllRails).fingerprint());
        assert_ne!(base, sched(1024, Channel::Rail(0)).fingerprint());
        assert_ne!(base, sched(1024, Channel::Rail(1)).fingerprint());
        assert_ne!(base, sched(1024, Channel::Cma).fingerprint());
    }

    #[test]
    fn fingerprint_ignores_the_schedule_name() {
        let mut a = ScheduleBuilder::new(ProcGrid::single_node(1), "alpha");
        a.compute(RankId(0), 7, &[], 0);
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "beta");
        b.compute(RankId(0), 7, &[], 0);
        assert_eq!(
            a.finish().freeze().fingerprint(),
            b.finish().freeze().fingerprint()
        );
    }

    #[test]
    fn typed_framing_prevents_concatenation_collisions() {
        let mut a = Fingerprinter::new();
        a.push_str("ab").push_str("c");
        let mut b = Fingerprinter::new();
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprinter::new();
        c.push_u32(1).push_u32(2);
        let mut d = Fingerprinter::new();
        d.push_u64(1 | (2 << 32));
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn fingerprint_display_is_hex() {
        let s = format!("{}", Fingerprint(0xdead_beef));
        assert_eq!(s, "00000000deadbeef");
    }
}
