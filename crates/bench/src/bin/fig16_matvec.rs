//! Figure 16: matrix–vector multiplication kernel, GFLOP/s (higher is
//! better), strong scaling of 1024×32768 and weak scaling to 1024×131072.
//! Each (process count × contestant) cell is one campaign point (see
//! `mha_bench::campaign`).

use mha_apps::matvec::{run_matvec, MatvecConfig};
use mha_apps::report::Table;
use mha_apps::{paper_contestants, Contestant};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn sweep(title: &str, cfg_of: impl Fn(ProcGrid) -> MatvecConfig, name: &str, spec: &ClusterSpec) {
    let contestants = paper_contestants();
    let node_counts = [8u32, 16, 32];
    let mut points = Vec::new();
    for &nodes in &node_counts {
        let grid = ProcGrid::new(nodes, 32);
        let cfg = cfg_of(grid);
        for c in &contestants {
            let c = *c;
            let spec = spec.clone();
            points.push(CampaignPoint::custom(
                format!("{}/{}", grid.nranks(), c.name()),
                move |_seed| {
                    let r = run_matvec(cfg, c, &spec).map_err(|e| format!("{e:?}"))?;
                    Ok(vec![Row::new(c.name(), vec![r.gflops])])
                },
            ));
        }
    }
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        title,
        "processes",
        contestants.iter().map(Contestant::name).collect(),
    );
    for (ni, &nodes) in node_counts.iter().enumerate() {
        let grid = ProcGrid::new(nodes, 32);
        let cfg = cfg_of(grid);
        let mut row = Vec::new();
        for ci in 0..contestants.len() {
            row.push(report.value(ni * contestants.len() + ci));
        }
        t.push(
            format!("{} ({}x{})", grid.nranks(), cfg.rows, cfg.cols),
            row,
        );
    }
    mha_bench::emit(&t, name);
}

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    sweep(
        "Figure 16a: matvec strong scaling, GFLOP/s (1024 x 32768)",
        MatvecConfig::strong_scaling,
        "fig16_matvec_strong",
        &spec,
    );
    sweep(
        "Figure 16b: matvec weak scaling, GFLOP/s",
        MatvecConfig::weak_scaling,
        "fig16_matvec_weak",
        &spec,
    );
    // Summarize the collective the kernel is bound by: the per-iteration
    // result-vector Allgather on the 256-process strong-scaling point.
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 32);
    let msg = 32768 * 8 / grid.nranks() as usize;
    let built =
        mha_collectives::mha::build_mha_inter(grid, msg, Default::default(), &spec).unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig16_matvec");
}
