//! A single dispatchable enumeration of every Allgather in the crate —
//! what the benchmark harness sweeps over.

use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::ctx::{BuildError, Built};
use crate::mha::{self, MhaInterConfig, Offload};

/// Every Allgather algorithm the crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgo {
    /// Flat ring (Section 2.2).
    Ring,
    /// Flat recursive doubling (power-of-two ranks).
    RecursiveDoubling,
    /// Bruck's algorithm (any rank count).
    Bruck,
    /// Flat direct spread / dissemination.
    DirectSpread,
    /// Single-leader two-level with shm-resident RD exchange
    /// (Mamidala et al. \[19\]); power-of-two nodes.
    SingleLeader,
    /// Multi-leader two-level with sequential phases
    /// (Kandalla et al. \[14\]).
    MultiLeader {
        /// Leader groups per node (must divide ppn).
        groups: u32,
    },
    /// The paper's multi-HCA aware intra-node design (single node only).
    MhaIntra {
        /// Offload policy for the HCA transfers.
        offload: Offload,
    },
    /// The paper's hierarchical multi-HCA aware design.
    MhaInter(MhaInterConfig),
}

impl AllgatherAlgo {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            AllgatherAlgo::Ring => "ring".into(),
            AllgatherAlgo::RecursiveDoubling => "rd".into(),
            AllgatherAlgo::Bruck => "bruck".into(),
            AllgatherAlgo::DirectSpread => "direct-spread".into(),
            AllgatherAlgo::SingleLeader => "single-leader".into(),
            AllgatherAlgo::MultiLeader { groups } => format!("multi-leader(g={groups})"),
            AllgatherAlgo::MhaIntra { .. } => "mha-intra".into(),
            AllgatherAlgo::MhaInter(cfg) => match cfg.inter {
                mha::InterAlgo::Ring => "mha-inter-ring".into(),
                mha::InterAlgo::RecursiveDoubling => "mha-inter-rd".into(),
            },
        }
    }

    /// Builds the schedule for `grid` and per-rank contribution `msg` —
    /// a thin wrapper over the unified [`crate::build`] dispatcher via
    /// `AlgoConfig::from(*self)`.
    pub fn build(
        &self,
        grid: ProcGrid,
        msg: usize,
        spec: &ClusterSpec,
    ) -> Result<Built, BuildError> {
        crate::config::build(&crate::config::AlgoConfig::from(*self), grid, msg, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn dispatch_builds_every_algorithm() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        let algos = [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::DirectSpread,
            AllgatherAlgo::SingleLeader,
            AllgatherAlgo::MultiLeader { groups: 2 },
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ];
        for algo in algos {
            let built = algo.build(grid, 32, &spec).unwrap();
            assert_allgather_correct(&built);
            assert!(!algo.name().is_empty());
        }
        // MhaIntra needs a single-node grid.
        let built = AllgatherAlgo::MhaIntra {
            offload: Offload::Auto,
        }
        .build(ProcGrid::single_node(4), 32, &spec)
        .unwrap();
        assert_allgather_correct(&built);
    }

    #[test]
    fn zero_length_message_builds_a_valid_empty_schedule_everywhere() {
        // msg = 0 used to panic (or emit zero-length transfers that fail
        // validation) in several builders; every algorithm must now produce
        // a valid, executable no-op schedule.
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        let algos = [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::DirectSpread,
            AllgatherAlgo::SingleLeader,
            AllgatherAlgo::MultiLeader { groups: 2 },
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ];
        for algo in algos {
            let built = algo.build(grid, 0, &spec).unwrap();
            assert_allgather_correct(&built);
            assert!(
                built
                    .sched
                    .ops()
                    .iter()
                    .all(|op| matches!(op.kind, mha_sched::OpKind::Compute { flops: 0, .. })),
                "{}: msg=0 should emit only zero-flop markers",
                algo.name()
            );
        }
        let built = AllgatherAlgo::MhaIntra {
            offload: Offload::Auto,
        }
        .build(ProcGrid::single_node(4), 0, &spec)
        .unwrap();
        assert_allgather_correct(&built);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::DirectSpread,
            AllgatherAlgo::SingleLeader,
            AllgatherAlgo::MultiLeader { groups: 2 },
            AllgatherAlgo::MhaIntra {
                offload: Offload::Auto,
            },
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
