//! Regression pins: a handful of exact simulated numbers from the
//! committed calibration (`ClusterSpec::thor()`). The simulator is
//! deterministic, so these hold to float precision; if a model change
//! moves them, EXPERIMENTS.md must be regenerated and re-audited.

use mha::collectives::mha::{build_mha_inter, MhaInterConfig};
use mha::collectives::AllgatherAlgo;
use mha::sched::ProcGrid;
use mha::simnet::{pt2pt_bandwidth_mbps, ClusterSpec, Placement, Simulator};

fn close(actual: f64, pinned: f64) {
    assert!(
        (actual - pinned).abs() <= 1e-6 * pinned.abs(),
        "regression: {actual} vs pinned {pinned}"
    );
}

#[test]
fn pinned_pt2pt_bandwidths() {
    let two = Simulator::new(ClusterSpec::thor()).unwrap();
    let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let m = 4 << 20;
    close(
        pt2pt_bandwidth_mbps(&two, Placement::IntraNode, m, 64).unwrap(),
        12999.503850091312,
    );
    close(
        pt2pt_bandwidth_mbps(&one, Placement::InterNode, m, 64).unwrap(),
        11998.067713078756,
    );
    close(
        pt2pt_bandwidth_mbps(&two, Placement::InterNode, m, 64).unwrap(),
        23992.279260593234,
    );
}

#[test]
fn pinned_collective_latencies() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();

    // Figure 2's configuration: flat ring, 2 nodes x 2 PPN, 1 MB.
    let ring = AllgatherAlgo::Ring
        .build(ProcGrid::new(2, 2), 1 << 20, &spec)
        .unwrap();
    close(sim.run(&ring.sched).unwrap().latency_us(), 369.334965034965);

    // The quickstart configuration: MHA-inter ring, 4 nodes x 8 PPN, 64 KB.
    let mha = build_mha_inter(
        ProcGrid::new(4, 8),
        64 * 1024,
        MhaInterConfig::default(),
        &spec,
    )
    .unwrap();
    close(sim.run(&mha.sched).unwrap().latency_us(), 521.4648937728938);
}

#[test]
fn pinned_model_calibration() {
    let spec = ClusterSpec::thor();
    let p = mha::model::calibrate(&spec).unwrap();
    close(p.bw_c, spec.cma_bw);
    close(p.bw_h, spec.rail_bw);
    close(p.bw_l, spec.copy_bw);
    // Eq. 1 decisions are part of the published figures.
    assert_eq!(mha::model::optimal_offload(&p, 4, 4 << 20, false), 1);
    assert_eq!(mha::model::optimal_offload(&p, 8, 1 << 20, false), 1);
}
