//! Strong- and weak-scaling of the distributed matrix–vector kernel
//! (paper Section 5.5 / Figure 16), including a real-data numerical check
//! of the distributed algorithm.
//!
//! ```sh
//! cargo run --release --example matvec_scaling
//! ```

use mha::apps::matvec::{run_matvec, verify_matvec, MatvecConfig};
use mha::apps::{paper_contestants, Contestant};
use mha::sched::ProcGrid;
use mha::simnet::ClusterSpec;

fn main() {
    let spec = ClusterSpec::thor();

    // Numerical sanity first: the distributed algorithm equals a serial
    // GEMV when run on real bytes.
    let small = MatvecConfig {
        rows: 64,
        cols: 80,
        grid: ProcGrid::new(2, 4),
    };
    let built = mha::collectives::AllgatherAlgo::MhaInter(Default::default())
        .build(small.grid, small.seg_bytes(), &spec)
        .unwrap();
    let err = verify_matvec(small, &built).unwrap();
    println!("distributed matvec max |error| vs serial reference: {err:.2e}\n");

    println!("strong scaling, A = 1024 x 32768 (GFLOP/s, higher is better):");
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "procs", "HPC-X", "MVAPICH2-X", "MHA"
    );
    for nodes in [2u32, 4, 8] {
        let grid = ProcGrid::new(nodes, 32);
        let cfg = MatvecConfig::strong_scaling(grid);
        let mut vals = Vec::new();
        for c in paper_contestants() {
            vals.push(run_matvec(cfg, c, &spec).unwrap().gflops);
        }
        println!(
            "{:>8} {:>10.2} {:>12.2} {:>8.2}",
            grid.nranks(),
            vals[0],
            vals[1],
            vals[2]
        );
    }

    println!("\ncommunication/compute split for MHA at 256 procs:");
    let cfg = MatvecConfig::strong_scaling(ProcGrid::new(8, 32));
    let r = run_matvec(cfg, Contestant::MhaTuned, &spec).unwrap();
    println!(
        "  comm {:.1} us, compute {:.1} us -> {:.2} GFLOP/s",
        r.comm_us, r.compute_us, r.gflops
    );
}
