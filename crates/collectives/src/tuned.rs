//! The versioned tuning table: offline search results served by a pure
//! hash probe.
//!
//! `mha-tune`'s offline search (successive halving over the
//! [`crate::AlgoConfig`] design space) emits a [`TunedTable`] mapping
//! `(nodes, ppn, msg_bucket, rails_up)` → the winning config, serialized
//! to `results/tuned_thor.mtab`. Serving is Open MPI's tuned-module
//! discipline: [`TunedTable::load`] once, then every [`TunedTable::lookup`]
//! is one `HashMap` probe — no schedule build, no simulation, no search on
//! the serving path. The returned [`AlgoConfig`] goes straight into the
//! one [`crate::build`] dispatch call.
//!
//! ## The `.mtab` text format (version 1)
//!
//! ```text
//! mha-tune-table v1
//! spec <16-hex ClusterSpec digest>
//! entries <N>
//! <nodes> <ppn> <msg_bucket> <rails_up> family=… inter=… overlap=… offload=… chunk=… stripe=… down=…
//! …                                  (N lines, sorted by key)
//! digest <16-hex table digest>
//! ```
//!
//! Versioning rules: the `v1` header names the *format*; readers reject
//! any other version ([`TableError::UnsupportedVersion`]) rather than
//! guess. The trailing digest is FNV-1a over the version, the spec
//! digest, and every sorted `(key, config-digest)` pair — any corruption
//! or hand-edit is a load-time [`TableError::DigestMismatch`], and the
//! digest doubles as the table's identity in logs and CI. Entries sort by
//! key so a table's text form is canonical: equal tables are byte-equal
//! files.
//!
//! Off-grid queries never fail: lookup falls back to the
//! nearest-neighbor entry in log-space (nodes and ppn compared by
//! magnitude, message by bucket, a rail-state mismatch priced above any
//! size distance) and coerces the found config with
//! [`AlgoConfig::coerce_for`] so the result is always buildable on the
//! queried grid — an empty table degrades to the paper's default design.

use std::collections::HashMap;
use std::path::Path;

use mha_sched::{Fingerprinter, ProcGrid};

use crate::config::AlgoConfig;

/// The `.mtab` format version this crate reads and writes.
pub const TABLE_FORMAT_VERSION: u32 = 1;

/// One tuning-table key: the serving-time coordinates of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableKey {
    /// Node count.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Power-of-two message bucket: [`msg_bucket`] of the per-rank
    /// contribution.
    pub msg_bucket: u8,
    /// Rails currently up (fault-aware serving: a degraded fabric tunes
    /// differently than a healthy one).
    pub rails_up: u8,
}

impl TableKey {
    /// The key a `(grid, msg, rails_up)` query probes.
    pub fn for_query(grid: ProcGrid, msg: usize, rails_up: u8) -> Self {
        TableKey {
            nodes: grid.nodes(),
            ppn: grid.ppn(),
            msg_bucket: msg_bucket(msg),
            rails_up,
        }
    }
}

/// The power-of-two bucket a message size falls in: `⌊log₂ msg⌋`, with 0
/// and 1 byte sharing bucket 0. Tuning decisions are stable within a
/// bucket (the Figure 8 crossovers are octave-scale), so the table stores
/// one entry per bucket instead of one per byte count.
pub fn msg_bucket(msg: usize) -> u8 {
    msg.max(1).ilog2() as u8
}

/// Errors loading or parsing a tuning table.
#[derive(Debug)]
pub enum TableError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The text does not parse as a `.mtab` table.
    Malformed(String),
    /// The table was written by a different format version.
    UnsupportedVersion(u32),
    /// The trailing digest does not match the parsed content.
    DigestMismatch {
        /// Digest recorded in the file.
        stored: u64,
        /// Digest of what was actually parsed.
        computed: u64,
    },
    /// An entry's config failed to parse.
    Config(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Io(e) => write!(f, "io error: {e}"),
            TableError::Malformed(m) => write!(f, "malformed table: {m}"),
            TableError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "table format v{v} unsupported (this build reads v{TABLE_FORMAT_VERSION})"
                )
            }
            TableError::DigestMismatch { stored, computed } => write!(
                f,
                "table digest mismatch: file says {stored:016x}, content hashes to {computed:016x}"
            ),
            TableError::Config(m) => write!(f, "bad entry config: {m}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

/// A loaded tuning table: `(nodes, ppn, msg_bucket, rails_up)` →
/// [`AlgoConfig`], plus provenance (format version, the digest of the
/// [`mha_simnet::ClusterSpec`] it was tuned against).
#[derive(Debug, Clone, PartialEq)]
pub struct TunedTable {
    /// Format version this table was read from / will be written as.
    pub version: u32,
    /// [`mha_simnet::ClusterSpec::digest`] of the tuned-against cluster.
    /// Serving against a different spec is legal (the configs still
    /// build) but the caller can compare digests to detect it.
    pub spec_digest: u64,
    entries: HashMap<TableKey, AlgoConfig>,
}

impl TunedTable {
    /// An empty table for the given cluster-spec digest.
    pub fn new(spec_digest: u64) -> Self {
        TunedTable {
            version: TABLE_FORMAT_VERSION,
            spec_digest,
            entries: HashMap::new(),
        }
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, key: TableKey, cfg: AlgoConfig) {
        self.entries.insert(key, cfg);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in canonical (key-sorted) order.
    pub fn sorted_entries(&self) -> Vec<(TableKey, &AlgoConfig)> {
        let mut v: Vec<(TableKey, &AlgoConfig)> =
            self.entries.iter().map(|(k, c)| (*k, c)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// The exact entry for a key, if present — the pure-probe serving
    /// path ([`TunedTable::lookup`] adds the off-grid fallback on top).
    pub fn get(&self, key: &TableKey) -> Option<&AlgoConfig> {
        self.entries.get(key)
    }

    /// The tuned config for `(grid, msg, rails_up)`.
    ///
    /// On-grid queries are one `HashMap` probe. Off-grid queries fall
    /// back to the nearest stored key (log-space distance over nodes, ppn
    /// and the message bucket; a `rails_up` mismatch outweighs any size
    /// distance; ties break toward the smallest key so the fallback is
    /// deterministic), and the result is coerced with
    /// [`AlgoConfig::coerce_for`] so it is always valid for the queried
    /// grid. An empty table serves the coerced default design. Never
    /// panics, never builds a schedule.
    pub fn lookup(&self, grid: ProcGrid, msg: usize, rails_up: u8) -> AlgoConfig {
        let key = TableKey::for_query(grid, msg, rails_up);
        let found = match self.entries.get(&key) {
            Some(cfg) => cfg.clone(),
            None => match self.nearest(&key) {
                Some(cfg) => cfg.clone(),
                None => AlgoConfig::default(),
            },
        };
        found.coerce_for(grid)
    }

    /// Nearest stored entry to `key`, or `None` for an empty table.
    fn nearest(&self, key: &TableKey) -> Option<&AlgoConfig> {
        let log2 = |v: u32| v.max(1).ilog2() as i64;
        let dist = |k: &TableKey| -> i64 {
            let dn = (log2(k.nodes) - log2(key.nodes)).abs();
            let dp = (log2(k.ppn) - log2(key.ppn)).abs();
            let db = (i64::from(k.msg_bucket) - i64::from(key.msg_bucket)).abs();
            let dr = i64::from(k.rails_up != key.rails_up);
            8 * dn + 4 * dp + db + 16 * dr
        };
        self.entries
            .iter()
            .min_by_key(|(k, _)| (dist(k), **k))
            .map(|(_, cfg)| cfg)
    }

    /// FNV-1a digest of the table's identity: version, spec digest, and
    /// every sorted `(key, config-digest)` pair. This is the value the
    /// trailing `digest` line stores and load verifies.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.push_u32(self.version).push_u64(self.spec_digest);
        let sorted = self.sorted_entries();
        fp.push_usize(sorted.len());
        for (k, cfg) in sorted {
            fp.push_u32(k.nodes)
                .push_u32(k.ppn)
                .push_u8(k.msg_bucket)
                .push_u8(k.rails_up)
                .push_u64(cfg.digest());
        }
        fp.finish().0
    }

    /// Serializes to the canonical `.mtab` text form (see the module
    /// docs). Equal tables produce byte-equal text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "mha-tune-table v{}\nspec {:016x}\nentries {}\n",
            self.version,
            self.spec_digest,
            self.entries.len()
        );
        for (k, cfg) in self.sorted_entries() {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                k.nodes,
                k.ppn,
                k.msg_bucket,
                k.rails_up,
                cfg.to_kv()
            ));
        }
        out.push_str(&format!("digest {:016x}\n", self.digest()));
        out
    }

    /// Parses the [`TunedTable::to_text`] form, verifying the version and
    /// the trailing digest.
    ///
    /// # Errors
    ///
    /// [`TableError::Malformed`] / [`TableError::UnsupportedVersion`] /
    /// [`TableError::DigestMismatch`] / [`TableError::Config`].
    pub fn parse(text: &str) -> Result<Self, TableError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| TableError::Malformed("empty file".into()))?;
        let version: u32 = header
            .strip_prefix("mha-tune-table v")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| TableError::Malformed(format!("bad header {header:?}")))?;
        if version != TABLE_FORMAT_VERSION {
            return Err(TableError::UnsupportedVersion(version));
        }
        let spec_line = lines
            .next()
            .ok_or_else(|| TableError::Malformed("missing spec line".into()))?;
        let spec_digest = spec_line
            .strip_prefix("spec ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| TableError::Malformed(format!("bad spec line {spec_line:?}")))?;
        let count_line = lines
            .next()
            .ok_or_else(|| TableError::Malformed("missing entries line".into()))?;
        let count: usize = count_line
            .strip_prefix("entries ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| TableError::Malformed(format!("bad entries line {count_line:?}")))?;
        let mut table = TunedTable {
            version,
            spec_digest,
            entries: HashMap::with_capacity(count),
        };
        for i in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| TableError::Malformed(format!("missing entry {i}")))?;
            let mut fields = line.splitn(5, ' ');
            let mut num = |what: &str| -> Result<u32, TableError> {
                fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| TableError::Malformed(format!("entry {i}: bad {what}")))
            };
            let nodes = num("nodes")?;
            let ppn = num("ppn")?;
            let bucket = num("msg_bucket")?;
            let rails = num("rails_up")?;
            let (Ok(msg_bucket), Ok(rails_up)) = (u8::try_from(bucket), u8::try_from(rails)) else {
                return Err(TableError::Malformed(format!(
                    "entry {i}: bucket/rails out of u8 range"
                )));
            };
            let kv = fields
                .next()
                .ok_or_else(|| TableError::Malformed(format!("entry {i}: missing config")))?;
            let cfg = AlgoConfig::parse_kv(kv)
                .map_err(|e| TableError::Config(format!("entry {i}: {e}")))?;
            let key = TableKey {
                nodes,
                ppn,
                msg_bucket,
                rails_up,
            };
            if table.entries.insert(key, cfg).is_some() {
                return Err(TableError::Malformed(format!("duplicate key {key:?}")));
            }
        }
        let digest_line = lines
            .next()
            .ok_or_else(|| TableError::Malformed("missing digest line".into()))?;
        let stored = digest_line
            .strip_prefix("digest ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| TableError::Malformed(format!("bad digest line {digest_line:?}")))?;
        if let Some(extra) = lines.next() {
            if !extra.trim().is_empty() {
                return Err(TableError::Malformed(format!(
                    "trailing content after digest: {extra:?}"
                )));
            }
        }
        let computed = table.digest();
        if stored != computed {
            return Err(TableError::DigestMismatch { stored, computed });
        }
        Ok(table)
    }

    /// Writes the canonical text form to `path`.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TableError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Reads and parses a table from `path`.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] plus everything [`TunedTable::parse`] reports.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TableError> {
        TunedTable::parse(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Family;
    use crate::mha::{InterAlgo, Offload};
    use mha_simnet::ClusterSpec;

    fn sample_table() -> TunedTable {
        let spec = ClusterSpec::thor();
        let mut t = TunedTable::new(spec.digest());
        t.insert(
            TableKey {
                nodes: 8,
                ppn: 32,
                msg_bucket: 8,
                rails_up: 2,
            },
            AlgoConfig {
                inter: InterAlgo::RecursiveDoubling,
                ..AlgoConfig::default()
            },
        );
        t.insert(
            TableKey {
                nodes: 8,
                ppn: 32,
                msg_bucket: 18,
                rails_up: 2,
            },
            AlgoConfig::default(),
        );
        t.insert(
            TableKey {
                nodes: 16,
                ppn: 32,
                msg_bucket: 12,
                rails_up: 1,
            },
            AlgoConfig {
                chunk: Some(8),
                down_rails: vec![0],
                ..AlgoConfig::default()
            },
        );
        t
    }

    #[test]
    fn text_round_trips_bit_exact() {
        let t = sample_table();
        let text = t.to_text();
        let back = TunedTable::parse(&text).unwrap();
        assert_eq!(t, back);
        assert_eq!(t.digest(), back.digest());
        assert_eq!(text, back.to_text(), "canonical form is a fixed point");
    }

    #[test]
    fn exact_hits_serve_the_stored_config() {
        let t = sample_table();
        let cfg = t.lookup(ProcGrid::new(8, 32), 300, 2); // bucket 8
        assert_eq!(cfg.inter, InterAlgo::RecursiveDoubling);
        let cfg = t.lookup(ProcGrid::new(8, 32), 256 * 1024, 2); // bucket 18
        assert_eq!(cfg.inter, InterAlgo::Ring);
    }

    #[test]
    fn off_grid_queries_fall_back_to_nearest_and_stay_valid() {
        let t = sample_table();
        // 7 nodes is off-grid and non-power-of-two: whatever entry wins,
        // the served config must be buildable there.
        let grid = ProcGrid::new(7, 16);
        let cfg = t.lookup(grid, 100, 2);
        assert!(cfg.valid_for(grid), "{cfg:?}");
        // A rails_up=1 query prefers the rails_up=1 entry over closer
        // same-size healthy entries.
        let cfg = t.lookup(ProcGrid::new(16, 32), 4096, 1);
        assert_eq!(cfg.chunk, Some(8));
    }

    #[test]
    fn empty_table_serves_the_coerced_default() {
        let t = TunedTable::new(0);
        let grid = ProcGrid::new(3, 5);
        let cfg = t.lookup(grid, 1024, 2);
        assert_eq!(cfg.family, Family::MhaInter);
        assert!(cfg.valid_for(grid));
        // Single node coerces off MhaInter's multi-node default cleanly.
        let single = ProcGrid::single_node(6);
        assert!(t.lookup(single, 64, 2).valid_for(single));
    }

    #[test]
    fn msg_bucket_is_log2_with_zero_floor() {
        assert_eq!(msg_bucket(0), 0);
        assert_eq!(msg_bucket(1), 0);
        assert_eq!(msg_bucket(2), 1);
        assert_eq!(msg_bucket(255), 7);
        assert_eq!(msg_bucket(256), 8);
        assert_eq!(msg_bucket(1 << 20), 20);
    }

    #[test]
    fn parse_rejects_wrong_version_and_corruption() {
        let t = sample_table();
        let text = t.to_text();
        // Wrong version.
        let v2 = text.replace("mha-tune-table v1", "mha-tune-table v2");
        assert!(matches!(
            TunedTable::parse(&v2),
            Err(TableError::UnsupportedVersion(2))
        ));
        // Flipping an entry without updating the digest is caught.
        let tampered = text.replace("inter=rd", "inter=ring");
        assert!(matches!(
            TunedTable::parse(&tampered),
            Err(TableError::DigestMismatch { .. })
        ));
        // Truncation is caught.
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            TunedTable::parse(&truncated),
            Err(TableError::Malformed(_))
        ));
        assert!(matches!(
            TunedTable::parse(""),
            Err(TableError::Malformed(_))
        ));
    }

    #[test]
    fn offload_fixed_entries_round_trip() {
        let mut t = TunedTable::new(1);
        t.insert(
            TableKey {
                nodes: 2,
                ppn: 4,
                msg_bucket: 5,
                rails_up: 2,
            },
            AlgoConfig {
                offload: Offload::Fixed(3),
                stripe_threshold: Some(4096),
                ..AlgoConfig::default()
            },
        );
        let back = TunedTable::parse(&t.to_text()).unwrap();
        assert_eq!(t, back);
    }
}
