//! # mha-exec — real-data executors for collective schedules
//!
//! While `mha-simnet` prices a schedule in virtual time, this crate *runs*
//! it: every buffer becomes a real `Vec<u8>`, transfers and copies move real
//! bytes, reductions do real arithmetic. Two interpreters share identical
//! semantics:
//!
//! * [`run_single`] — sequential reference execution;
//! * [`run_threaded`] — a dependency-driven worker pool that may execute any
//!   topological interleaving, which (together with
//!   `mha_sched::check_races`) demonstrates that the paper's overlapped
//!   chunk-counter pipeline is deterministic.
//!
//! [`verify_allgather`] / [`verify_allreduce_sum_f32`] wrap the executors
//! with MPI-semantics postcondition checks; every collective algorithm in
//! `mha-collectives` is tested through them.
//!
//! Execution is crash-tolerant: the [`journal`] module records per-op
//! completions as they retire ([`CompletionJournal`]), a seeded
//! [`KillPlan`] murders worker threads at deterministic points, and
//! [`resume_threaded`] / [`resume_single`] rebuild the readiness frontier
//! from the journal and finish only the unfinished suffix — byte-identical
//! to a run that never crashed.

#![warn(missing_docs)]

mod executor;
pub mod journal;
mod memory;
mod verify;

pub use executor::{
    resume_single, resume_threaded, run_single, run_single_journaled, run_single_killed,
    run_single_probed, run_threaded, run_threaded_journaled, run_threaded_killed,
    run_threaded_probed, ExecError,
};
pub use journal::{CompletionJournal, JournalError, JournalSink, KillPlan};
pub use memory::BufferStore;
pub use verify::{
    rank_pattern, rank_values_f32, verify_allgather, verify_allreduce_sum_f32, verify_alltoall,
    verify_bcast, Mode, VerifyError,
};
