//! Distributed Bayesian probabilistic matrix factorization (one of the
//! Allgather-bound applications from the paper's introduction): Gibbs
//! sampling throughput under each library's Allgather.
//!
//! ```sh
//! cargo run --release --example bpmf_sampling
//! ```

use mha::apps::bpmf::{run_bpmf_iteration, BpmfConfig};
use mha::apps::{paper_contestants, Contestant};
use mha::sched::ProcGrid;
use mha::simnet::ClusterSpec;

fn main() {
    let spec = ClusterSpec::thor();
    println!("BPMF on a MovieLens-20M-scale problem (27k items, k = 32):\n");
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>12}",
        "procs", "HPC-X", "MVAPICH2-X", "MHA", "comm share"
    );
    for nodes in [2u32, 4, 8, 16] {
        let grid = ProcGrid::new(nodes, 32);
        let cfg = BpmfConfig::movielens(grid);
        let mut vals = Vec::new();
        let mut frac = 0.0;
        for c in paper_contestants() {
            let r = run_bpmf_iteration(cfg, c, &spec).unwrap();
            if matches!(c, Contestant::MhaTuned) {
                frac = r.comm_fraction;
            }
            vals.push(r.samples_per_sec);
        }
        println!(
            "{:>8} {:>9.2}/s {:>11.2}/s {:>8.2}/s {:>11.1}%",
            grid.nranks(),
            vals[0],
            vals[1],
            vals[2],
            frac * 100.0
        );
    }
    println!(
        "\nStrong scaling shrinks per-rank compute while the factor Allgather\n\
         grows — the faster collective converts directly into samples/sec."
    );
}
