//! Fluent construction of schedules.
//!
//! The builder enforces the one structural invariant that makes everything
//! downstream simple: **dependencies always point backwards** (an op may only
//! depend on ops created before it), so creation order is a topological order
//! and the DAG is acyclic by construction.

use crate::buffer::{BufKind, BufferDecl, Loc};
use crate::grid::ProcGrid;
use crate::ids::{BufId, NodeId, OpId, RankId};
use crate::op::{Channel, DType, Op, OpKind, RedOp};
use crate::schedule::Schedule;

/// Builds a [`Schedule`] incrementally.
pub struct ScheduleBuilder {
    grid: ProcGrid,
    buffers: Vec<BufferDecl>,
    ops: Vec<Op>,
    name: String,
    release: Vec<f64>,
}

impl ScheduleBuilder {
    /// Starts a schedule for `grid`, labelled `name`.
    pub fn new(grid: ProcGrid, name: impl Into<String>) -> Self {
        ScheduleBuilder {
            grid,
            buffers: Vec::new(),
            ops: Vec::new(),
            name: name.into(),
            release: Vec::new(),
        }
    }

    /// Sets the release delay of `op`: it may not start before
    /// `ready + alpha + secs` of simulated time. The traffic layer models
    /// job arrival times and client think times with this; plain collective
    /// schedules never set it. Virtual-time only — the real executors
    /// run ops as soon as their dependencies complete.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not created yet or `secs` is negative or
    /// non-finite.
    pub fn set_release(&mut self, op: OpId, secs: f64) {
        assert!(op.index() < self.ops.len(), "release for unknown op {op}");
        assert!(
            secs.is_finite() && secs >= 0.0,
            "release delay must be finite and non-negative, got {secs}"
        );
        if secs == 0.0 && self.release.is_empty() {
            return; // stay on the release-free fast path
        }
        if self.release.is_empty() {
            self.release.resize(self.ops.len(), 0.0);
        }
        self.release[op.index()] = secs;
    }

    /// The grid being scheduled against.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Number of ops created so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops were created yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Declares a buffer private to `rank`.
    pub fn private_buf(&mut self, rank: RankId, len: usize, label: impl Into<String>) -> BufId {
        assert!(
            rank.0 < self.grid.nranks(),
            "buffer owner {rank} outside grid"
        );
        self.decl(BufKind::Private(rank), len, None, label)
    }

    /// Declares a node-shared (shm) buffer on `node` with interleaved
    /// (NUMA-agnostic) placement.
    pub fn shared_buf(&mut self, node: NodeId, len: usize, label: impl Into<String>) -> BufId {
        assert!(
            node.0 < self.grid.nodes(),
            "buffer node {node} outside grid"
        );
        self.decl(BufKind::NodeShared(node), len, None, label)
    }

    /// Declares a node-shared buffer whose pages live on `socket`'s memory
    /// (first-touch placement by a rank of that socket). On NUMA clusters,
    /// ranks of other sockets pay the cross-socket interconnect to copy
    /// into or out of it.
    pub fn shared_buf_homed(
        &mut self,
        node: NodeId,
        socket: u32,
        len: usize,
        label: impl Into<String>,
    ) -> BufId {
        assert!(
            node.0 < self.grid.nodes(),
            "buffer node {node} outside grid"
        );
        self.decl(BufKind::NodeShared(node), len, Some(socket), label)
    }

    fn decl(
        &mut self,
        kind: BufKind,
        len: usize,
        home_socket: Option<u32>,
        label: impl Into<String>,
    ) -> BufId {
        let id = BufId::from(self.buffers.len());
        self.buffers.push(BufferDecl {
            id,
            kind,
            len,
            home_socket,
            label: label.into(),
        });
        id
    }

    /// Adds an op with explicit dependencies, step tag and label.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to an op not yet created (this is what
    /// keeps the graph acyclic).
    pub fn push(
        &mut self,
        kind: OpKind,
        deps: &[OpId],
        step: u32,
        label: impl Into<String>,
    ) -> OpId {
        let id = OpId::from(self.ops.len());
        for &d in deps {
            assert!(
                d < id,
                "op {id} depends on {d}, which does not exist yet (forward deps are forbidden)"
            );
        }
        let mut dep_vec = deps.to_vec();
        dep_vec.sort_unstable();
        dep_vec.dedup();
        self.ops.push(Op {
            id,
            kind,
            deps: dep_vec,
            step,
            label: label.into(),
        });
        id
    }

    /// Convenience: a transfer op.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        src_rank: RankId,
        dst_rank: RankId,
        src: Loc,
        dst: Loc,
        len: usize,
        channel: Channel,
        deps: &[OpId],
        step: u32,
    ) -> OpId {
        let label = format!("{src_rank}->{dst_rank}");
        self.push(
            OpKind::Transfer {
                src_rank,
                dst_rank,
                src,
                dst,
                len,
                channel,
            },
            deps,
            step,
            label,
        )
    }

    /// Convenience: a CPU copy op.
    pub fn copy(
        &mut self,
        actor: RankId,
        src: Loc,
        dst: Loc,
        len: usize,
        deps: &[OpId],
        step: u32,
    ) -> OpId {
        self.push(
            OpKind::Copy {
                actor,
                src,
                dst,
                len,
            },
            deps,
            step,
            format!("copy@{actor}"),
        )
    }

    /// Convenience: an elementwise reduction op.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &mut self,
        actor: RankId,
        acc: Loc,
        operand: Loc,
        len: usize,
        dtype: DType,
        op: RedOp,
        deps: &[OpId],
        step: u32,
    ) -> OpId {
        assert!(
            len.is_multiple_of(dtype.size()),
            "reduce length {len} not a multiple of element size {}",
            dtype.size()
        );
        self.push(
            OpKind::Reduce {
                actor,
                acc,
                operand,
                len,
                dtype,
                op,
            },
            deps,
            step,
            format!("red@{actor}"),
        )
    }

    /// Convenience: a pure-compute op.
    pub fn compute(&mut self, actor: RankId, flops: u64, deps: &[OpId], step: u32) -> OpId {
        self.push(
            OpKind::Compute { actor, flops },
            deps,
            step,
            format!("comp@{actor}"),
        )
    }

    /// Finalizes the schedule.
    pub fn finish(mut self) -> Schedule {
        // `set_release` may have run before trailing ops were pushed.
        if !self.release.is_empty() {
            self.release.resize(self.ops.len(), 0.0);
        }
        Schedule::from_parts(self.grid, self.buffers, self.ops, self.name, self.release)
    }
}

/// Tracks the last op issued by each rank so algorithms can express MPI-style
/// program order ("this rank's next call starts after its previous one")
/// without threading `OpId`s by hand.
///
/// This mirrors how a blocking MPI algorithm serializes each rank's calls
/// while leaving cross-rank ordering to explicit dependencies.
pub struct RankCursors {
    last: Vec<Option<OpId>>,
}

impl RankCursors {
    /// Cursors for every rank of `grid`, all initially unset.
    pub fn new(grid: &ProcGrid) -> Self {
        RankCursors {
            last: vec![None; grid.nranks() as usize],
        }
    }

    /// The rank's previous op, if any, as a dependency list.
    pub fn deps_of(&self, rank: RankId) -> Vec<OpId> {
        self.last[rank.index()].into_iter().collect()
    }

    /// Dependencies = the rank's previous op plus `extra`.
    pub fn deps_with(&self, rank: RankId, extra: &[OpId]) -> Vec<OpId> {
        let mut v = self.deps_of(rank);
        v.extend_from_slice(extra);
        v
    }

    /// Records `op` as the rank's latest.
    pub fn advance(&mut self, rank: RankId, op: OpId) {
        self.last[rank.index()] = Some(op);
    }

    /// The rank's latest op.
    pub fn last(&self, rank: RankId) -> Option<OpId> {
        self.last[rank.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_are_deduped_and_sorted() {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(2), "t");
        let a = b.compute(RankId(0), 1, &[], 0);
        let c = b.compute(RankId(0), 1, &[], 0);
        let d = b.compute(RankId(1), 1, &[c, a, c], 1);
        let sch = b.finish();
        assert_eq!(sch.op(d).deps, vec![a, c]);
    }

    #[test]
    #[should_panic(expected = "forward deps are forbidden")]
    fn forward_dependency_rejected() {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        b.compute(RankId(0), 1, &[OpId(5)], 0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn buffer_for_foreign_rank_rejected() {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(2), "t");
        b.private_buf(RankId(7), 8, "x");
    }

    #[test]
    #[should_panic(expected = "not a multiple of element size")]
    fn misaligned_reduce_rejected() {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        let buf = b.private_buf(RankId(0), 16, "x");
        b.reduce(
            RankId(0),
            Loc::new(buf, 0),
            Loc::new(buf, 8),
            6,
            DType::F32,
            RedOp::Sum,
            &[],
            0,
        );
    }

    #[test]
    fn cursors_express_program_order() {
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "t");
        let mut cur = RankCursors::new(&grid);
        assert!(cur.deps_of(RankId(0)).is_empty());
        let a = b.compute(RankId(0), 1, &cur.deps_of(RankId(0)), 0);
        cur.advance(RankId(0), a);
        assert_eq!(cur.deps_of(RankId(0)), vec![a]);
        assert_eq!(cur.last(RankId(1)), None);
        let mixed = cur.deps_with(RankId(0), &[a]);
        assert_eq!(mixed, vec![a, a]); // push() dedups later
        let c = b.compute(RankId(0), 1, &mixed, 1);
        assert_eq!(b.finish().op(c).deps, vec![a]);
    }

    #[test]
    fn builder_len_tracks_ops() {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        assert!(b.is_empty());
        b.compute(RankId(0), 1, &[], 0);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
