//! # mha-conformance — correctness as a continuously-exercised subsystem
//!
//! The paper's claims (Eqs. 1–7, the Ring-vs-RD overlap argument) are only
//! as credible as the simulator they are reproduced on. This crate makes
//! that credibility checkable, in three layers:
//!
//! 1. **Invariant probes** ([`mha_sched::InvariantProbe`], wired into the
//!    discrete-event engine): per-op causality, per-resource capacity and
//!    per-flow byte conservation, audited on every simulated run when
//!    `MHA_CHECK` is set (every `fig*` binary's `--check` flag).
//! 2. **A three-way differential oracle** ([`oracle`]): random
//!    configurations across the flat / two-level / MHA collective families,
//!    each cross-checked between the threaded executor (real bytes, MPI
//!    semantics via [`mha_exec::verify_allgather`]), the simulator (invariant
//!    audit + dependency-respecting op ordering) and the α–β model
//!    (latency monotone in message size, within a configurable envelope of
//!    the [`mha_model`] prediction). [`coverage`] adds a static check that
//!    the schedule writes every receive-buffer byte exactly once.
//! 3. **A deterministic schedule fuzzer with shrinking** ([`fuzz`]):
//!    mutates known-good schedules (drop an edge, swap transfer endpoints,
//!    shrink a copy range, …) and asserts the checker stack —
//!    [`mha_sched::validate`], [`mha_sched::check_races`],
//!    [`mha_exec::verify_allgather`] — kills every seeded mutant, greedily
//!    shrinking killed mutants to minimal reproductions.
//!
//! Run everything with `cargo test -p mha-conformance`; knobs:
//! `MHA_CONFORMANCE_CASES`, `MHA_CONFORMANCE_SEED`, `MHA_MODEL_ENVELOPE`,
//! `MHA_FUZZ_BUDGET`.

#![warn(missing_docs)]

pub mod cases;
pub mod coverage;
pub mod crash;
pub mod faults;
pub mod fuzz;
pub mod oracle;
pub mod traffic;
pub mod tuned;
pub mod waterfill;

pub use cases::{sample_case, Case, Family};
pub use coverage::check_allgather_coverage;
pub use crash::{
    check_crash_case, check_modeled_crash, run_crash_oracle, sample_crash_case, CrashCase,
    CrashOracleConfig, CrashOracleReport,
};
pub use faults::{
    check_fault_case, run_fault_oracle, sample_fault_case, FaultCase, FaultOracleConfig,
    FaultOracleReport,
};
pub use fuzz::{judge, seeded_mutants, shrink, FuzzTarget, Mutation, SchedSpec, Verdict};
pub use oracle::{check_model_envelope, run_oracle, OracleConfig, OracleReport};
pub use traffic::{
    check_traffic_case, run_traffic_oracle, sample_traffic_case, TrafficCase, TrafficOracleConfig,
    TrafficOracleReport,
};
pub use tuned::{run_tuned_oracle, TunedOracleConfig, TunedOracleReport};
pub use waterfill::{run_waterfill_oracle, WaterfillOracleConfig, WaterfillOracleReport};
