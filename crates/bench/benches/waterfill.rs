//! Water-filling allocator micro-benchmark: cost of one max-min fair
//! recomputation as component size grows (the per-event hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_simnet::{FlowSpec, IncrementalFiller, ResourceId, WaterFiller};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_waterfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill");
    for flows in [8usize, 32, 128, 512] {
        let mut rng = StdRng::seed_from_u64(42);
        let nres = (flows / 2).max(4);
        let caps: Vec<f64> = (0..nres).map(|_| rng.gen_range(1.0..100.0)).collect();
        let sets: Vec<Vec<(ResourceId, f64)>> = (0..flows)
            .map(|_| {
                let k = rng.gen_range(1..=3usize);
                let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..nres as u32)).collect();
                v.sort_unstable();
                v.dedup();
                v.into_iter()
                    .map(|r| (ResourceId(r), rng.gen_range(1.0..2.0)))
                    .collect()
            })
            .collect();
        let flow_caps: Vec<f64> = (0..flows).map(|_| rng.gen_range(1.0..50.0)).collect();
        let specs: Vec<FlowSpec> = sets
            .iter()
            .zip(&flow_caps)
            .map(|(s, &cap)| FlowSpec { cap, resources: s })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &specs, |b, specs| {
            let mut filler = WaterFiller::new();
            let mut rates = Vec::new();
            b.iter(|| {
                filler.fill(specs, |r| caps[r.index()], &mut rates).unwrap();
                std::hint::black_box(rates.len())
            })
        });
    }
    g.finish();
}

/// The engine's actual usage pattern: one `WaterFiller` reused across
/// events, each recomputing a *different* connected component out of a
/// large resource universe. This guards the dense `local_of` index map —
/// the reset cost must stay proportional to the previous component, never
/// to the universe (1024 resources here, components of ≤ 24).
fn bench_component_recompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill_recompute");
    let universe = 1024u32;
    let mut rng = StdRng::seed_from_u64(7);
    let caps: Vec<f64> = (0..universe).map(|_| rng.gen_range(1.0..100.0)).collect();
    for comp in [4usize, 24] {
        // 64 precomputed components, each touching `comp` flows over a
        // random slice of the universe — successive fills share nothing.
        let sets: Vec<Vec<Vec<(ResourceId, f64)>>> = (0..64)
            .map(|_| {
                let base = rng.gen_range(0..universe - 64);
                (0..comp)
                    .map(|_| {
                        let k = rng.gen_range(1..=3usize);
                        let mut v: Vec<u32> =
                            (0..k).map(|_| base + rng.gen_range(0..64u32)).collect();
                        v.sort_unstable();
                        v.dedup();
                        v.into_iter()
                            .map(|r| (ResourceId(r), rng.gen_range(1.0..2.0)))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let flow_caps: Vec<f64> = (0..comp).map(|_| rng.gen_range(1.0..50.0)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(comp), &sets, |b, sets| {
            let mut filler = WaterFiller::new();
            let mut rates = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                let specs: Vec<FlowSpec> = sets[i % sets.len()]
                    .iter()
                    .zip(&flow_caps)
                    .map(|(s, &cap)| FlowSpec { cap, resources: s })
                    .collect();
                i += 1;
                filler
                    .fill(&specs, |r| caps[r.index()], &mut rates)
                    .unwrap();
                std::hint::black_box(rates.len())
            })
        });
    }
    g.finish();
}

/// Incremental replay vs from-scratch solving on the engine's dominant
/// workload: the *same* small component recomputed over and over (a ring
/// step re-creates one contention pattern thousands of times). Scratch
/// mode re-runs progressive filling; the memoized path is a hash probe
/// plus a copy.
fn bench_incremental_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill_incremental");
    let mut rng = StdRng::seed_from_u64(11);
    for comp in [4usize, 16] {
        let nres = comp.max(4);
        let caps: Vec<f64> = (0..nres).map(|_| rng.gen_range(1.0..100.0)).collect();
        let sets: Vec<Vec<(ResourceId, f64)>> = (0..comp)
            .map(|_| {
                let k = rng.gen_range(1..=3usize);
                let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..nres as u32)).collect();
                v.sort_unstable();
                v.dedup();
                v.into_iter()
                    .map(|r| (ResourceId(r), rng.gen_range(1.0..2.0)))
                    .collect()
            })
            .collect();
        let flow_caps: Vec<f64> = (0..comp).map(|_| rng.gen_range(1.0..50.0)).collect();
        let specs: Vec<FlowSpec> = sets
            .iter()
            .zip(&flow_caps)
            .map(|(s, &cap)| FlowSpec { cap, resources: s })
            .collect();
        for (mode, memo) in [("replay", true), ("scratch", false)] {
            g.bench_with_input(BenchmarkId::new(mode, comp), &specs, |b, specs| {
                let mut filler = IncrementalFiller::new();
                filler.reset(nres);
                let mut rates = Vec::new();
                b.iter(|| {
                    filler
                        .fill_view(
                            specs.len(),
                            |i| specs[i],
                            |r| caps[r.index()],
                            &mut rates,
                            memo,
                        )
                        .unwrap();
                    std::hint::black_box(rates.len())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_waterfill,
    bench_component_recompute,
    bench_incremental_replay
);
criterion_main!(benches);
