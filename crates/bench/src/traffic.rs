//! Offered-load traffic campaigns: `mha-traffic` scenarios driven
//! through the campaign runner's worker pool.
//!
//! Each offered-load level is one [`CampaignPoint::custom`] job: sample
//! the Poisson job stream at that rate, price every job in one merged
//! simulation, and report per-tenant p50/p95/p99 latency, delivered
//! throughput and Jain's fairness index. All points share one
//! *placement-keyed* [`ScheduleCache`] — the cache key is
//! [`ConfigKey::for_algo`] of the job's solo build extended with
//! [`ConfigKey::with_placement`], so two jobs with the same config on
//! different node subsets build (and cache) distinct relocated
//! schedules. Results are bit-independent of the worker count, like
//! every other campaign.

use std::sync::Arc;

use mha_sched::FrozenSchedule;
use mha_simnet::ClusterSpec;
use mha_traffic::{
    placement_digest, run_jobs, sample_jobs, tenant_fairness, tenant_stats, Arrival, JobSpec,
    PlacementPolicy, TrafficReport, TrafficSpec, WorkloadMix,
};

use crate::campaign::{
    run_campaign_with, CampaignConfig, CampaignPoint, ConfigKey, Row, ScheduleCache,
};
use mha_apps::report::Table;

/// A builder for [`run_jobs`] that memoizes *relocated* frozen schedules
/// in `cache` under placement-extended keys. Jobs repeating the same
/// (config, message, placement) triple — every rep of a closed loop,
/// most of a heavy Poisson stream — rebuild nothing.
pub fn cached_builder<'a>(
    spec: &'a TrafficSpec,
    cache: &'a ScheduleCache,
) -> impl FnMut(&JobSpec) -> Result<Arc<FrozenSchedule>, String> + 'a {
    let cluster_grid = spec.grid();
    move |job: &JobSpec| {
        let key = ConfigKey::for_algo(&job.cfg, job.grid(spec.ppn), job.msg, &spec.cluster)
            .with_placement(placement_digest(cluster_grid, &job.nodes));
        cache.get_or_build(&key, || {
            let built =
                mha_collectives::build(&job.cfg, job.grid(spec.ppn), job.msg, &spec.cluster)
                    .map_err(|e| format!("job {}: {e}", job.id))?;
            let solo = built.sched.into_schedule();
            let placed = mha_sched::relocate_onto(&solo, cluster_grid, &job.nodes)
                .map_err(|e| format!("job {}: {e}", job.id))?;
            Ok(placed.freeze())
        })
    }
}

/// Samples and runs `spec` through `cache` (the library-level
/// [`mha_traffic::run_traffic`] with the cached builder swapped in).
pub fn run_traffic_cached(
    spec: &TrafficSpec,
    cache: &ScheduleCache,
) -> Result<TrafficReport, String> {
    let jobs = sample_jobs(spec);
    let mut build = cached_builder(spec, cache);
    run_jobs(spec, &jobs, &mut build)
}

/// One offered-load sweep: the scenario shape shared by every load level.
#[derive(Debug, Clone)]
pub struct TrafficSweep {
    /// The shared cluster.
    pub cluster: ClusterSpec,
    /// Cluster width in nodes.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Placement policy for every job.
    pub policy: PlacementPolicy,
    /// Tenants jobs round-robin over.
    pub tenants: u32,
    /// Jobs per load level.
    pub jobs: u32,
    /// Poisson arrival rates to sweep (jobs/second, ascending makes the
    /// nicest plots but any order works).
    pub loads_hz: Vec<f64>,
}

impl TrafficSweep {
    /// The default sweep on the Thor preset: 8 nodes × 4 ppn, random
    /// placement, 4 tenants, 32 jobs per level, loads from uncontended
    /// to heavily oversubscribed.
    pub fn thor_default() -> Self {
        TrafficSweep {
            cluster: ClusterSpec::thor(),
            nodes: 8,
            ppn: 4,
            policy: PlacementPolicy::Random,
            tenants: 4,
            jobs: 32,
            loads_hz: vec![1.0e3, 4.0e3, 1.6e4, 6.4e4],
        }
    }

    /// The [`TrafficSpec`] of one load level under `seed`.
    pub fn spec_at(&self, rate_hz: f64, seed: u64) -> TrafficSpec {
        TrafficSpec {
            cluster: self.cluster.clone(),
            nodes: self.nodes,
            ppn: self.ppn,
            arrival: Arrival::Poisson {
                rate_hz,
                jobs: self.jobs,
            },
            mix: WorkloadMix::paper_default(self.nodes),
            policy: self.policy,
            tenants: self.tenants,
            seed,
        }
    }
}

/// The campaign points of a sweep: one custom point per load level, all
/// sharing `cache`. The point seed (a pure function of campaign seed and
/// point index) seeds the scenario, so reps resample the stream while
/// worker count never moves a bit.
pub fn offered_load_points(sweep: &TrafficSweep, cache: Arc<ScheduleCache>) -> Vec<CampaignPoint> {
    sweep
        .loads_hz
        .iter()
        .map(|&rate_hz| {
            let sweep = sweep.clone();
            let cache = Arc::clone(&cache);
            CampaignPoint::custom(format!("load{rate_hz:e}"), move |seed| {
                let spec = sweep.spec_at(rate_hz, seed);
                let report = run_traffic_cached(&spec, &cache)?;
                let stats = tenant_stats(&report, spec.ppn);
                let fairness = tenant_fairness(&stats);
                Ok(stats
                    .iter()
                    .map(|s| {
                        Row::new(
                            format!("hz{rate_hz:e}/t{}", s.tenant),
                            vec![
                                rate_hz,
                                s.jobs as f64,
                                s.p50 * 1e6,
                                s.p95 * 1e6,
                                s.p99 * 1e6,
                                s.throughput / 1e6,
                                fairness,
                            ],
                        )
                    })
                    .collect())
            })
        })
        .collect()
}

/// Runs the sweep and assembles the throughput-vs-offered-load table:
/// one row per `(load, tenant[, rep])`, columns `offered_hz`, `jobs`,
/// latency percentiles (µs), delivered throughput (MB/s) and the run's
/// Jain fairness index.
pub fn offered_load_table(sweep: &TrafficSweep, cfg: &CampaignConfig) -> Result<Table, String> {
    let cache = Arc::new(ScheduleCache::new(cfg.cache));
    let points = offered_load_points(sweep, Arc::clone(&cache));
    // The campaign's own cache goes unused by custom points; the traffic
    // cache above is the one the builders share.
    let report = run_campaign_with(&points, cfg, &cache)?;
    let mut table = Table::new(
        format!(
            "Traffic: offered load sweep, {}x{} {} placement, {} tenants",
            sweep.nodes,
            sweep.ppn,
            sweep.policy.token(),
            sweep.tenants
        ),
        "load/tenant",
        [
            "offered_hz",
            "jobs",
            "p50_us",
            "p95_us",
            "p99_us",
            "tput_MBps",
            "jain",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for pr in &report.results {
        for row in &pr.rows {
            let label = if cfg.reps > 1 {
                format!("{}/r{}", row.label, pr.rep)
            } else {
                row.label.clone()
            };
            table.push(label, row.values.clone());
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_builder_hits_on_repeat_placements() {
        let sweep = TrafficSweep {
            jobs: 12,
            ..TrafficSweep::thor_default()
        };
        let spec = sweep.spec_at(2.0e3, 42);
        let cache = ScheduleCache::new(true);
        let r1 = run_traffic_cached(&spec, &cache).unwrap();
        let misses_cold = cache.misses();
        let r2 = run_traffic_cached(&spec, &cache).unwrap();
        assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits());
        assert_eq!(
            cache.misses(),
            misses_cold,
            "warm rerun must build nothing new"
        );
        assert!(cache.hits() >= 12, "second run should hit per job");
    }

    #[test]
    fn offered_load_table_is_worker_invariant() {
        let sweep = TrafficSweep {
            jobs: 8,
            loads_hz: vec![2.0e3, 3.2e4],
            ..TrafficSweep::thor_default()
        };
        let serial =
            offered_load_table(&sweep, &CampaignConfig::default().with_workers(1)).unwrap();
        let pooled =
            offered_load_table(&sweep, &CampaignConfig::default().with_workers(8)).unwrap();
        assert_eq!(serial.to_csv(), pooled.to_csv());
        assert_eq!(serial.len(), 2 * sweep.tenants as usize);
    }
}
