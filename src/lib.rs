//! # mha — hierarchical multi-HCA aware Allgather, end to end
//!
//! Facade crate for the reproduction of *"Designing Hierarchical Multi-HCA
//! Aware Allgather in MPI"* (Tran et al., ICPP Workshops 2022). It re-exports
//! the full stack:
//!
//! * [`sched`] — the schedule IR collectives compile to,
//! * [`simnet`] — the discrete-event multi-rail cluster simulator,
//! * [`exec`] — threaded/single-threaded executors over real buffers,
//! * [`collectives`] — flat, two-level and MHA Allgather/Allreduce designs,
//! * [`model`] — the paper's analytic cost models (Eqs. 1–7),
//! * [`apps`] — OSU-style microbenchmarks, matvec, synthetic DL training.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use mha_apps as apps;
pub use mha_collectives as collectives;
pub use mha_conformance as conformance;
pub use mha_exec as exec;
pub use mha_model as model;
pub use mha_sched as sched;
pub use mha_simnet as simnet;
pub use mha_tune as tune;
