//! Tenant-facing metrics: latency percentiles, throughput, fairness.
//!
//! Everything here is a pure function of a [`TrafficReport`], and every
//! CSV emitter formats floats with Rust's shortest-roundtrip `Display` —
//! identical simulations yield byte-identical files, which is what the
//! determinism suite and the CI worker-count byte-diff pin down.

use crate::run::TrafficReport;

/// Nearest-rank percentile (`p` in 0..=100) of an ascending-sorted slice.
///
/// # Panics
///
/// Panics on an empty slice or a `p` outside 0..=100.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of nothing");
    assert!((0.0..=100.0).contains(&p), "bad percentile {p}");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` — 1 when all shares are
/// equal, `1/n` when one tenant takes everything. Tenants with zero
/// share count; an all-zero (or empty) vector reports 1 (nothing was
/// contended, nothing was unfair).
pub fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sq)
    }
}

/// One tenant's aggregate view of a traffic run.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs the tenant completed.
    pub jobs: usize,
    /// Median job latency in seconds.
    pub p50: f64,
    /// 95th-percentile job latency.
    pub p95: f64,
    /// 99th-percentile job latency.
    pub p99: f64,
    /// Mean job latency.
    pub mean: f64,
    /// Payload bytes delivered (per-rank contribution × ranks, summed).
    pub bytes: f64,
    /// Delivered bytes per second over the run's makespan.
    pub throughput: f64,
}

/// Per-tenant stats of a run, one entry per declared tenant (tenants
/// with no jobs report zeros). `ppn` is the cluster's processes per
/// node, needed to turn message sizes into payload bytes.
pub fn tenant_stats(report: &TrafficReport, ppn: u32) -> Vec<TenantStats> {
    (0..report.tenants)
        .map(|t| {
            let mut lat: Vec<f64> = report
                .jobs
                .iter()
                .filter(|r| r.job.tenant == t)
                .map(|r| r.latency())
                .collect();
            lat.sort_by(f64::total_cmp);
            let bytes: f64 = report
                .jobs
                .iter()
                .filter(|r| r.job.tenant == t)
                .map(|r| r.job.payload(ppn))
                .sum();
            if lat.is_empty() {
                TenantStats {
                    tenant: t,
                    jobs: 0,
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                    mean: 0.0,
                    bytes: 0.0,
                    throughput: 0.0,
                }
            } else {
                TenantStats {
                    tenant: t,
                    jobs: lat.len(),
                    p50: percentile(&lat, 50.0),
                    p95: percentile(&lat, 95.0),
                    p99: percentile(&lat, 99.0),
                    mean: lat.iter().sum::<f64>() / lat.len() as f64,
                    bytes,
                    throughput: if report.makespan > 0.0 {
                        bytes / report.makespan
                    } else {
                        0.0
                    },
                }
            }
        })
        .collect()
}

/// Jain's fairness index over the tenants' delivered throughputs.
pub fn tenant_fairness(stats: &[TenantStats]) -> f64 {
    jain(&stats.iter().map(|s| s.throughput).collect::<Vec<_>>())
}

/// One row per job: the run's raw trace, byte-stable per seed.
pub fn job_trace_csv(report: &TrafficReport) -> String {
    let mut out = String::from("job,tenant,cfg,msg,nodes,arrival_s,end_s,latency_s\n");
    for r in &report.jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.job.id,
            r.job.tenant,
            r.job.cfg.to_kv().replace(',', ";"),
            r.job.msg,
            r.job
                .nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            r.arrival,
            r.end,
            r.latency()
        ));
    }
    out
}

/// One row per tenant: the percentile/throughput summary plus the run's
/// fairness index repeated per row (flat CSV, no footer parsing needed).
pub fn tenant_csv(stats: &[TenantStats]) -> String {
    let fairness = tenant_fairness(stats);
    let mut out = String::from("tenant,jobs,p50_s,p95_s,p99_s,mean_s,bytes,throughput_bps,jain\n");
    for s in stats {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            s.tenant, s.jobs, s.p50, s.p95, s.p99, s.mean, s.bytes, s.throughput, fairness
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 10.0);
        assert_eq!(percentile(&xs, 99.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        let j = jain(&[3.0, 1.0]);
        assert!(j > 0.25 && j < 1.0);
    }
}
