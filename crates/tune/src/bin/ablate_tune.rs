//! Ablation: tuned serving vs every untuned family on the Figure 12–14
//! grids — the acceptance sweep of the `mha-tune` pipeline.
//!
//! Loads the shipped tuning table (`results/tuned_thor.mtab`, or
//! `MHA_TUNED_TABLE`), serves each `(grid, msg)` point with a **pure
//! table probe** (no search, no build on the serving path), prices the
//! served config next to every untuned family, and hard-asserts
//! `tuned ≤ untuned` at every point. Emits `results/ablate_tune.csv`.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{CampaignConfig, ScheduleCache};
use mha_tune::search::price_configs;
use mha_tune::{fig_grids, untuned_families, TunedTable};

fn main() {
    mha_bench::apply_check_flag();
    let path = mha_tune::default_table_path();
    let table = match TunedTable::load(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: cannot load tuning table {} ({e}); run `cargo run --release -p mha-tune --bin mha_tune` first",
                path.display()
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "[serving {} entries from {} (digest {:016x})]",
        table.len(),
        path.display(),
        table.digest()
    );

    let spec = mha_simnet::ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let cache = ScheduleCache::new(cfg.cache);
    let mut sizes = mha_bench::medium_sizes();
    sizes.extend(mha_bench::large_sizes());

    let untuned = untuned_families();
    let mut columns: Vec<String> = untuned.iter().map(|(l, _)| (*l).to_string()).collect();
    columns.push("MHA-tuned".into());
    columns.push("gain_pct".into());
    let mut t = Table::new(
        "Ablation: tuned table serving vs untuned families, Figures 12-14 grids",
        "point",
        columns,
    );

    let mut violations = 0usize;
    for grid in fig_grids() {
        for &msg in &sizes {
            // Pure probe on the serving path: lookup, then one dispatch.
            let served = table.lookup(grid, msg, spec.rails);
            let mut configs: Vec<mha_collectives::AlgoConfig> =
                untuned.iter().map(|(_, c)| c.clone()).collect();
            configs.push(served);
            let prices = price_configs(&configs, grid, msg, None, &spec, &cfg, &cache).unwrap();
            let tuned_us = *prices.last().unwrap();
            let best_untuned = prices[..prices.len() - 1]
                .iter()
                .fold(f64::INFINITY, |a, &b| a.min(b));
            for (i, (label, _)) in untuned.iter().enumerate() {
                if tuned_us > prices[i] * (1.0 + 1e-9) {
                    eprintln!(
                        "VIOLATION {}x{} {}: tuned {tuned_us} > {label} {}",
                        grid.nodes(),
                        grid.ppn(),
                        fmt_bytes(msg),
                        prices[i]
                    );
                    violations += 1;
                }
            }
            let mut row = prices.clone();
            row.push((1.0 - tuned_us / best_untuned) * 100.0);
            t.push(
                format!("{}x{} {}", grid.nodes(), grid.ppn(), fmt_bytes(msg)),
                row,
            );
        }
    }
    mha_bench::emit(&t, "ablate_tune");
    assert_eq!(
        violations, 0,
        "{violations} serving points lost to an untuned family"
    );
    println!("[tuned <= untuned at every point]");
}
