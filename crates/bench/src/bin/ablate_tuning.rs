//! Ablation: Eq. 1's analytic offload versus the Figure 5 empirical tuner
//! across process counts — quantifying how much the congestion-blind
//! model leaves on the table (the gap that motivates the paper's tuner).
//! Each process count is one campaign point (see `mha_bench::campaign`);
//! the tuner sweeps its own candidate simulations inside the point.

use mha_apps::report::Table;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::mha::{optimal_offload, tune_offload, Offload};
use mha_collectives::{build, AlgoConfig, Family};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let msg = 1 << 20;
    let procs = [2u32, 4, 8, 16, 32];
    let points: Vec<CampaignPoint> = procs
        .iter()
        .map(|&l| {
            let spec = spec.clone();
            CampaignPoint::custom(format!("L{l}"), move |_seed| {
                let sim = Simulator::new(spec.clone()).map_err(|e| e.to_string())?;
                let grid = ProcGrid::single_node(l);
                let d_eq1 = optimal_offload(&spec, l, msg);
                let (d_tuned, _) = tune_offload(&spec, l, msg).map_err(|e| format!("{e:?}"))?;
                // Both candidates go through the unified AlgoConfig
                // dispatcher — the same path the tuning table serves.
                let intra = |d: u32| AlgoConfig {
                    offload: Offload::Fixed(d),
                    ..AlgoConfig::flat(Family::MhaIntra)
                };
                let eq1 = build(&intra(d_eq1), grid, msg, &spec).map_err(|e| format!("{e:?}"))?;
                let tuned =
                    build(&intra(d_tuned), grid, msg, &spec).map_err(|e| format!("{e:?}"))?;
                let t_eq1 = sim.run(&eq1.sched).map_err(|e| e.to_string())?.latency_us();
                let t_tuned = sim
                    .run(&tuned.sched)
                    .map_err(|e| e.to_string())?
                    .latency_us();
                Ok(vec![Row::new(
                    l.to_string(),
                    vec![
                        f64::from(d_eq1),
                        f64::from(d_tuned),
                        t_eq1,
                        t_tuned,
                        (1.0 - t_tuned / t_eq1) * 100.0,
                    ],
                )])
            })
        })
        .collect();
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Ablation: Eq.1 analytic offload vs empirical tuner, 1 MB blocks",
        "processes",
        vec![
            "d_eq1".into(),
            "d_tuned".into(),
            "eq1_us".into(),
            "tuned_us".into(),
            "tuner_gain_pct".into(),
        ],
    );
    for pr in &report.results {
        for row in &pr.rows {
            t.push(row.label.clone(), row.values.clone());
        }
    }
    mha_bench::emit(&t, "ablate_tuning");
}
