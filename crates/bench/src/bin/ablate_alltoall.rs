//! Extension experiment: hierarchical (node-aggregated) Alltoall vs the
//! flat shifted-direct algorithm — message-count aggregation at work.
//! Runs as one campaign (see `mha_bench::campaign`); the gain column is
//! derived from the two simulated cells at assembly time.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::{build_direct_alltoall, build_mha_alltoall};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(8, 8);
    let sizes = size_sweep(64, 64 * 1024);
    let mut cells = Vec::new();
    for &msg in &sizes {
        let key = ConfigKey::new("alltoall/flat_direct", grid, msg, &spec);
        cells.push(CampaignPoint::sim("flat", key, spec.clone(), move || {
            Ok(build_direct_alltoall(grid, msg).sched)
        }));
        let key = ConfigKey::new("alltoall/mha", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim("mha", key, spec.clone(), move || {
            build_mha_alltoall(grid, msg, &spec2)
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
        }));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Extension: Alltoall, 8 nodes x 8 PPN",
        "msg_bytes",
        vec![
            "flat_direct_us".into(),
            "mha_alltoall_us".into(),
            "gain_pct".into(),
        ],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        let t_flat = report.value(2 * i);
        let t_mha = report.value(2 * i + 1);
        t.push(
            fmt_bytes(msg),
            vec![t_flat, t_mha, (1.0 - t_mha / t_flat) * 100.0],
        );
    }
    mha_bench::emit(&t, "ablate_alltoall");
}
