//! Plain-text table/CSV formatting for the benchmark binaries — mirrors
//! the OSU micro-benchmark output style the paper's figures are drawn
//! from — plus the run-summary block every `fig*` binary appends
//! ([`render_run_summary`]).

use mha_sched::RunSummary;

/// A results table: one row per sweep point, one value column per
/// contestant.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    row_header: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Starts a table titled `title`, whose first column is `row_header`
    /// and whose value columns are `columns`.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_header: row_header.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw access to the rows.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(l, _)| l.len())
                .chain([self.row_header.len()])
                .max()
                .unwrap_or(8),
        );
        for (c, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, v)| format!("{:.2}", v[c]).len())
                .chain([col.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        let _ = write!(out, "{:>w$}", self.row_header, w = widths[0]);
        for (c, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", col, w = widths[c + 1]);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{:>w$}", label, w = widths[0]);
            for (c, v) in values.iter().enumerate() {
                let _ = write!(out, "  {:>w$.2}", v, w = widths[c + 1]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (`row_header,col1,col2,…`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.row_header);
        for col in &self.columns {
            let _ = write!(out, ",{col}");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{label}");
            for v in values {
                let _ = write!(out, ",{v:.4}");
            }
            out.push('\n');
        }
        out
    }
}

/// The resource-group classes a [`RunSummary`] is folded into, in display
/// order: HCA rails (`tx(…)`/`rx(…)`), CPU copy engines (`cpu(…)`), memory
/// controllers (`mem(…)`) and the NUMA cross-socket links (`xsocket(…)`).
type LabelMatch = fn(&str) -> bool;
const RESOURCE_GROUPS: [(&str, LabelMatch); 4] = [
    ("rails", |l| l.starts_with("tx(") || l.starts_with("rx(")),
    ("cpu", |l| l.starts_with("cpu(")),
    ("memory", |l| l.starts_with("mem(")),
    ("xsocket", |l| l.starts_with("xsocket(")),
];

/// Renders a [`RunSummary`] as the utilization/overlap block the `fig*`
/// binaries print after their tables: per-group resource utilization
/// (mean and max over the group's resources, ignoring resources that saw
/// no traffic when computing the max label) and the measured
/// network–CPU overlap fraction behind the paper's Figure 7 argument.
pub fn render_run_summary(s: &RunSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## run summary: {} [{}] — {} ops, makespan {:.3} us",
        s.schedule,
        s.backend,
        s.ops,
        s.makespan * 1e6
    );
    let _ = writeln!(
        out,
        "   net busy {:.3} us | cpu busy {:.3} us | overlap {:.3} us ({:.1}% of net)",
        s.net_busy * 1e6,
        s.cpu_busy * 1e6,
        s.net_cpu_overlap * 1e6,
        100.0 * s.overlap_fraction()
    );
    for (name, matches) in RESOURCE_GROUPS {
        let group: Vec<_> = s.resources.iter().filter(|r| matches(&r.label)).collect();
        if group.is_empty() {
            continue;
        }
        let mean = group.iter().map(|r| r.utilization).sum::<f64>() / group.len() as f64;
        let busiest = group
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization))
            .expect("group not empty");
        let _ = writeln!(
            out,
            "   {:<7} {:>4} resources | mean util {:>5.1}% | max {:>5.1}% ({})",
            name,
            group.len(),
            100.0 * mean,
            100.0 * busiest.utilization,
            busiest.label
        );
    }
    if s.waterfill_recomputes > 0 || s.rate_changes > 0 {
        let _ = writeln!(
            out,
            "   waterfill recomputes {} (levels touched {}) | flow-rate changes {}",
            s.waterfill_recomputes, s.waterfill_touched, s.rate_changes
        );
    }
    out
}

/// Formats a byte count the way OSU tables do (`256`, `16K`, `2M`).
pub fn fmt_bytes(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", "size", vec!["HPC-X".into(), "MHA".into()]);
        t.push("256", vec![10.5, 5.25]);
        t.push("16K", vec![100.0, 42.0]);
        t
    }

    #[test]
    fn text_table_aligns_and_includes_everything() {
        let txt = sample().to_text();
        assert!(txt.contains("# Fig X"));
        assert!(txt.contains("HPC-X"));
        assert!(txt.contains("5.25"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "size,HPC-X,MHA");
        assert!(lines[1].starts_with("256,10.5"));
    }

    #[test]
    fn byte_formatting_matches_osu_style() {
        assert_eq!(fmt_bytes(256), "256");
        assert_eq!(fmt_bytes(16 * 1024), "16K");
        assert_eq!(fmt_bytes(2 << 20), "2M");
        assert_eq!(fmt_bytes(1500), "1500");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_rejected() {
        sample().push("x", vec![1.0]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }

    #[test]
    fn run_summary_groups_resources_and_reports_overlap() {
        use mha_sched::ResourceUtil;
        let util = |label: &str, utilization: f64| ResourceUtil {
            label: label.into(),
            bytes: 0.0,
            capacity: 1.0,
            utilization,
        };
        let s = RunSummary {
            backend: "simnet",
            schedule: "mha-inter".into(),
            ops: 42,
            makespan: 1e-3,
            net_busy: 8e-4,
            cpu_busy: 5e-4,
            net_cpu_overlap: 4e-4,
            resources: vec![
                util("tx(n0,h0)", 0.2),
                util("rx(n0,h1)", 0.6),
                util("cpu(r0)", 0.3),
                util("mem(n0)", 0.1),
            ],
            waterfill_recomputes: 7,
            waterfill_touched: 21,
            rate_changes: 9,
        };
        let txt = render_run_summary(&s);
        assert!(txt.contains("mha-inter"), "{txt}");
        assert!(txt.contains("50.0% of net"), "{txt}");
        assert!(txt.contains("rails"), "{txt}");
        assert!(txt.contains("rx(n0,h1)"), "{txt}"); // busiest rail named
        assert!(txt.contains("memory"), "{txt}");
        assert!(!txt.contains("xsocket"), "no xsocket resources: {txt}");
        assert!(
            txt.contains("waterfill recomputes 7 (levels touched 21)"),
            "{txt}"
        );
    }
}
