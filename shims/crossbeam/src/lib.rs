//! Offline shim for `crossbeam`, providing the MPMC `channel::unbounded`
//! used by the threaded executor. Backed by a `Mutex<VecDeque>` + `Condvar`;
//! slower than the real crate but semantically equivalent for this
//! workspace's workloads (work queues with explicit termination sentinels).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable, any clone may send.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable, any clone may receive.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`]; carries the rejected value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when the queue is empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let n = 1000;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n);
    }
}
