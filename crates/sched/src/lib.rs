//! # mha-sched — schedule IR for multi-HCA aware collectives
//!
//! This crate defines the intermediate representation shared by the whole
//! reproduction stack of *"Designing Hierarchical Multi-HCA Aware Allgather
//! in MPI"* (Tran et al., ICPP Workshops 2022):
//!
//! * a [`ProcGrid`] describing the `N × L` process layout,
//! * [`BufferDecl`]s for rank-private and node-shared (shm) memory,
//! * a dependency DAG of [`Op`]s — transfers over CMA or HCA rails, CPU
//!   copies, reductions and pure compute,
//! * a [`ScheduleBuilder`] that keeps the graph acyclic by construction,
//! * [`validate`]/[`check_races`] which prove a schedule is structurally
//!   sound and deterministic under any interleaving,
//! * [`Schedule::freeze`] → [`FrozenSchedule`], the execution-ready form:
//!   CSR predecessor/successor adjacency, indegrees, a topological order and
//!   a dense per-op table, shared by every interpreter,
//! * [`runtime`], the indegree-counter readiness drivers ([`ReadySet`],
//!   [`AtomicReadySet`]) both backends schedule with, and
//! * [`probe`], the pluggable observability seam ([`Probe`] sinks: JSONL
//!   traces, run summaries with the network/CPU overlap fraction).
//!
//! Collective algorithms (in `mha-collectives`) compile to this IR once and
//! freeze it; the discrete-event simulator (`mha-simnet`) then prices the
//! schedule on a model of the Thor cluster while the threaded executor
//! (`mha-exec`) runs it on real byte buffers to verify semantics. One frozen
//! schedule, two interpreters, one readiness runtime.
//!
//! ```
//! use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};
//!
//! let grid = ProcGrid::new(2, 1); // two nodes, one process each
//! let mut b = ScheduleBuilder::new(grid, "demo");
//! let src = b.private_buf(RankId(0), 1 << 20, "send");
//! let dst = b.private_buf(RankId(1), 1 << 20, "recv");
//! b.transfer(RankId(0), RankId(1), Loc::new(src, 0), Loc::new(dst, 0),
//!            1 << 20, Channel::AllRails, &[], 0);
//! let sched = b.finish();
//! assert!(mha_sched::validate(&sched, Some(2)).is_ok());
//! assert_eq!(sched.stats().rail_bytes, 1 << 20);
//! ```

#![warn(missing_docs)]

mod buffer;
mod builder;
mod fingerprint;
mod frozen;
mod grid;
mod ids;
pub mod invariant;
mod merge;
mod op;
pub mod probe;
mod relocate;
pub mod runtime;
mod schedule;
mod topology;
mod validate;

pub use buffer::{BufKind, BufferDecl, Loc};
pub use builder::{RankCursors, ScheduleBuilder};
pub use fingerprint::{Fingerprint, Fingerprinter};
pub use frozen::{FrozenSchedule, OpClass, OpRow};
pub use grid::ProcGrid;
pub use ids::{BufId, GroupId, NodeId, OpId, RankId};
pub use invariant::{InvariantProbe, Violation};
pub use merge::{merge_parts, MergeError, MergePart, Merged};
pub use op::{Channel, DType, Op, OpKind, RailSet, RedOp};
pub use probe::{
    intersection_length, union_length, JsonlProbe, NullProbe, Probe, ResourceUtil, RunSummary,
    SummaryProbe, Tee,
};
pub use relocate::{relocate_onto, validate_placement, RelocateError};
pub use runtime::{AtomicReadySet, ReadySet};
pub use schedule::{Schedule, ScheduleStats};
pub use topology::{TopoLevel, Topology};
pub use validate::{check_races, rail_registered_buffers, validate, Race, ValidateError};
