//! Execution traces and the Fig. 2-style ASCII timeline.
//!
//! The paper motivates its designs with a TAU trace of a flat Ring Allgather
//! (Figure 2) and argues about overlap with timeline views (Figures 6/7).
//! [`Trace`] captures per-op `ready → start → end` spans from the simulator
//! and can render them as a Gantt chart grouped per rank (CPU lane and
//! network lane), or dump CSV for external plotting.
//!
//! [`TraceBuilder`] is the [`Probe`] sink that collects those spans: the
//! engine no longer records timeline arrays itself — `trace: true` simply
//! plugs this sink into the probed run.

use mha_sched::{Channel, FrozenSchedule, OpId, OpKind, Probe, RankId, Schedule};

// Interval arithmetic lives with the probe layer now; re-exported here so
// existing `mha_simnet::trace::{union_length, intersection_length}` callers
// keep compiling.
pub use mha_sched::probe::{intersection_length, union_length};

/// The `ready/start/end` times (seconds) of one op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpan {
    /// The op this span belongs to.
    pub op: OpId,
    /// When all dependencies had finished.
    pub ready: f64,
    /// When the startup latency elapsed and the fluid phase began.
    pub start: f64,
    /// When the op completed.
    pub end: f64,
}

/// Which timeline row an op is drawn on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// CPU work of a rank (copies, CMA transfers it performs, compute).
    Cpu(RankId),
    /// Network transfers posted by a rank (HCA does the work).
    Net(RankId),
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Cpu(r) => write!(f, "cpu {r}"),
            Lane::Net(r) => write!(f, "net {r}"),
        }
    }
}

/// Metadata snapshot of one op, denormalized from the schedule so the trace
/// is self-contained.
#[derive(Debug, Clone)]
pub struct SpanMeta {
    /// Row assignment.
    pub lane: Lane,
    /// Short kind name (`cma`, `rail`, `copy`, …).
    pub kind: &'static str,
    /// The op's label from the schedule.
    pub label: String,
    /// Algorithm step, if assigned.
    pub step: Option<u32>,
    /// Bytes moved.
    pub bytes: usize,
}

/// A complete simulation trace.
#[derive(Debug, Clone)]
pub struct Trace {
    spans: Vec<OpSpan>,
    meta: Vec<SpanMeta>,
    makespan: f64,
}

fn lane_of(kind: &OpKind) -> Lane {
    match kind {
        OpKind::Transfer {
            src_rank,
            channel: Channel::Rail(_) | Channel::AllRails,
            ..
        } => Lane::Net(*src_rank),
        other => Lane::Cpu(
            other
                .cpu_actor()
                .expect("non-rail op always has a CPU actor"),
        ),
    }
}

impl Trace {
    /// Builds a trace from simulator spans plus schedule metadata.
    pub fn new(sch: &Schedule, spans: Vec<OpSpan>) -> Self {
        let meta = spans
            .iter()
            .map(|s| {
                let op = sch.op(s.op);
                SpanMeta {
                    lane: lane_of(&op.kind),
                    kind: op.kind.kind_name(),
                    label: op.label.clone(),
                    step: op.has_step().then_some(op.step),
                    bytes: op.kind.bytes(),
                }
            })
            .collect();
        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        Trace {
            spans,
            meta,
            makespan,
        }
    }

    /// All spans, in op order.
    pub fn spans(&self) -> &[OpSpan] {
        &self.spans
    }

    /// Metadata aligned with [`Trace::spans`].
    pub fn meta(&self) -> &[SpanMeta] {
        &self.meta
    }

    /// Total simulated time.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// `(start, end)` intervals of all spans matching `pred`.
    pub fn intervals_where(
        &self,
        mut pred: impl FnMut(&OpSpan, &SpanMeta) -> bool,
    ) -> Vec<(f64, f64)> {
        self.spans
            .iter()
            .zip(&self.meta)
            .filter(|(s, m)| pred(s, m))
            .map(|(s, _)| (s.start, s.end))
            .collect()
    }

    /// CSV dump: `op,lane,kind,step,bytes,ready_us,start_us,end_us,label`.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("op,lane,kind,step,bytes,ready_us,start_us,end_us,label\n");
        for (s, m) in self.spans.iter().zip(&self.meta) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.3},{:.3},{:.3},{}",
                s.op.index(),
                m.lane,
                m.kind,
                m.step.map_or(-1i64, i64::from),
                m.bytes,
                s.ready * 1e6,
                s.start * 1e6,
                s.end * 1e6,
                m.label
            );
        }
        out
    }

    /// Renders an ASCII Gantt chart `width` columns wide, one row per lane,
    /// in the spirit of the paper's Figure 2. Busy cells show the first
    /// letter of the op kind (`c`ma, `r`ail, c`o`py…, chosen per cell by the
    /// latest-starting op covering it); idle cells are `.`.
    pub fn render_ascii(&self, width: usize) -> String {
        use std::collections::BTreeMap;
        assert!(width >= 10, "timeline needs at least 10 columns");
        if self.makespan <= 0.0 {
            return String::from("(empty trace)\n");
        }
        let mut lanes: BTreeMap<Lane, Vec<(f64, f64, char)>> = BTreeMap::new();
        for (s, m) in self.spans.iter().zip(&self.meta) {
            let ch = match m.kind {
                "cma" => 'c',
                "rail" | "rails" => 'r',
                "copy" => 'o',
                "reduce" => '+',
                "compute" => 'x',
                _ => '?',
            };
            lanes.entry(m.lane).or_default().push((s.start, s.end, ch));
        }
        let mut out = String::new();
        let scale = self.makespan / width as f64;
        out.push_str(&format!(
            "timeline: {:.1} us total, {:.3} us/col\n",
            self.makespan * 1e6,
            scale * 1e6
        ));
        for (lane, mut items) in lanes {
            items.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut row = vec!['.'; width];
            for (start, end, ch) in items {
                let c0 = ((start / scale) as usize).min(width - 1);
                let c1 = ((end / scale).ceil() as usize).clamp(c0 + 1, width);
                for cell in row.iter_mut().take(c1).skip(c0) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("{lane:>8} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }
}

/// Probe sink that records op `ready/start/end` spans and assembles a
/// [`Trace`] when the run completes.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    spans: Vec<OpSpan>,
}

impl TraceBuilder {
    /// An empty sink; spans are sized on [`Probe::begin_run`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the trace, resolving op metadata against `sch`.
    pub fn finish(self, sch: &Schedule) -> Trace {
        Trace::new(sch, self.spans)
    }
}

impl Probe for TraceBuilder {
    fn begin_run(&mut self, fs: &FrozenSchedule, _backend: &'static str) {
        self.spans = (0..fs.n_ops())
            .map(|i| OpSpan {
                op: OpId(i as u32),
                ready: f64::NAN,
                start: f64::NAN,
                end: f64::NAN,
            })
            .collect();
    }

    fn op_ready(&mut self, op: u32, t: f64) {
        self.spans[op as usize].ready = t;
    }

    fn op_start(&mut self, op: u32, t: f64) {
        self.spans[op as usize].start = t;
    }

    fn op_end(&mut self, op: u32, t: f64) {
        self.spans[op as usize].end = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{Loc, ProcGrid, ScheduleBuilder};

    fn sample_trace() -> Trace {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "t");
        let s = b.private_buf(RankId(0), 64, "s");
        let d = b.private_buf(RankId(1), 64, "d");
        let d2 = b.private_buf(RankId(1), 64, "d2");
        let t = b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            64,
            Channel::Rail(0),
            &[],
            0,
        );
        b.copy(RankId(1), Loc::new(d, 0), Loc::new(d2, 0), 64, &[t], 1);
        let sch = b.finish();
        Trace::new(
            &sch,
            vec![
                OpSpan {
                    op: OpId(0),
                    ready: 0.0,
                    start: 1.0,
                    end: 3.0,
                },
                OpSpan {
                    op: OpId(1),
                    ready: 3.0,
                    start: 3.5,
                    end: 5.0,
                },
            ],
        )
    }

    #[test]
    fn lanes_separate_net_and_cpu() {
        let t = sample_trace();
        assert_eq!(t.meta()[0].lane, Lane::Net(RankId(0)));
        assert_eq!(t.meta()[1].lane, Lane::Cpu(RankId(1)));
        assert_eq!(t.makespan(), 5.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_trace().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("op,lane"));
        assert!(lines[1].contains("rail"));
        assert!(lines[2].contains("copy"));
    }

    #[test]
    fn ascii_timeline_draws_both_lanes() {
        let art = sample_trace().render_ascii(40);
        assert!(art.contains("net r0"));
        assert!(art.contains("cpu r1"));
        assert!(art.contains('r'));
        assert!(art.contains('o'));
    }

    #[test]
    fn intervals_where_filters() {
        let t = sample_trace();
        let rails = t.intervals_where(|_, m| m.kind == "rail");
        assert_eq!(rails, vec![(1.0, 3.0)]);
    }

    #[test]
    fn union_length_merges_overlaps() {
        assert_eq!(union_length(&[]), 0.0);
        assert_eq!(union_length(&[(0.0, 2.0), (1.0, 3.0)]), 3.0);
        assert_eq!(union_length(&[(0.0, 1.0), (2.0, 3.0)]), 2.0);
        assert_eq!(union_length(&[(5.0, 4.0)]), 0.0); // degenerate dropped
    }

    #[test]
    fn intersection_length_measures_overlap() {
        let a = [(0.0, 4.0)];
        let b = [(2.0, 6.0)];
        assert!((intersection_length(&a, &b) - 2.0).abs() < 1e-12);
        let disjoint = [(10.0, 11.0)];
        assert_eq!(intersection_length(&a, &disjoint), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn tiny_width_rejected() {
        sample_trace().render_ascii(3);
    }
}
