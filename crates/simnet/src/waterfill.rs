//! Max-min fair bandwidth allocation ("water-filling") with weighted
//! resource demands.
//!
//! Given a set of fluid flows, each with an intrinsic rate cap (e.g. one
//! rail's peak for a rail transfer) and a set of `(resource, weight)` pairs
//! it loads — a flow at rate `x` consumes `weight · x` of each resource —
//! the allocator assigns max-min fair rates by classical progressive
//! filling: all rates rise together until a resource saturates, flows
//! through it freeze, filling continues. Per-flow caps are modeled as
//! virtual single-flow resources.
//!
//! Weights express that some byte streams load memory harder than others:
//! a kernel-assisted CMA copy touches DRAM about twice as hard per payload
//! byte as a streaming shm memcpy (see [`crate::ClusterSpec::cma_mem_weight`]).
//!
//! The engine only ever calls this on the *connected component* of flows
//! affected by a flow arrival/departure, which keeps components (and thus
//! per-event cost) small for the schedules in this repo.

use crate::resources::ResourceId;

/// One flow's allocation inputs.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec<'a> {
    /// Intrinsic rate cap (bytes/s); must be positive and finite.
    pub cap: f64,
    /// `(resource, weight)` pairs the flow loads. May be empty (rate = cap).
    pub resources: &'a [(ResourceId, f64)],
}

/// Relative tolerance for saturation detection.
const EPS: f64 = 1e-9;

/// Reusable scratch space for [`WaterFiller::fill`]; hoisted out so the
/// simulation engine does not allocate on every event.
#[derive(Debug, Default)]
pub struct WaterFiller {
    // Dense local re-indexing of the (sparse, global) ResourceIds.
    // `local_of` is indexed by `ResourceId` directly (u32::MAX = absent);
    // only the entries named by `local_ids` are live, so resetting between
    // calls costs O(component), not O(cluster resources).
    local_ids: Vec<ResourceId>,
    local_of: Vec<u32>,
    rem: Vec<f64>,
    wsum: Vec<f64>,
    flows_of: Vec<Vec<u32>>,
    fixed: Vec<bool>,
}

impl WaterFiller {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes max-min fair rates for `flows`, writing into `rates`
    /// (which is resized to `flows.len()`).
    ///
    /// `capacity(r)` must return the total capacity of resource `r`.
    pub fn fill(
        &mut self,
        flows: &[FlowSpec<'_>],
        capacity: impl FnMut(ResourceId) -> f64,
        rates: &mut Vec<f64>,
    ) {
        self.fill_with(flows.len(), |fi| flows[fi], capacity, rates)
    }

    /// [`WaterFiller::fill`] over a *view*: `flow(i)` yields the `i`-th
    /// flow's spec on demand (it may be called several times per flow and
    /// must be pure). This lets the engine water-fill straight out of its
    /// flow table without assembling a spec vector, so steady-state calls
    /// allocate nothing: every scratch structure here — including the
    /// per-resource member lists — keeps its buffers across calls.
    pub fn fill_with<'a>(
        &mut self,
        n: usize,
        mut flow: impl FnMut(usize) -> FlowSpec<'a>,
        mut capacity: impl FnMut(ResourceId) -> f64,
        rates: &mut Vec<f64>,
    ) {
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            return;
        }

        // Un-map the previous component's resources (cheap: O(previous
        // component size)), then rebuild for this call. `flows_of` entries
        // are recycled slot-wise below instead of dropped.
        for &r in &self.local_ids {
            self.local_of[r.index()] = u32::MAX;
        }
        self.local_ids.clear();
        self.rem.clear();
        self.wsum.clear();
        self.fixed.clear();
        self.fixed.resize(n, false);

        // Build the local resource table: real resources first…
        for fi in 0..n {
            let f = flow(fi);
            debug_assert!(
                f.cap.is_finite() && f.cap > 0.0,
                "flow cap must be positive"
            );
            for &(r, w) in f.resources {
                debug_assert!(w.is_finite() && w > 0.0, "weights must be positive");
                if r.index() >= self.local_of.len() {
                    self.local_of.resize(r.index() + 1, u32::MAX);
                }
                let li = match self.local_of[r.index()] {
                    u32::MAX => {
                        let li = self.local_ids.len();
                        self.local_of[r.index()] = li as u32;
                        self.local_ids.push(r);
                        self.rem.push(capacity(r));
                        self.wsum.push(0.0);
                        if self.flows_of.len() <= li {
                            self.flows_of.push(Vec::new());
                        } else {
                            self.flows_of[li].clear();
                        }
                        li
                    }
                    li => li as usize,
                };
                self.wsum[li] += w;
                self.flows_of[li].push(fi as u32);
            }
        }
        // …then one virtual resource per flow for its rate cap.
        let virt_base = self.local_ids.len();
        for fi in 0..n {
            self.rem.push(flow(fi).cap);
            self.wsum.push(1.0);
            let li = virt_base + fi;
            if self.flows_of.len() <= li {
                self.flows_of.push(Vec::new());
            } else {
                self.flows_of[li].clear();
            }
            self.flows_of[li].push(fi as u32);
        }

        let nres = self.rem.len();
        let mut unfixed = n;
        let mut level = 0.0f64;

        while unfixed > 0 {
            // The smallest additional level any active resource can absorb.
            let mut delta = f64::INFINITY;
            for li in 0..nres {
                if self.wsum[li] > 0.0 {
                    let share = self.rem[li].max(0.0) / self.wsum[li];
                    if share < delta {
                        delta = share;
                    }
                }
            }
            debug_assert!(delta.is_finite(), "no active resource while flows unfixed");
            level += delta;

            // Drain headroom and freeze flows on saturated resources.
            for li in 0..nres {
                if self.wsum[li] > 0.0 {
                    self.rem[li] -= delta * self.wsum[li];
                }
            }
            for li in 0..nres {
                if self.wsum[li] <= 0.0 || self.rem[li] > EPS * level.max(1e-30) {
                    continue;
                }
                let flow_list = std::mem::take(&mut self.flows_of[li]);
                for &fi in &flow_list {
                    let fi = fi as usize;
                    if self.fixed[fi] {
                        continue;
                    }
                    self.fixed[fi] = true;
                    rates[fi] = level;
                    unfixed -= 1;
                    // Retire the flow from all its other resources.
                    for &(r, w) in flow(fi).resources {
                        let other = self.local_of[r.index()] as usize;
                        self.wsum[other] -= w;
                    }
                    self.wsum[virt_base + fi] = 0.0;
                }
                self.flows_of[li] = flow_list;
                self.wsum[li] = 0.0;
            }
        }
    }
}

/// One-shot convenience wrapper around [`WaterFiller::fill`].
pub fn max_min_rates(flows: &[FlowSpec<'_>], capacity: impl FnMut(ResourceId) -> f64) -> Vec<f64> {
    let mut filler = WaterFiller::new();
    let mut rates = Vec::new();
    filler.fill(flows, capacity, &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: ResourceId = ResourceId(0);
    const R1: ResourceId = ResourceId(1);
    const R2: ResourceId = ResourceId(2);

    fn cap_table(caps: &[f64]) -> impl FnMut(ResourceId) -> f64 + '_ {
        move |r| caps[r.index()]
    }

    fn unit(rs: &[ResourceId]) -> Vec<(ResourceId, f64)> {
        rs.iter().map(|&r| (r, 1.0)).collect()
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_resource() {
        let rs = unit(&[R0]);
        let flows = [FlowSpec {
            cap: 5.0,
            resources: &rs,
        }];
        assert_eq!(max_min_rates(&flows, cap_table(&[10.0])), vec![5.0]);
        let flows = [FlowSpec {
            cap: 20.0,
            resources: &rs,
        }];
        assert_eq!(max_min_rates(&flows, cap_table(&[10.0])), vec![10.0]);
    }

    #[test]
    fn equal_flows_share_a_resource_equally() {
        let rs = unit(&[R0]);
        let flows = vec![
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            };
            3
        ];
        let rates = max_min_rates(&flows, cap_table(&[9.0]));
        for r in rates {
            assert!((r - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        let rs = unit(&[R0]);
        let flows = [
            FlowSpec {
                cap: 2.0,
                resources: &rs,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[10.0]));
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_link_example() {
        // Textbook max-min: flows A:{R0,R1}, B:{R1}, C:{R0,R2};
        // caps R0=10, R1=4, R2=6 → A=B=2, C=6.
        let ra = unit(&[R0, R1]);
        let rb = unit(&[R1]);
        let rc = unit(&[R0, R2]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &ra,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rb,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rc,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[10.0, 4.0, 6.0]));
        assert!((rates[0] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 6.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weighted_flow_consumes_proportionally_more() {
        // A weight-2 flow and a weight-1 flow on a 9-unit resource: rates
        // equalize at 3 (2·3 + 1·3 = 9).
        let heavy = [(R0, 2.0)];
        let light = [(R0, 1.0)];
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &heavy,
            },
            FlowSpec {
                cap: 100.0,
                resources: &light,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[9.0]));
        assert!((rates[0] - 3.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 3.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weighted_solo_flow_rate_is_capacity_over_weight() {
        let heavy = [(R0, 2.0)];
        let flows = [FlowSpec {
            cap: 100.0,
            resources: &heavy,
        }];
        let rates = max_min_rates(&flows, cap_table(&[10.0]));
        assert!((rates[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn flow_with_no_resources_runs_at_cap() {
        let flows = [FlowSpec {
            cap: 7.5,
            resources: &[],
        }];
        assert_eq!(max_min_rates(&flows, |_| unreachable!()), vec![7.5]);
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        // A faulted (down) rail presents capacity 0: flows crossing it get
        // rate 0 cleanly, while flows elsewhere fill as usual.
        let dead = unit(&[R0]);
        let live = unit(&[R1]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &dead,
            },
            FlowSpec {
                cap: 100.0,
                resources: &live,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[0.0, 10.0]));
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let rates = max_min_rates(&[], |_| 1.0);
        assert!(rates.is_empty());
    }

    fn check_feasible_and_maxmin(flows: &[FlowSpec<'_>], caps: &[f64], rates: &[f64]) {
        let mut used = vec![0.0; caps.len()];
        for (f, &r) in flows.iter().zip(rates) {
            assert!(r <= f.cap * (1.0 + 1e-6), "flow exceeds cap");
            for &(res, w) in f.resources {
                used[res.index()] += r * w;
            }
        }
        for (u, c) in used.iter().zip(caps) {
            assert!(*u <= c * (1.0 + 1e-6), "resource oversubscribed: {u} > {c}");
        }
        for (f, &r) in flows.iter().zip(rates) {
            let at_cap = (r - f.cap).abs() < 1e-6 * f.cap.max(1.0);
            let bottlenecked = f.resources.iter().any(|&(res, _)| {
                let c = caps[res.index()];
                (used[res.index()] - c).abs() < 1e-6 * c.max(1.0)
            });
            assert!(
                at_cap || bottlenecked,
                "flow with rate {r} is neither capped nor bottlenecked"
            );
        }
    }

    #[test]
    fn randomized_allocations_are_feasible_and_bottlenecked() {
        // Deterministic pseudo-random exercise (xorshift).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let nres = 1 + (next() % 6) as usize;
            let caps: Vec<f64> = (0..nres).map(|_| 1.0 + (next() % 100) as f64).collect();
            let nflows = 1 + (next() % 8) as usize;
            let resource_sets: Vec<Vec<(ResourceId, f64)>> = (0..nflows)
                .map(|_| {
                    let k = 1 + (next() % 3) as usize;
                    let mut v: Vec<ResourceId> = (0..k)
                        .map(|_| ResourceId((next() % nres as u64) as u32))
                        .collect();
                    v.sort();
                    v.dedup();
                    v.into_iter()
                        .map(|r| (r, 1.0 + (next() % 3) as f64))
                        .collect()
                })
                .collect();
            let flow_caps: Vec<f64> = (0..nflows).map(|_| 1.0 + (next() % 50) as f64).collect();
            let flows: Vec<FlowSpec> = resource_sets
                .iter()
                .zip(&flow_caps)
                .map(|(rs, &cap)| FlowSpec { cap, resources: rs })
                .collect();
            let rates = max_min_rates(&flows, |r| caps[r.index()]);
            check_feasible_and_maxmin(&flows, &caps, &rates);
        }
    }

    #[test]
    fn filler_is_reusable() {
        let mut filler = WaterFiller::new();
        let mut rates = Vec::new();
        let rs = unit(&[R0]);
        let flows = [FlowSpec {
            cap: 4.0,
            resources: &rs,
        }];
        filler.fill(&flows, |_| 10.0, &mut rates);
        assert_eq!(rates, vec![4.0]);
        let flows2 = vec![
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            };
            2
        ];
        filler.fill(&flows2, |_| 10.0, &mut rates);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }
}
