//! Bruck's Allgather.
//!
//! `⌈log₂ N⌉` steps for *any* N: each rank accumulates blocks in a rotated
//! temporary buffer (own block first), receiving from rank `r + 2ᵏ` in step
//! `k`, then un-rotates into the receive buffer with two local copies. The
//! preferred flat algorithm for small messages — the latency term dominates
//! and Bruck has the fewest steps without RD's power-of-two restriction.

use mha_sched::{Loc, ProcGrid, RankId};

use crate::ctx::{Built, Ctx};

/// Builds a Bruck Allgather.
pub fn build_bruck(grid: ProcGrid, msg: usize) -> Built {
    let mut ctx = Ctx::new(grid, msg, "flat-bruck");
    if ctx.is_degenerate() {
        return ctx.finish_degenerate();
    }
    emit_bruck(&mut ctx);
    ctx.finish()
}

/// Emits the Bruck rounds into an existing non-degenerate context.
pub(crate) fn emit_bruck(ctx: &mut Ctx) {
    let r = ctx.grid().nranks();
    let msg = ctx.msg;

    // Per-rank rotated staging buffer: slot j holds block (rank + j) mod N.
    let tmp: Vec<_> = (0..r)
        .map(|rank| {
            ctx.b
                .private_buf(RankId(rank), r as usize * msg, format!("bruck-tmp/{rank}"))
        })
        .collect();

    // Slot 0 = own contribution.
    for rank in 0..r {
        let rid = RankId(rank);
        let op = ctx.b.copy(
            rid,
            ctx.send_loc(rid),
            Loc::new(tmp[rank as usize], 0),
            msg,
            &[],
            0,
        );
        ctx.cur.advance(rid, op);
    }

    // Doubling rounds.
    let mut step = 1;
    let mut dist = 1u32;
    while dist < r {
        let cnt = dist.min(r - dist) as usize;
        let mut new_ops = Vec::with_capacity(r as usize);
        for me in 0..r {
            let peer = (me + dist) % r;
            let (src_r, dst_r) = (RankId(peer), RankId(me));
            let ch = ctx.channel_between(src_r, dst_r);
            let deps = {
                let mut d = ctx.cur.deps_of(dst_r);
                d.extend(ctx.cur.deps_of(src_r));
                d
            };
            let t = ctx.b.transfer(
                src_r,
                dst_r,
                Loc::new(tmp[peer as usize], 0),
                Loc::new(tmp[me as usize], dist as usize * msg),
                cnt * msg,
                ch,
                &deps,
                step,
            );
            new_ops.push(t);
        }
        for me in 0..r {
            ctx.cur.advance(RankId(me), new_ops[me as usize]);
        }
        dist *= 2;
        step += 1;
    }

    // Un-rotate: recv[(rank + j) mod N] = tmp[j].
    for rank in 0..r {
        let rid = RankId(rank);
        let head = (r - rank) as usize; // slots landing at recv[rank..r]
        let deps = ctx.cur.deps_of(rid);
        let c1 = ctx.b.copy(
            rid,
            Loc::new(tmp[rank as usize], 0),
            ctx.recv_block(rid, rank),
            head * msg,
            &deps,
            step,
        );
        ctx.cur.advance(rid, c1);
        if rank > 0 {
            let deps = ctx.cur.deps_of(rid);
            let c2 = ctx.b.copy(
                rid,
                Loc::new(tmp[rank as usize], head * msg),
                ctx.recv_block(rid, 0),
                rank as usize * msg,
                &deps,
                step,
            );
            ctx.cur.advance(rid, c2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn bruck_is_correct_for_any_rank_count() {
        for (nodes, ppn) in [
            (1, 1),
            (1, 2),
            (1, 3),
            (1, 5),
            (1, 8),
            (2, 3),
            (3, 2),
            (2, 8),
        ] {
            let built = build_bruck(ProcGrid::new(nodes, ppn), 20);
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn bruck_takes_ceil_log2_steps() {
        // 6 ranks → 3 doubling rounds (1, 2, 4) + init + unrotate.
        let built = build_bruck(ProcGrid::new(1, 6), 8);
        let max_transfer_step = built
            .sched
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, mha_sched::OpKind::Transfer { .. }))
            .map(|o| o.step)
            .max()
            .unwrap();
        assert_eq!(max_transfer_step, 3);
    }

    #[test]
    fn bruck_last_round_is_partial_for_non_powers() {
        // 5 ranks: rounds transfer 1, 2, then only 1 block (5 − 4).
        let built = build_bruck(ProcGrid::new(1, 5), 8);
        let sizes: Vec<usize> = built
            .sched
            .ops()
            .iter()
            .filter_map(|o| match o.kind {
                mha_sched::OpKind::Transfer { len, .. } if o.step == 3 => Some(len),
                _ => None,
            })
            .collect();
        assert!(!sizes.is_empty());
        assert!(sizes.iter().all(|&l| l == 8));
    }

    #[test]
    fn bruck_moves_same_volume_as_ring() {
        let grid = ProcGrid::new(1, 8);
        let b = build_bruck(grid, 8).sched.stats();
        let ring = crate::flat::build_ring(grid, 8).sched.stats();
        assert_eq!(b.cma_bytes + b.rail_bytes, ring.cma_bytes + ring.rail_bytes);
    }
}
