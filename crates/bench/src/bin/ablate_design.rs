//! Ablation over the MHA-inter design space: phase-2 algorithm × offload
//! policy × phase-2/3 overlap — quantifying how much each design choice
//! of Section 3.2 contributes. The six variants run as one campaign (see
//! `mha_bench::campaign`); the full design doubles as the baseline cell.

use mha_apps::report::Table;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(8, 16);
    let msg = 64 * 1024;
    let full = MhaInterConfig::default();
    let variants = [
        ("full design (ring, eq1 offload, overlap)", full),
        (
            "no phase-1 offload",
            MhaInterConfig {
                offload: Offload::None,
                ..full
            },
        ),
        (
            "no phase-2/3 overlap",
            MhaInterConfig {
                overlap: false,
                ..full
            },
        ),
        (
            "RD phase 2",
            MhaInterConfig {
                inter: InterAlgo::RecursiveDoubling,
                ..full
            },
        ),
        (
            "RD, no overlap, no offload",
            MhaInterConfig {
                inter: InterAlgo::RecursiveDoubling,
                offload: Offload::None,
                overlap: false,
            },
        ),
    ];
    let cells: Vec<CampaignPoint> = variants
        .iter()
        .map(|&(name, cfg)| {
            let key = ConfigKey::new(format!("mha_inter_design/{name}"), grid, msg, &spec);
            let spec2 = spec.clone();
            CampaignPoint::sim(name, key, spec.clone(), move || {
                build_mha_inter(grid, msg, cfg, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| format!("{e:?}"))
            })
        })
        .collect();
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let full_t = report.value(0);
    let mut t = Table::new(
        "Ablation: MHA-inter design choices, 8 nodes x 16 PPN, 64 KB per rank",
        "configuration",
        vec!["latency_us".into(), "vs_full_design_pct".into()],
    );
    for (i, (name, _)) in variants.iter().enumerate() {
        let lat = report.value(i);
        t.push(*name, vec![lat, (lat / full_t - 1.0) * 100.0]);
    }
    mha_bench::emit(&t, "ablate_design");
}
