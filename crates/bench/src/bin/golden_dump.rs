//! Prints the exact (bit-level) simulated makespans of the golden
//! workloads guarded by `tests/golden_latencies.rs`. Re-run this after an
//! *intentional* model change to regenerate the constants; an unintentional
//! difference is a regression in the scheduler → simulator pipeline.

use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();

    let mut rows: Vec<(String, f64)> = Vec::new();

    // Fig. 2 workload: flat Ring Allgather, 2 nodes x 2 PPN, 1 MB.
    let built = AllgatherAlgo::Ring
        .build(ProcGrid::new(2, 2), 1 << 20, &spec)
        .unwrap();
    rows.push((
        "fig02/ring_2x2_1M".into(),
        sim.run(&built.sched).unwrap().makespan,
    ));

    // Fig. 8 workload: MHA-inter with Ring vs RD phase 2, 16 nodes x 32 PPN.
    for (name, algo) in [
        ("ring", InterAlgo::Ring),
        ("rd", InterAlgo::RecursiveDoubling),
    ] {
        for msg in [4096usize, 64 * 1024] {
            let cfg = MhaInterConfig {
                inter: algo,
                offload: Offload::Auto,
                overlap: true,
            };
            let built = build_mha_inter(ProcGrid::new(16, 32), msg, cfg, &spec).unwrap();
            rows.push((
                format!("fig08/{name}_16x32_{msg}"),
                sim.run(&built.sched).unwrap().makespan,
            ));
        }
    }

    // Fig. 12 workload: 8 nodes x 32 PPN contestants at 4 KB.
    for (name, algo) in [
        ("ring", AllgatherAlgo::Ring),
        ("bruck", AllgatherAlgo::Bruck),
        ("mha", AllgatherAlgo::MhaInter(MhaInterConfig::default())),
    ] {
        let built = algo.build(ProcGrid::new(8, 32), 4096, &spec).unwrap();
        rows.push((
            format!("fig12/{name}_8x32_4096"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    // Fig. 11 workload: MHA-intra on one 16-process node, large messages.
    for msg in [256 * 1024usize, 4 << 20] {
        let built = AllgatherAlgo::MhaIntra {
            offload: Offload::Auto,
        }
        .build(ProcGrid::single_node(16), msg, &spec)
        .unwrap();
        rows.push((
            format!("fig11/mha_intra_1x16_{msg}"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    // Fig. 13 workload: 512 processes (16 x 32), ring baseline + MHA.
    for (name, algo) in [
        ("ring", AllgatherAlgo::Ring),
        ("mha", AllgatherAlgo::MhaInter(MhaInterConfig::default())),
    ] {
        let built = algo.build(ProcGrid::new(16, 32), 16 * 1024, &spec).unwrap();
        rows.push((
            format!("fig13/{name}_16x32_16384"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    // Fig. 14 workload: 1024 processes (32 x 32), medium + large MHA.
    for msg in [4096usize, 64 * 1024] {
        let built = AllgatherAlgo::MhaInter(MhaInterConfig::default())
            .build(ProcGrid::new(32, 32), msg, &spec)
            .unwrap();
        rows.push((
            format!("fig14/mha_32x32_{msg}"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    for (name, makespan) in rows {
        println!(
            "(\"{name}\", f64::from_bits(0x{:016x})), // {:.6} us",
            makespan.to_bits(),
            makespan * 1e6
        );
    }
}
