//! Water-filling allocator micro-benchmark: cost of one max-min fair
//! recomputation as component size grows (the per-event hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_simnet::{FlowSpec, ResourceId, WaterFiller};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_waterfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill");
    for flows in [8usize, 32, 128, 512] {
        let mut rng = StdRng::seed_from_u64(42);
        let nres = (flows / 2).max(4);
        let caps: Vec<f64> = (0..nres).map(|_| rng.gen_range(1.0..100.0)).collect();
        let sets: Vec<Vec<(ResourceId, f64)>> = (0..flows)
            .map(|_| {
                let k = rng.gen_range(1..=3usize);
                let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..nres as u32)).collect();
                v.sort_unstable();
                v.dedup();
                v.into_iter()
                    .map(|r| (ResourceId(r), rng.gen_range(1.0..2.0)))
                    .collect()
            })
            .collect();
        let flow_caps: Vec<f64> = (0..flows).map(|_| rng.gen_range(1.0..50.0)).collect();
        let specs: Vec<FlowSpec> = sets
            .iter()
            .zip(&flow_caps)
            .map(|(s, &cap)| FlowSpec { cap, resources: s })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &specs, |b, specs| {
            let mut filler = WaterFiller::new();
            let mut rates = Vec::new();
            b.iter(|| {
                filler.fill(specs, |r| caps[r.index()], &mut rates);
                std::hint::black_box(rates.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
