//! Simulation-driven tuning of the MHA design space.
//!
//! Section 5.3: "The numbers shown are tuned numbers between these two
//! algorithms" — the paper picks Ring or Recursive Doubling per message
//! size. [`select_inter_algo`] reproduces that tuning loop by pricing both
//! variants on the simulator and keeping the winner; combined with the
//! Figure 5 offload tuner ([`crate::mha::tune_offload`]) this is the full
//! autotuning story of the paper.
//!
//! This is the *online* two-candidate selector. The offline search over
//! the whole design space — every [`crate::AlgoConfig`] knob, pruned by
//! successive halving and served from a versioned table — lives in the
//! `mha-tune` crate on top of [`crate::TunedTable`]. Both price candidates
//! through the same [`crate::build`] dispatcher.

use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, SimError, Simulator};

use crate::config::{build, AlgoConfig};
use crate::ctx::{BuildError, Built};
use crate::mha::{InterAlgo, Offload};

/// The outcome of one Ring-vs-RD tuning decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChoice {
    /// The faster phase-2 algorithm at this point.
    pub algo: InterAlgo,
    /// Simulated latency of the Ring variant (µs).
    pub ring_us: f64,
    /// Simulated latency of the RD variant (µs), if buildable
    /// (`None` for non-power-of-two node counts).
    pub rd_us: Option<f64>,
}

/// An error from the tuning loop.
#[derive(Debug)]
pub enum TuneError {
    /// A candidate failed to build.
    Build(BuildError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Build(e) => write!(f, "build failed: {e}"),
            TuneError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<BuildError> for TuneError {
    fn from(e: BuildError) -> Self {
        TuneError::Build(e)
    }
}

impl From<SimError> for TuneError {
    fn from(e: SimError) -> Self {
        TuneError::Sim(e)
    }
}

/// Prices both phase-2 algorithms on the simulator and returns the winner
/// (RD is skipped for non-power-of-two node counts, where only Ring is
/// legal).
pub fn select_inter_algo(
    grid: ProcGrid,
    msg: usize,
    offload: Offload,
    spec: &ClusterSpec,
) -> Result<InterChoice, TuneError> {
    let sim = Simulator::new(spec.clone())?;
    let ring_cfg = AlgoConfig {
        inter: InterAlgo::Ring,
        offload,
        ..AlgoConfig::default()
    };
    let ring = build(&ring_cfg, grid, msg, spec)?;
    let ring_us = sim.run(&ring.sched)?.latency_us();
    if !grid.nodes().is_power_of_two() {
        return Ok(InterChoice {
            algo: InterAlgo::Ring,
            ring_us,
            rd_us: None,
        });
    }
    let rd_cfg = AlgoConfig {
        inter: InterAlgo::RecursiveDoubling,
        offload,
        ..AlgoConfig::default()
    };
    let rd = build(&rd_cfg, grid, msg, spec)?;
    let rd_us = sim.run(&rd.sched)?.latency_us();
    let algo = if rd_us < ring_us {
        InterAlgo::RecursiveDoubling
    } else {
        InterAlgo::Ring
    };
    Ok(InterChoice {
        algo,
        ring_us,
        rd_us: Some(rd_us),
    })
}

/// Builds the *tuned* MHA Allgather at this point — the configuration the
/// paper reports in Figures 12–14.
pub fn build_tuned_mha(
    grid: ProcGrid,
    msg: usize,
    spec: &ClusterSpec,
) -> Result<(Built, InterChoice), TuneError> {
    let choice = select_inter_algo(grid, msg, Offload::Auto, spec)?;
    let cfg = AlgoConfig {
        inter: choice.algo,
        ..AlgoConfig::default()
    };
    let built = build(&cfg, grid, msg, spec)?;
    Ok((built, choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_picks_rd_small_and_ring_large() {
        // The Figure 8 crossover.
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(16, 8);
        let small = select_inter_algo(grid, 16, Offload::Auto, &spec).unwrap();
        assert_eq!(small.algo, InterAlgo::RecursiveDoubling, "{small:?}");
        let large = select_inter_algo(grid, 256 * 1024, Offload::Auto, &spec).unwrap();
        assert_eq!(large.algo, InterAlgo::Ring, "{large:?}");
    }

    #[test]
    fn non_power_of_two_nodes_forces_ring() {
        let spec = ClusterSpec::thor();
        let choice = select_inter_algo(ProcGrid::new(3, 4), 1024, Offload::Auto, &spec).unwrap();
        assert_eq!(choice.algo, InterAlgo::Ring);
        assert!(choice.rd_us.is_none());
    }

    #[test]
    fn tuned_build_matches_reported_choice() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(4, 4);
        let (built, choice) = build_tuned_mha(grid, 64 * 1024, &spec).unwrap();
        let name = built.sched.name().to_string();
        match choice.algo {
            InterAlgo::Ring => assert!(name.contains("ring"), "{name}"),
            InterAlgo::RecursiveDoubling => assert!(name.contains("rd"), "{name}"),
        }
        // The tuned latency is the min of the two candidates.
        if let Some(rd) = choice.rd_us {
            let best = choice.ring_us.min(rd);
            let sim = Simulator::new(spec).unwrap();
            let got = sim.run(&built.sched).unwrap().latency_us();
            assert!((got - best).abs() < 1e-6 * best);
        }
    }
}
