//! Successive-halving search over the design space, one tuning point at a
//! time, pruned on a proxy grid and decided on the true grid.
//!
//! Per [`TunePoint`] the search runs two rungs:
//!
//! * **Rung 0 (explore, cheap)**: every candidate from
//!   [`crate::space::candidates`] is priced on a quarter-size **proxy
//!   grid** ([`proxy_grid`] — same ppn, `max(2, nodes/4)` nodes), and only
//!   the top `⌈n/4⌉` survive. Latency ranks transfer well across node
//!   counts at fixed ppn (the Figure 8 crossover moves, but the ordering
//!   of nearby variants is stable), and a wrong prune can only cost
//!   optimality — never correctness — because of rung 1's floor.
//! * **Rung 1 (decide, exact)**: the survivors **plus every untuned
//!   baseline family** ([`crate::space::untuned_families`]) are priced on
//!   the true grid; the winner is the argmin. Including the untuned
//!   families makes `tuned ≤ untuned` a structural invariant of the
//!   emitted table, not an empirical hope — CI asserts it anyway.
//!
//! Degraded points (`rails_up <` the spec's rail count) price every
//! candidate under a rail-down fault timeline from time 0, with MHA-inter
//! candidates *built* rail-aware (`down_rails`), reproducing the repo's
//! degraded-operation story. All pricing goes through the campaign runner
//! on one shared schedule cache, so repeated configs (across rungs and
//! points) build exactly once and results are worker-count independent.

use mha_bench::campaign::{
    run_campaign_with, CampaignConfig, CampaignPoint, ConfigKey, ScheduleCache,
};
use mha_collectives::{AlgoConfig, TableKey, TunedTable};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, FaultEvent, FaultKind, FaultSpec};

use crate::space::{candidates, dedup_by_digest, untuned_families};

/// One point the table is tuned at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunePoint {
    /// The process grid.
    pub grid: ProcGrid,
    /// Per-rank contribution in bytes (one representative per
    /// [`mha_collectives::msg_bucket`]).
    pub msg: usize,
    /// Rails up at this point (`spec.rails` = healthy).
    pub rails_up: u8,
}

/// The evaluation grids of Figures 12–14: 8/16/32 nodes × 32 PPN.
pub fn fig_grids() -> Vec<ProcGrid> {
    vec![
        ProcGrid::new(8, 32),
        ProcGrid::new(16, 32),
        ProcGrid::new(32, 32),
    ]
}

/// The full point set the shipped table is tuned on: every Figure 12–14
/// grid × the medium + large message sweeps (one size per power-of-two
/// bucket) × healthy and one-rail-degraded fabrics.
pub fn full_points(spec: &ClusterSpec) -> Vec<TunePoint> {
    let mut sizes = mha_bench::medium_sizes();
    sizes.extend(mha_bench::large_sizes());
    let mut out = Vec::new();
    for grid in fig_grids() {
        for &msg in &sizes {
            for rails_up in [spec.rails, spec.rails.saturating_sub(1).max(1)] {
                out.push(TunePoint {
                    grid,
                    msg,
                    rails_up,
                });
            }
        }
    }
    dedup_points(out)
}

/// A reduced point set for CI smoke runs: the Figure 12 grid at one
/// medium and one large size, healthy fabric plus one degraded point.
pub fn reduced_points(spec: &ClusterSpec) -> Vec<TunePoint> {
    let grid = ProcGrid::new(8, 32);
    let mut out = vec![
        TunePoint {
            grid,
            msg: 256,
            rails_up: spec.rails,
        },
        TunePoint {
            grid,
            msg: 256 * 1024,
            rails_up: spec.rails,
        },
        TunePoint {
            grid,
            msg: 64 * 1024,
            rails_up: spec.rails.saturating_sub(1).max(1),
        },
    ];
    out = dedup_points(out);
    out
}

fn dedup_points(points: Vec<TunePoint>) -> Vec<TunePoint> {
    let mut seen = std::collections::HashSet::new();
    points
        .into_iter()
        .filter(|p| {
            seen.insert((
                p.grid.nodes(),
                p.grid.ppn(),
                mha_collectives::msg_bucket(p.msg),
                p.rails_up,
            ))
        })
        .collect()
}

/// The rung-0 proxy grid: same ppn, a quarter of the nodes (floor 2) —
/// cheap enough to price the whole space, node-structured enough to rank
/// inter-node variants.
pub fn proxy_grid(grid: ProcGrid) -> ProcGrid {
    ProcGrid::new((grid.nodes() / 4).max(2), grid.ppn())
}

/// What the search decided at one point, with the evidence.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// The tuning point.
    pub point: TunePoint,
    /// The winning config (the table entry).
    pub winner: AlgoConfig,
    /// Simulated latency of the winner on the true grid (µs).
    pub tuned_us: f64,
    /// Each untuned family's latency on the true grid (µs), in
    /// [`untuned_families`] order (entries invalid at this grid are
    /// `None`).
    pub untuned_us: Vec<(&'static str, Option<f64>)>,
    /// Candidates priced on the proxy grid (rung 0).
    pub rung0: usize,
    /// Candidates priced on the true grid (rung 1).
    pub rung1: usize,
}

impl PointSummary {
    /// The best (lowest) untuned latency at this point.
    pub fn best_untuned_us(&self) -> f64 {
        self.untuned_us
            .iter()
            .filter_map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The search product: the table plus per-point evidence.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The tuned table (spec digest stamped, ready to save).
    pub table: TunedTable,
    /// Per-point decisions, in input order.
    pub summaries: Vec<PointSummary>,
}

/// The rails that are down when `rails_up` of `total` rails survive —
/// highest indices fail first (rail 0 is the last survivor).
pub fn down_rails(rails_up: u8, total: u8) -> Vec<u8> {
    (rails_up.min(total)..total).collect()
}

/// The pricing timeline of a degraded point: every down rail fails
/// fabric-wide at time 0. `None` when all rails are up.
pub fn fault_timeline(down: &[u8]) -> Option<FaultSpec> {
    let (&first, rest) = down.split_first()?;
    let mut f = FaultSpec::rail_down_at(first, 0.0);
    for &rail in rest {
        f = f.with_event(FaultEvent {
            time: 0.0,
            rail,
            node: None,
            kind: FaultKind::Down,
        });
    }
    Some(f)
}

/// Prices `configs` at `(grid, msg)` under an optional fault timeline:
/// one campaign, one shared cache, one latency per config (µs). Shared by
/// the search rungs, the `ablate_tune` binary and the serving tests.
pub fn price_configs(
    configs: &[AlgoConfig],
    grid: ProcGrid,
    msg: usize,
    faults: Option<&FaultSpec>,
    spec: &ClusterSpec,
    cfg: &CampaignConfig,
    cache: &ScheduleCache,
) -> Result<Vec<f64>, String> {
    let points: Vec<CampaignPoint> = configs
        .iter()
        .map(|c| {
            let key = ConfigKey::for_algo(c, grid, msg, spec);
            let sim_spec = c.effective_spec(spec).into_owned();
            let build_spec = sim_spec.clone();
            let c = c.clone();
            CampaignPoint::sim_faulty(
                c.family.token(),
                key,
                sim_spec,
                faults.cloned(),
                move || {
                    mha_collectives::build(&c, grid, msg, &build_spec)
                        .map(|b| b.sched)
                        .map_err(|e| e.to_string())
                },
            )
        })
        .collect();
    let report = run_campaign_with(&points, cfg, cache)?;
    Ok((0..configs.len()).map(|i| report.value(i)).collect())
}

/// Deterministic best index: lowest latency, ties broken by config
/// digest so the result is independent of candidate assembly order.
fn argmin(prices: &[f64], configs: &[AlgoConfig]) -> usize {
    (0..prices.len())
        .min_by(|&a, &b| {
            prices[a]
                .total_cmp(&prices[b])
                .then_with(|| configs[a].digest().cmp(&configs[b].digest()))
        })
        .expect("non-empty candidate set")
}

/// Runs the two-rung search over `points` and assembles the tuned table.
///
/// # Errors
///
/// A candidate that fails to build or simulate aborts the search with the
/// campaign runner's error string (candidates are pre-filtered by
/// [`AlgoConfig::valid_for`], so this indicates a bug, not a bad point).
pub fn run_search(
    points: &[TunePoint],
    spec: &ClusterSpec,
    cfg: &CampaignConfig,
) -> Result<SearchOutcome, String> {
    let cache = ScheduleCache::new(cfg.cache);
    let mut table = TunedTable::new(spec.digest());
    let mut summaries = Vec::with_capacity(points.len());
    for &point in points {
        let down = down_rails(point.rails_up, spec.rails);
        let faults = fault_timeline(&down);
        // Rung 0: full space on the proxy grid.
        let proxy = proxy_grid(point.grid);
        let pool: Vec<AlgoConfig> = candidates(point.grid, &down)
            .into_iter()
            .filter(|c| c.valid_for(proxy))
            .collect();
        let p0 = price_configs(&pool, proxy, point.msg, faults.as_ref(), spec, cfg, &cache)?;
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            p0[a]
                .total_cmp(&p0[b])
                .then_with(|| pool[a].digest().cmp(&pool[b].digest()))
        });
        let keep = pool.len().div_ceil(4);
        let mut finalists: Vec<AlgoConfig> =
            order[..keep].iter().map(|&i| pool[i].clone()).collect();
        // Rung 1: survivors ∪ every untuned family, on the true grid. The
        // untuned floor makes the winner ≤ untuned by construction.
        let untuned: Vec<(&'static str, AlgoConfig)> = untuned_families()
            .into_iter()
            .filter(|(_, c)| c.valid_for(point.grid))
            .collect();
        finalists.extend(untuned.iter().map(|(_, c)| c.clone()));
        let finalists = dedup_by_digest(finalists);
        let p1 = price_configs(
            &finalists,
            point.grid,
            point.msg,
            faults.as_ref(),
            spec,
            cfg,
            &cache,
        )?;
        let win = argmin(&p1, &finalists);
        let by_digest: std::collections::HashMap<u64, f64> = finalists
            .iter()
            .zip(&p1)
            .map(|(c, &v)| (c.digest(), v))
            .collect();
        let untuned_us: Vec<(&'static str, Option<f64>)> = untuned_families()
            .into_iter()
            .map(|(label, c)| (label, by_digest.get(&c.digest()).copied()))
            .collect();
        table.insert(
            TableKey::for_query(point.grid, point.msg, point.rails_up),
            finalists[win].clone(),
        );
        summaries.push(PointSummary {
            point,
            winner: finalists[win].clone(),
            tuned_us: p1[win],
            untuned_us,
            rung0: pool.len(),
            rung1: finalists.len(),
        });
    }
    Ok(SearchOutcome { table, summaries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_rails_fail_from_the_top() {
        assert_eq!(down_rails(2, 2), Vec::<u8>::new());
        assert_eq!(down_rails(1, 2), vec![1]);
        assert_eq!(down_rails(0, 2), vec![0, 1]);
        assert_eq!(down_rails(3, 2), Vec::<u8>::new());
    }

    #[test]
    fn proxy_grid_quarters_nodes_with_a_floor() {
        assert_eq!(proxy_grid(ProcGrid::new(32, 32)), ProcGrid::new(8, 32));
        assert_eq!(proxy_grid(ProcGrid::new(8, 32)), ProcGrid::new(2, 32));
        assert_eq!(proxy_grid(ProcGrid::new(4, 16)), ProcGrid::new(2, 16));
    }

    #[test]
    fn point_sets_bucket_unique_and_cover_the_fig_grids() {
        let spec = ClusterSpec::thor();
        let full = full_points(&spec);
        // 3 grids × 11 sizes × 2 rail states, all distinct buckets.
        assert_eq!(full.len(), 3 * 11 * 2);
        let reduced = reduced_points(&spec);
        assert!(reduced.len() <= full.len());
        assert!(reduced.iter().all(|p| p.grid == ProcGrid::new(8, 32)));
    }

    #[test]
    fn search_winner_never_loses_to_an_untuned_family() {
        // One cheap point end-to-end: the structural invariant holds and
        // the table serves the winner back.
        let spec = ClusterSpec::thor();
        let points = [TunePoint {
            grid: ProcGrid::new(4, 4),
            msg: 4096,
            rails_up: spec.rails,
        }];
        let out = run_search(&points, &spec, &CampaignConfig::default()).unwrap();
        assert_eq!(out.table.len(), 1);
        let s = &out.summaries[0];
        assert!(
            s.tuned_us <= s.best_untuned_us(),
            "tuned {} > best untuned {}",
            s.tuned_us,
            s.best_untuned_us()
        );
        let served = out.table.lookup(points[0].grid, points[0].msg, spec.rails);
        assert_eq!(served, s.winner);
    }

    #[test]
    fn degraded_points_tune_rail_aware_candidates() {
        let spec = ClusterSpec::thor();
        let points = [TunePoint {
            grid: ProcGrid::new(4, 4),
            msg: 16 * 1024,
            rails_up: 1,
        }];
        let out = run_search(&points, &spec, &CampaignConfig::default()).unwrap();
        let s = &out.summaries[0];
        assert!(s.tuned_us <= s.best_untuned_us());
        // The winner is either rail-aware MHA or a library pick — never an
        // MHA config that still schedules the dead rail.
        if s.winner.family == mha_collectives::Family::MhaInter {
            assert_eq!(s.winner.down_rails, vec![1]);
        }
    }
}
