//! Merging many schedules into one shared-cluster schedule.
//!
//! The multi-tenant traffic layer prices K concurrent jobs by *merging*
//! their (already [relocated](crate::relocate_onto)) schedules into a
//! single DAG over the cluster grid and handing that to one simulator
//! instance — cross-job contention then emerges from the ordinary
//! max-min water-filler with no engine changes. Each input keeps a dense
//! contiguous op-id span in the output, which is the per-job namespace:
//! probes attribute an op (and its flows) to job `k` by binary-searching
//! the spans, and the job's completion is the max end time over its span.
//!
//! Two arrival shapes map onto the merge:
//!
//! * **open loop** — a part with `after: None` keeps its roots as roots of
//!   the merged DAG; its `release` is the job's absolute arrival time.
//! * **closed loop** — a part with `after: Some(p)` has every root gain
//!   dependencies on part `p`'s sinks, so it starts when its predecessor
//!   finishes; its `release` is then the client's think time.
//!
//! Merging a single part with zero release reproduces the input schedule
//! *exactly* (same ops, buffers, ids, labels), which is what makes the
//! solo-vs-merged bit-equality oracle in `mha-conformance` hold trivially
//! for the K = 1 case and meaningfully for K > 1 disjoint placements.

use crate::buffer::Loc;
use crate::grid::ProcGrid;
use crate::ids::{BufId, OpId};
use crate::op::OpKind;
use crate::schedule::Schedule;

/// One job's contribution to a merged schedule.
#[derive(Debug, Clone, Copy)]
pub struct MergePart<'a> {
    /// The job's schedule, already on the shared cluster grid.
    pub sched: &'a Schedule,
    /// Release delay applied to the part's roots: absolute arrival time
    /// for unchained parts, think time past the predecessor for chained
    /// ones. Added on top of any release the part already carries.
    pub release: f64,
    /// Index of an **earlier** part whose completion gates this one.
    pub after: Option<usize>,
}

/// A merged schedule plus the op-id span each part occupies in it.
#[derive(Debug, Clone)]
pub struct Merged {
    /// The combined schedule over the cluster grid.
    pub schedule: Schedule,
    /// `spans[k]` is the half-open op-id range of part `k`; spans are
    /// contiguous, ascending, and cover `0..n_ops`.
    pub spans: Vec<std::ops::Range<u32>>,
}

impl Merged {
    /// The part owning op `id`, by binary search over the spans.
    pub fn part_of(&self, id: OpId) -> usize {
        match self.spans.binary_search_by(|s| {
            if id.0 < s.start {
                std::cmp::Ordering::Greater
            } else if id.0 >= s.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(k) => k,
            Err(_) => panic!("op {} outside every span", id.0),
        }
    }
}

/// Why a merge was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No parts were given.
    Empty,
    /// Part `part` is on a grid other than the cluster grid (relocate it
    /// first).
    GridMismatch {
        /// Offending part index.
        part: usize,
    },
    /// Part `part` chains on `after`, which is not an earlier part.
    BadChain {
        /// Offending part index.
        part: usize,
        /// The out-of-order (or self) predecessor it names.
        after: usize,
    },
    /// A release delay is negative or non-finite.
    BadRelease {
        /// Offending part index.
        part: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "merge of zero parts"),
            MergeError::GridMismatch { part } => {
                write!(f, "part {part} is not on the cluster grid")
            }
            MergeError::BadChain { part, after } => {
                write!(f, "part {part} chains on non-earlier part {after}")
            }
            MergeError::BadRelease { part } => {
                write!(f, "part {part} has a negative or non-finite release")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Ops of `sch` no other op depends on — the part's completion frontier.
fn sinks(sch: &Schedule) -> Vec<u32> {
    let mut has_succ = vec![false; sch.ops().len()];
    for op in sch.ops() {
        for d in &op.deps {
            has_succ[d.index()] = true;
        }
    }
    (0..sch.ops().len() as u32)
        .filter(|&i| !has_succ[i as usize])
        .collect()
}

/// Merges `parts` into one schedule over `cluster`, offsetting every op
/// and buffer id, wiring chained parts' roots onto their predecessor's
/// sinks, and recording each part's release delay on its roots.
pub fn merge_parts(cluster: ProcGrid, parts: &[MergePart]) -> Result<Merged, MergeError> {
    if parts.is_empty() {
        return Err(MergeError::Empty);
    }
    for (k, p) in parts.iter().enumerate() {
        if p.sched.grid() != &cluster {
            return Err(MergeError::GridMismatch { part: k });
        }
        if let Some(a) = p.after {
            if a >= k {
                return Err(MergeError::BadChain { part: k, after: a });
            }
        }
        if !p.release.is_finite() || p.release < 0.0 {
            return Err(MergeError::BadRelease { part: k });
        }
    }

    let n_ops: usize = parts.iter().map(|p| p.sched.ops().len()).sum();
    let n_bufs: usize = parts.iter().map(|p| p.sched.buffers().len()).sum();
    let mut buffers = Vec::with_capacity(n_bufs);
    let mut ops = Vec::with_capacity(n_ops);
    let mut release = vec![0.0f64; n_ops];
    let mut any_release = false;
    let mut spans = Vec::with_capacity(parts.len());
    // Global sink ids per already-merged part, for chaining.
    let mut part_sinks: Vec<Vec<OpId>> = Vec::with_capacity(parts.len());

    for p in parts {
        let op_off = ops.len() as u32;
        let buf_off = buffers.len() as u32;
        let remap_loc = |l: Loc| Loc {
            buf: BufId(l.buf.0 + buf_off),
            offset: l.offset,
        };

        for b in p.sched.buffers() {
            let mut b = b.clone();
            b.id = BufId(b.id.0 + buf_off);
            buffers.push(b);
        }

        part_sinks.push(
            sinks(p.sched)
                .into_iter()
                .map(|i| OpId(i + op_off))
                .collect(),
        );

        for op in p.sched.ops() {
            let gid = OpId(op.id.0 + op_off);
            let mut deps: Vec<OpId> = op.deps.iter().map(|d| OpId(d.0 + op_off)).collect();
            let is_root = deps.is_empty();
            if is_root {
                if let Some(a) = p.after {
                    deps.extend_from_slice(&part_sinks[a]);
                }
            }
            let mut rel = p.sched.release_of(op.id);
            if is_root {
                rel += p.release;
            }
            if rel > 0.0 {
                any_release = true;
            }
            release[gid.index()] = rel;

            let mut op = op.clone();
            op.id = gid;
            op.deps = deps;
            op.kind = match op.kind {
                OpKind::Transfer {
                    src_rank,
                    dst_rank,
                    src,
                    dst,
                    len,
                    channel,
                } => OpKind::Transfer {
                    src_rank,
                    dst_rank,
                    src: remap_loc(src),
                    dst: remap_loc(dst),
                    len,
                    channel,
                },
                OpKind::Copy {
                    actor,
                    src,
                    dst,
                    len,
                } => OpKind::Copy {
                    actor,
                    src: remap_loc(src),
                    dst: remap_loc(dst),
                    len,
                },
                OpKind::Reduce {
                    actor,
                    acc,
                    operand,
                    len,
                    dtype,
                    op,
                } => OpKind::Reduce {
                    actor,
                    acc: remap_loc(acc),
                    operand: remap_loc(operand),
                    len,
                    dtype,
                    op,
                },
                OpKind::Compute { actor, flops } => OpKind::Compute { actor, flops },
            };
            ops.push(op);
        }
        spans.push(op_off..ops.len() as u32);
    }

    let name = if parts.len() == 1 {
        parts[0].sched.name().to_string()
    } else {
        format!("traffic[{} jobs]", parts.len())
    };
    let schedule = Schedule::from_parts(
        cluster,
        buffers,
        ops,
        name,
        if any_release { release } else { Vec::new() },
    );
    Ok(Merged { schedule, spans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::ids::{NodeId, RankId};
    use crate::op::Channel;

    fn job(grid: ProcGrid, src: u32, dst: u32, name: &str) -> Schedule {
        let mut b = ScheduleBuilder::new(grid, name);
        let s = b.private_buf(RankId(src), 128, "s");
        let d = b.private_buf(RankId(dst), 128, "d");
        let shm = b.shared_buf(NodeId(grid.node_of(RankId(dst)).0), 128, "shm");
        let t = b.transfer(
            RankId(src),
            RankId(dst),
            Loc::new(s, 0),
            Loc::new(d, 0),
            128,
            Channel::AllRails,
            &[],
            0,
        );
        b.copy(RankId(dst), Loc::new(d, 0), Loc::new(shm, 0), 128, &[t], 1);
        b.finish()
    }

    #[test]
    fn single_part_zero_release_is_identity() {
        let grid = ProcGrid::new(4, 2);
        let sch = job(grid, 0, 2, "solo");
        let m = merge_parts(
            grid,
            &[MergePart {
                sched: &sch,
                release: 0.0,
                after: None,
            }],
        )
        .unwrap();
        assert_eq!(m.spans, vec![0..2]);
        assert!(!m.schedule.has_releases());
        assert_eq!(
            format!("{:?}", m.schedule.ops()),
            format!("{:?}", sch.ops())
        );
        assert_eq!(
            format!("{:?}", m.schedule.buffers()),
            format!("{:?}", sch.buffers())
        );
        assert_eq!(m.schedule.name(), "solo");
    }

    #[test]
    fn ids_deps_and_locs_are_offset() {
        let grid = ProcGrid::new(4, 2);
        let a = job(grid, 0, 2, "a");
        let b = job(grid, 4, 6, "b");
        let m = merge_parts(
            grid,
            &[
                MergePart {
                    sched: &a,
                    release: 0.0,
                    after: None,
                },
                MergePart {
                    sched: &b,
                    release: 1e-3,
                    after: None,
                },
            ],
        )
        .unwrap();
        assert_eq!(m.spans, vec![0..2, 2..4]);
        assert_eq!(m.part_of(OpId(1)), 0);
        assert_eq!(m.part_of(OpId(2)), 1);
        let sch = &m.schedule;
        assert_eq!(sch.ops().len(), 4);
        assert_eq!(sch.buffers().len(), 6);
        // Part b's copy depends on part b's transfer, not part a's.
        assert_eq!(sch.ops()[3].deps, vec![OpId(2)]);
        match &sch.ops()[2].kind {
            OpKind::Transfer { src, dst, .. } => {
                assert_eq!(src.buf, BufId(3));
                assert_eq!(dst.buf, BufId(4));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Open-loop arrival landed on part b's root only.
        assert_eq!(sch.release_of(OpId(2)), 1e-3);
        assert_eq!(sch.release_of(OpId(0)), 0.0);
        assert_eq!(sch.release_of(OpId(3)), 0.0);
        assert!(crate::validate(sch, Some(2)).is_ok());
    }

    #[test]
    fn chained_parts_depend_on_predecessor_sinks() {
        let grid = ProcGrid::new(4, 2);
        let a = job(grid, 0, 2, "a");
        let b = job(grid, 0, 2, "b");
        let m = merge_parts(
            grid,
            &[
                MergePart {
                    sched: &a,
                    release: 0.0,
                    after: None,
                },
                MergePart {
                    sched: &b,
                    release: 5e-4,
                    after: Some(0),
                },
            ],
        )
        .unwrap();
        let sch = &m.schedule;
        // Part a's sink is its copy (op 1); part b's root (op 2) now
        // depends on it, with the think time as a relative release.
        assert_eq!(sch.ops()[2].deps, vec![OpId(1)]);
        assert_eq!(sch.release_of(OpId(2)), 5e-4);
        assert!(crate::validate(sch, Some(2)).is_ok());
    }

    #[test]
    fn bad_merges_are_rejected() {
        let grid = ProcGrid::new(4, 2);
        let a = job(grid, 0, 2, "a");
        let other = job(ProcGrid::new(2, 2), 0, 2, "o");
        assert_eq!(merge_parts(grid, &[]).unwrap_err(), MergeError::Empty);
        assert_eq!(
            merge_parts(
                grid,
                &[MergePart {
                    sched: &other,
                    release: 0.0,
                    after: None
                }]
            )
            .unwrap_err(),
            MergeError::GridMismatch { part: 0 }
        );
        assert_eq!(
            merge_parts(
                grid,
                &[MergePart {
                    sched: &a,
                    release: 0.0,
                    after: Some(0)
                }]
            )
            .unwrap_err(),
            MergeError::BadChain { part: 0, after: 0 }
        );
        assert_eq!(
            merge_parts(
                grid,
                &[MergePart {
                    sched: &a,
                    release: -1.0,
                    after: None
                }]
            )
            .unwrap_err(),
            MergeError::BadRelease { part: 0 }
        );
    }
}
