//! Figure 1: bandwidth comparison between intra-node communication (CMA)
//! and inter-node communication with one and two HCAs, 8 KB – 4 MB.

use mha_apps::report::{fmt_bytes, Table};
use mha_simnet::{pt2pt_bandwidth_mbps, size_sweep, ClusterSpec, Placement, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let window = 64;
    let two = Simulator::new(ClusterSpec::thor()).unwrap();
    let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let mut t = Table::new(
        "Figure 1: pt2pt bandwidth (MB/s), intra-node CMA vs inter-node 1/2 HCAs",
        "msg_bytes",
        vec![
            "intra-node CMA".into(),
            "inter-node 1 HCA".into(),
            "inter-node 2 HCAs".into(),
        ],
    );
    for m in size_sweep(8 * 1024, 4 << 20) {
        let intra = pt2pt_bandwidth_mbps(&two, Placement::IntraNode, m, window).unwrap();
        let inter1 = pt2pt_bandwidth_mbps(&one, Placement::InterNode, m, window).unwrap();
        let inter2 = pt2pt_bandwidth_mbps(&two, Placement::InterNode, m, window).unwrap();
        t.push(fmt_bytes(m), vec![intra, inter1, inter2]);
    }
    mha_bench::emit(&t, "fig01_bandwidth");
    mha_bench::emit_run_summary(
        &two,
        &mha_bench::pt2pt_rails_schedule(4 << 20),
        "fig01_bandwidth",
    );
}
