//! Per-op completion journaling and the seeded kill harness.
//!
//! The frozen schedule is immutable, so the *only* state a crashed
//! execution needs to resume is which ops retired — the
//! [`mha_sched::FrozenSchedule`] indegree vector replayed over that set is
//! exactly the recoverable frontier (see
//! [`mha_sched::ReadySet::from_completed`]). A [`CompletionJournal`]
//! records completions in retire order as execution proceeds; the executors
//! append an op only *after* its byte effects are fully applied and
//! *before* its successors are released, so at any crash point the journal
//! is dependency-closed and every journaled op's effects are durable in the
//! [`crate::BufferStore`]. Resume therefore never re-runs a journaled op —
//! which is what makes recovery byte-exact even for non-idempotent
//! `Reduce` ops.
//!
//! [`KillPlan`] is the deterministic crash injector: named worker threads
//! die (via the same contained-panic machinery that reports
//! [`crate::ExecError::WorkerPanicked`]) once the global retired-op counter
//! passes their seeded thresholds, the run aborts with
//! [`crate::ExecError::Killed`], and `resume_threaded` finishes the
//! unfinished suffix against the same buffers.

use parking_lot::Mutex;

use mha_sched::FrozenSchedule;

/// A malformed completion journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// An entry names an op the schedule does not contain.
    OpOutOfRange {
        /// The offending entry.
        op: u32,
        /// Ops in the schedule.
        n_ops: usize,
    },
    /// An op appears more than once.
    Duplicate {
        /// The op journaled twice.
        op: u32,
    },
    /// An entry claims completion of an op before one of its dependencies —
    /// impossible under the retire-order append discipline, so the journal
    /// does not describe any real execution.
    DepIncomplete {
        /// The op claimed complete.
        op: u32,
        /// Its dependency that is not complete at that point.
        dep: u32,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::OpOutOfRange { op, n_ops } => {
                write!(f, "journal entry {op} out of range ({n_ops} ops)")
            }
            JournalError::Duplicate { op } => write!(f, "op {op} journaled twice"),
            JournalError::DepIncomplete { op, dep } => {
                write!(f, "journal claims op {op} before its dependency {dep}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// A sink receiving op completions as they retire. Implementations must be
/// callable from many worker threads at once (`&self`, `Sync`).
pub trait JournalSink: Sync {
    /// Called once per op, after its effects are fully applied to the
    /// buffers and before any successor is released.
    fn op_retired(&self, op: u32);
}

/// An append-only per-op completion journal in retire order.
///
/// Appends are serialized by a mutex — retire order is then a valid
/// topological order of the completed set, because the executors journal an
/// op before releasing its successors. The journal survives the run that
/// wrote it: pass it to `resume_single` / `resume_threaded` to execute only
/// the unfinished suffix (appending the newly retired ops to the same
/// journal), or to [`CompletionJournal::validate`] to audit it first.
#[derive(Debug)]
pub struct CompletionJournal {
    n_ops: usize,
    entries: Mutex<Vec<u32>>,
}

impl CompletionJournal {
    /// An empty journal sized for `sch`.
    pub fn for_schedule(sch: &FrozenSchedule) -> Self {
        CompletionJournal {
            n_ops: sch.n_ops(),
            entries: Mutex::new(Vec::with_capacity(sch.n_ops())),
        }
    }

    /// A journal pre-loaded with `entries` (e.g. read back from storage).
    /// Not validated here; [`CompletionJournal::validate`] or the resume
    /// entry points do that.
    pub fn from_entries(n_ops: usize, entries: Vec<u32>) -> Self {
        CompletionJournal {
            n_ops,
            entries: Mutex::new(entries),
        }
    }

    /// Ops the journaled schedule contains.
    pub fn n_ops(&self) -> usize {
        self.n_ops
    }

    /// Completions recorded so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Whether every op of the schedule has retired.
    pub fn is_complete(&self) -> bool {
        self.entries.lock().len() == self.n_ops
    }

    /// A snapshot of the entries in retire order.
    pub fn entries(&self) -> Vec<u32> {
        self.entries.lock().clone()
    }

    /// Records `op` as retired. Executors call this through
    /// [`JournalSink`]; tests may append directly.
    pub fn record(&self, op: u32) {
        self.entries.lock().push(op);
    }

    /// Checks the journal against `sch`: every entry in range, no
    /// duplicates, and the sequence dependency-closed in order (each op's
    /// dependencies all appear earlier). Returns the validated entry
    /// snapshot, ready to seed
    /// [`mha_sched::AtomicReadySet::from_completed`].
    pub fn validate(&self, sch: &FrozenSchedule) -> Result<Vec<u32>, JournalError> {
        let entries = self.entries();
        let n = sch.n_ops();
        let mut seen = vec![false; n];
        for &op in &entries {
            if op as usize >= n {
                return Err(JournalError::OpOutOfRange { op, n_ops: n });
            }
            if seen[op as usize] {
                return Err(JournalError::Duplicate { op });
            }
            if let Some(&dep) = sch.preds(op).iter().find(|&&p| !seen[p as usize]) {
                return Err(JournalError::DepIncomplete { op, dep });
            }
            seen[op as usize] = true;
        }
        Ok(entries)
    }

    /// An order-sensitive FNV-1a digest of the entries — two journals match
    /// iff they record the same completions in the same order. Golden tests
    /// pin this alongside the output-buffer hash.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &op in self.entries.lock().iter() {
            for b in op.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

impl JournalSink for CompletionJournal {
    fn op_retired(&self, op: u32) {
        self.record(op);
    }
}

/// A deterministic worker-kill schedule for the threaded executor.
///
/// Victim `victims[i]` (a worker index in `0..threads`) dies — instead of
/// executing the op it just claimed — once the global retired-op counter
/// reaches `kill_after_ops + i`; the stagger spreads a multi-victim plan
/// over consecutive retire points instead of one thundering instant. The
/// claimed-but-unexecuted op is *not* journaled, so resume re-runs it.
/// `seed` records how the plan was drawn ([`KillPlan::seeded`]) and salts
/// nothing at kill time: given a plan, kills fire at fixed counter values
/// regardless of thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    /// The seed the plan was drawn from (0 for hand-built plans).
    pub seed: u64,
    /// Retired-op count at which the first victim dies.
    pub kill_after_ops: usize,
    /// Worker indices to kill, each staggered one retire point after the
    /// previous.
    pub victims: Vec<usize>,
}

impl KillPlan {
    /// A hand-built plan killing `victims` once `kill_after_ops` ops
    /// retired.
    pub fn new(kill_after_ops: usize, victims: Vec<usize>) -> Self {
        KillPlan {
            seed: 0,
            kill_after_ops,
            victims,
        }
    }

    /// Draws a plan from `seed` via splitmix64: a kill point inside the
    /// schedule (`0..n_ops`) and a non-empty victim subset of `0..threads`.
    pub fn seeded(seed: u64, n_ops: usize, threads: usize) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let kill_after_ops = if n_ops == 0 {
            0
        } else {
            (next() % n_ops as u64) as usize
        };
        let n_victims = 1 + (next() % threads.max(1) as u64) as usize;
        let mut pool: Vec<usize> = (0..threads.max(1)).collect();
        let mut victims = Vec::with_capacity(n_victims);
        for _ in 0..n_victims {
            let i = (next() % pool.len() as u64) as usize;
            victims.push(pool.swap_remove(i));
        }
        victims.sort_unstable();
        KillPlan {
            seed,
            kill_after_ops,
            victims,
        }
    }

    /// A plan killing every one of `threads` workers, the first at
    /// `kill_after_ops` (torture mode).
    pub fn kill_all(kill_after_ops: usize, threads: usize) -> Self {
        KillPlan {
            seed: 0,
            kill_after_ops,
            victims: (0..threads).collect(),
        }
    }

    /// The retired-op threshold at which `worker` dies, if it is a victim.
    pub fn threshold(&self, worker: usize) -> Option<usize> {
        self.victims
            .iter()
            .position(|&v| v == worker)
            .map(|i| self.kill_after_ops + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{ProcGrid, RankId, ScheduleBuilder};

    fn diamond() -> FrozenSchedule {
        // 0 -> {1, 2} -> 3
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "d");
        let a = b.compute(RankId(0), 1, &[], 0);
        let l = b.compute(RankId(0), 1, &[a], 1);
        let r = b.compute(RankId(0), 1, &[a], 1);
        b.compute(RankId(0), 1, &[l, r], 2);
        b.finish().freeze()
    }

    #[test]
    fn valid_prefixes_validate() {
        let fs = diamond();
        for entries in [vec![], vec![0], vec![0, 1], vec![0, 2, 1], vec![0, 1, 2, 3]] {
            let j = CompletionJournal::from_entries(fs.n_ops(), entries.clone());
            assert_eq!(j.validate(&fs).unwrap(), entries);
        }
    }

    #[test]
    fn dep_incomplete_is_a_typed_rejection() {
        let fs = diamond();
        let j = CompletionJournal::from_entries(fs.n_ops(), vec![0, 1, 3]);
        assert_eq!(
            j.validate(&fs).unwrap_err(),
            JournalError::DepIncomplete { op: 3, dep: 2 }
        );
        let j = CompletionJournal::from_entries(fs.n_ops(), vec![1]);
        assert_eq!(
            j.validate(&fs).unwrap_err(),
            JournalError::DepIncomplete { op: 1, dep: 0 }
        );
    }

    #[test]
    fn duplicates_and_range_are_rejected() {
        let fs = diamond();
        let j = CompletionJournal::from_entries(fs.n_ops(), vec![0, 0]);
        assert_eq!(
            j.validate(&fs).unwrap_err(),
            JournalError::Duplicate { op: 0 }
        );
        let j = CompletionJournal::from_entries(fs.n_ops(), vec![9]);
        assert_eq!(
            j.validate(&fs).unwrap_err(),
            JournalError::OpOutOfRange { op: 9, n_ops: 4 }
        );
    }

    #[test]
    fn digest_is_order_sensitive() {
        let fs = diamond();
        let a = CompletionJournal::from_entries(fs.n_ops(), vec![0, 1, 2]);
        let b = CompletionJournal::from_entries(fs.n_ops(), vec![0, 2, 1]);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(
            a.digest(),
            CompletionJournal::from_entries(fs.n_ops(), vec![0, 1, 2]).digest()
        );
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = KillPlan::seeded(seed, 100, 8);
            let b = KillPlan::seeded(seed, 100, 8);
            assert_eq!(a, b);
            assert!(a.kill_after_ops < 100);
            assert!(!a.victims.is_empty() && a.victims.len() <= 8);
            assert!(a.victims.iter().all(|&v| v < 8));
            let mut v = a.victims.clone();
            v.dedup();
            assert_eq!(v.len(), a.victims.len(), "duplicate victims");
        }
    }

    #[test]
    fn thresholds_stagger_victims() {
        let p = KillPlan::kill_all(5, 3);
        assert_eq!(p.threshold(0), Some(5));
        assert_eq!(p.threshold(1), Some(6));
        assert_eq!(p.threshold(2), Some(7));
        assert_eq!(p.threshold(3), None);
    }

    #[test]
    fn journal_error_display_is_readable() {
        let e = JournalError::DepIncomplete { op: 3, dep: 1 };
        assert_eq!(e.to_string(), "journal claims op 3 before its dependency 1");
        assert!(JournalError::Duplicate { op: 2 }
            .to_string()
            .contains("twice"));
        assert!(JournalError::OpOutOfRange { op: 9, n_ops: 4 }
            .to_string()
            .contains("out of range"));
    }
}
