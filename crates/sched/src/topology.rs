//! Recursive topology tree: the N-level generalization of [`ProcGrid`].
//!
//! A [`Topology`] is an ordered list of levels, outermost first. Level `0`
//! splits the machine into `fanout[0]` groups (nodes, say), level `1`
//! splits each of those into `fanout[1]` sub-groups (sockets), and so on;
//! the innermost level's groups are single ranks. Ranks are block-mapped
//! exactly like [`ProcGrid`]: the groups at any depth are contiguous rank
//! ranges, and a group's *leader* is its first rank. A two-level tree is
//! therefore isomorphic to `ProcGrid::new(nodes, ppn)` — see
//! [`Topology::flatten`].
//!
//! Each level also carries the link characteristics of the interconnect
//! that joins its groups (rail count, per-rail bandwidth, startup
//! latency), allowing heterogeneous speeds per level. The *shape* (fanouts)
//! drives schedule construction; the link parameters feed cost models and
//! cache fingerprints, never op emission — so two trees with equal shapes
//! build identical schedules.

use crate::fingerprint::Fingerprinter;
use crate::grid::ProcGrid;
use crate::ids::{GroupId, RankId};

/// One level of a [`Topology`]: how many children each group at this depth
/// splits into, and the link joining those children.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoLevel {
    /// Children per group at this level (≥ 1).
    pub fanout: u32,
    /// Parallel rails of the link joining the children (≥ 1).
    pub rails: u8,
    /// Per-rail bandwidth of the link, bytes/second.
    pub bw: f64,
    /// Startup latency of one transfer over the link, seconds.
    pub alpha: f64,
}

impl TopoLevel {
    /// A level with placeholder link parameters (one rail, unit bandwidth,
    /// zero latency). The shape is what schedule construction consumes;
    /// callers that price or fingerprint trees should set real link values
    /// via [`TopoLevel::with_link`] (or build the tree from a cluster
    /// spec).
    pub fn new(fanout: u32) -> Self {
        TopoLevel {
            fanout,
            rails: 1,
            bw: 1.0,
            alpha: 0.0,
        }
    }

    /// Replaces the link parameters.
    pub fn with_link(self, rails: u8, bw: f64, alpha: f64) -> Self {
        TopoLevel {
            rails,
            bw,
            alpha,
            ..self
        }
    }
}

/// A recursive, block-mapped process topology (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    levels: Vec<TopoLevel>,
}

impl Topology {
    /// Creates a topology from explicit levels, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, any fanout is zero, or the total rank
    /// count overflows `u32`.
    pub fn new(levels: Vec<TopoLevel>) -> Self {
        assert!(!levels.is_empty(), "a topology needs at least one level");
        let mut total = 1u32;
        for (d, lvl) in levels.iter().enumerate() {
            assert!(lvl.fanout > 0, "level {d} has zero fanout");
            total = total
                .checked_mul(lvl.fanout)
                .expect("rank count overflows u32");
        }
        Topology { levels }
    }

    /// A topology from fanouts alone, with placeholder links
    /// ([`TopoLevel::new`]).
    pub fn from_fanouts(fanouts: &[u32]) -> Self {
        Topology::new(fanouts.iter().map(|&f| TopoLevel::new(f)).collect())
    }

    /// The canonical two-level (node × rank) tree matching
    /// `ProcGrid::new(nodes, ppn)`.
    pub fn two_level(nodes: u32, ppn: u32) -> Self {
        Topology::from_fanouts(&[nodes, ppn])
    }

    /// The canonical three-level (node × socket × rank) tree of the
    /// NUMA-aware design.
    pub fn three_level(nodes: u32, sockets: u32, per_socket: u32) -> Self {
        Topology::from_fanouts(&[nodes, sockets, per_socket])
    }

    /// The two-level tree equivalent to `grid` (its inverse is
    /// [`Topology::flatten`]).
    pub fn from_grid(grid: &ProcGrid) -> Self {
        Topology::two_level(grid.nodes(), grid.ppn())
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// All levels, outermost first.
    #[inline]
    pub fn levels(&self) -> &[TopoLevel] {
        &self.levels
    }

    /// The level at depth `d`.
    #[inline]
    pub fn level(&self, d: usize) -> &TopoLevel {
        &self.levels[d]
    }

    /// Fanout at depth `d`.
    #[inline]
    pub fn fanout(&self, d: usize) -> u32 {
        self.levels[d].fanout
    }

    /// Total ranks (the product of all fanouts).
    pub fn nranks(&self) -> u32 {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// Number of groups at depth `d`: the product of fanouts *above* `d`.
    /// `num_groups(0) == 1` (the whole machine); `num_groups(depth())` is
    /// the rank count.
    pub fn num_groups(&self, d: usize) -> u32 {
        self.levels[..d].iter().map(|l| l.fanout).product()
    }

    /// Ranks per group at depth `d`: the product of fanouts *at and below*
    /// `d`. `group_size(0)` is the rank count; `group_size(depth()) == 1`.
    pub fn group_size(&self, d: usize) -> u32 {
        self.levels[d..].iter().map(|l| l.fanout).product()
    }

    /// The depth-`d` group containing `rank`.
    #[inline]
    pub fn group_of(&self, d: usize, rank: RankId) -> GroupId {
        debug_assert!(rank.0 < self.nranks(), "rank {rank} out of topology");
        GroupId(rank.0 / self.group_size(d))
    }

    /// The first rank of depth-`d` group `g` — its *leader*.
    #[inline]
    pub fn leader(&self, d: usize, g: GroupId) -> RankId {
        debug_assert!(g.0 < self.num_groups(d), "group {g} out of depth {d}");
        RankId(g.0 * self.group_size(d))
    }

    /// Iterator over the ranks of depth-`d` group `g`, in rank order.
    pub fn ranks_of(&self, d: usize, g: GroupId) -> impl Iterator<Item = RankId> {
        let size = self.group_size(d);
        let base = g.0 * size;
        (base..base + size).map(RankId)
    }

    /// The equivalent two-level grid: level 0 becomes the node dimension,
    /// everything below collapses into ppn. A depth-1 tree flattens to a
    /// single node.
    pub fn flatten(&self) -> ProcGrid {
        if self.depth() == 1 {
            ProcGrid::single_node(self.fanout(0))
        } else {
            ProcGrid::new(self.fanout(0), self.group_size(1))
        }
    }

    /// Whether this tree flattens onto `grid` (same node count and ppn).
    pub fn matches(&self, grid: &ProcGrid) -> bool {
        self.flatten() == *grid
    }

    /// A stable structural digest of the full tree — shape *and* link
    /// parameters (see [`Fingerprinter`] for the guarantees). Distinct
    /// trees that merely flatten to the same grid digest differently,
    /// which is what lets cache keys distinguish a 2-level from a 3-level
    /// build of the same `nodes × ppn`.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.push_usize(self.depth());
        for lvl in &self.levels {
            fp.push_u32(lvl.fanout)
                .push_u8(lvl.rails)
                .push_f64(lvl.bw)
                .push_f64(lvl.alpha);
        }
        fp.finish().0
    }

    /// Sanity-checks the link parameters (the shape is validated at
    /// construction).
    pub fn validate(&self) -> Result<(), String> {
        for (d, lvl) in self.levels.iter().enumerate() {
            if lvl.rails == 0 {
                return Err(format!("level {d}: rails must be at least 1"));
            }
            if !(lvl.bw.is_finite() && lvl.bw > 0.0) {
                return Err(format!(
                    "level {d}: bw must be positive and finite, got {}",
                    lvl.bw
                ));
            }
            if !(lvl.alpha.is_finite() && lvl.alpha >= 0.0) {
                return Err(format!(
                    "level {d}: alpha must be non-negative, got {}",
                    lvl.alpha
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_arithmetic_is_consistent() {
        let t = Topology::from_fanouts(&[4, 2, 3]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.nranks(), 24);
        assert_eq!(t.num_groups(0), 1);
        assert_eq!(t.num_groups(1), 4);
        assert_eq!(t.num_groups(2), 8);
        assert_eq!(t.num_groups(3), 24);
        assert_eq!(t.group_size(0), 24);
        assert_eq!(t.group_size(1), 6);
        assert_eq!(t.group_size(2), 3);
        assert_eq!(t.group_size(3), 1);
        for d in 0..=t.depth() {
            assert_eq!(t.num_groups(d) * t.group_size(d), t.nranks());
        }
    }

    #[test]
    fn groups_are_contiguous_with_leader_first() {
        let t = Topology::from_fanouts(&[2, 2, 2]);
        let g = GroupId(2); // third socket overall = node 1, socket 0
        assert_eq!(t.leader(2, g), RankId(4));
        let ranks: Vec<_> = t.ranks_of(2, g).collect();
        assert_eq!(ranks, vec![RankId(4), RankId(5)]);
        for r in ranks {
            assert_eq!(t.group_of(2, r), g);
        }
        assert_eq!(t.group_of(1, RankId(5)), GroupId(1));
        assert_eq!(t.group_of(0, RankId(5)), GroupId(0));
    }

    #[test]
    fn flatten_round_trips_with_from_grid() {
        let grid = ProcGrid::new(3, 5);
        let t = Topology::from_grid(&grid);
        assert_eq!(t.flatten(), grid);
        assert!(t.matches(&grid));
        // Deeper trees flatten onto the grid their outer level implies.
        let t3 = Topology::from_fanouts(&[3, 5, 1]);
        assert!(t3.matches(&grid));
        assert!(!Topology::from_fanouts(&[5, 3]).matches(&grid));
    }

    #[test]
    fn depth_one_flattens_to_a_single_node() {
        let t = Topology::from_fanouts(&[7]);
        assert_eq!(t.flatten(), ProcGrid::single_node(7));
        assert_eq!(t.nranks(), 7);
        assert_eq!(t.group_size(0), 7);
    }

    #[test]
    fn digest_separates_shape_and_links() {
        let base = Topology::from_fanouts(&[4, 8]);
        assert_eq!(base.digest(), Topology::from_fanouts(&[4, 8]).digest());
        // Different shape, same rank count.
        assert_ne!(base.digest(), Topology::from_fanouts(&[8, 4]).digest());
        // Same flattened grid, different depth.
        assert_ne!(base.digest(), Topology::from_fanouts(&[4, 2, 4]).digest());
        // Same shape, different link speed.
        let fast = Topology::new(vec![
            TopoLevel::new(4).with_link(2, 12.0e9, 1.6e-6),
            TopoLevel::new(8),
        ]);
        assert_ne!(base.digest(), fast.digest());
    }

    #[test]
    fn validate_rejects_bad_links() {
        let ok = Topology::three_level(2, 2, 4);
        ok.validate().unwrap();
        let bad = Topology::new(vec![TopoLevel::new(2).with_link(0, 1.0, 0.0)]);
        assert!(bad.validate().is_err());
        let bad = Topology::new(vec![TopoLevel::new(2).with_link(1, -1.0, 0.0)]);
        assert!(bad.validate().is_err());
        let bad = Topology::new(vec![TopoLevel::new(2).with_link(1, 1.0, f64::NAN)]);
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "zero fanout")]
    fn zero_fanout_rejected() {
        Topology::from_fanouts(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_tree_rejected() {
        Topology::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_tree_rejected() {
        Topology::from_fanouts(&[1 << 16, 1 << 16, 2]);
    }
}
