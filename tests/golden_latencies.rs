//! Bit-exact golden simulated latencies for the paper-figure workloads.
//!
//! The frozen-schedule refactor (CSR adjacency + shared readiness runtime)
//! is required to leave the discrete-event engine's event sequence — and so
//! every simulated makespan — *bit-identical*. These constants were captured
//! from the pre-refactor engine; any drift means the scheduler → simulator
//! pipeline changed behaviour. After an *intentional* model change,
//! regenerate them with `cargo run --release -p mha-bench --bin golden_dump`.

use mha::collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha::collectives::AllgatherAlgo;
use mha::sched::ProcGrid;
use mha::simnet::{ClusterSpec, Simulator};

fn golden() -> Vec<(&'static str, f64)> {
    vec![
        ("fig02/ring_2x2_1M", f64::from_bits(0x3f3834699899a5d2)), // 369.334965 us
        ("fig08/ring_16x32_4096", f64::from_bits(0x3f5c48ef52b1f2a9)), // 1726.373400 us
        ("fig08/ring_16x32_65536", f64::from_bits(0x3f9bcd308c4d7c52)), // 27149.923862 us
        ("fig08/rd_16x32_4096", f64::from_bits(0x3f5d08bd5a0dc992)), // 1772.103227 us
        ("fig08/rd_16x32_65536", f64::from_bits(0x3f9c98ec44950569)), // 27927.104650 us
        ("fig12/ring_8x32_4096", f64::from_bits(0x3f5ca8fab664b88f)), // 1749.272190 us
        ("fig12/bruck_8x32_4096", f64::from_bits(0x3f61a542613c5e41)), // 2153.997086 us
        ("fig12/mha_8x32_4096", f64::from_bits(0x3f4e4ff3af34a934)), // 925.058352 us
        (
            "fig11/mha_intra_1x16_262144",
            f64::from_bits(0x3f67d19a32d7357b),
        ), // 2907.563371 us
        (
            "fig11/mha_intra_1x16_4194304",
            f64::from_bits(0x3fa6180840780799),
        ), // 43152.101392 us
        ("fig13/ring_16x32_16384", f64::from_bits(0x3f8a2cb47614aa3e)), // 12780.580381 us
        ("fig13/mha_16x32_16384", f64::from_bits(0x3f7bffc5daeef453)), // 6835.720894 us
        ("fig14/mha_32x32_4096", f64::from_bits(0x3f6b456d24709764)), // 3329.003495 us
        ("fig14/mha_32x32_65536", f64::from_bits(0x3faafe1dd5f3f5e9)), // 52720.005386 us
    ]
}

/// Rebuilds the same workloads as `golden_dump` and returns the measured
/// makespans keyed by the same names.
fn measure() -> Vec<(String, f64)> {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let mut rows: Vec<(String, f64)> = Vec::new();

    let built = AllgatherAlgo::Ring
        .build(ProcGrid::new(2, 2), 1 << 20, &spec)
        .unwrap();
    rows.push((
        "fig02/ring_2x2_1M".into(),
        sim.run(&built.sched).unwrap().makespan,
    ));

    for (name, algo) in [
        ("ring", InterAlgo::Ring),
        ("rd", InterAlgo::RecursiveDoubling),
    ] {
        for msg in [4096usize, 64 * 1024] {
            let cfg = MhaInterConfig {
                inter: algo,
                offload: Offload::Auto,
                overlap: true,
            };
            let built = build_mha_inter(ProcGrid::new(16, 32), msg, cfg, &spec).unwrap();
            rows.push((
                format!("fig08/{name}_16x32_{msg}"),
                sim.run(&built.sched).unwrap().makespan,
            ));
        }
    }

    for (name, algo) in [
        ("ring", AllgatherAlgo::Ring),
        ("bruck", AllgatherAlgo::Bruck),
        ("mha", AllgatherAlgo::MhaInter(MhaInterConfig::default())),
    ] {
        let built = algo.build(ProcGrid::new(8, 32), 4096, &spec).unwrap();
        rows.push((
            format!("fig12/{name}_8x32_4096"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    for msg in [256 * 1024usize, 4 << 20] {
        let built = AllgatherAlgo::MhaIntra {
            offload: Offload::Auto,
        }
        .build(ProcGrid::single_node(16), msg, &spec)
        .unwrap();
        rows.push((
            format!("fig11/mha_intra_1x16_{msg}"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    for (name, algo) in [
        ("ring", AllgatherAlgo::Ring),
        ("mha", AllgatherAlgo::MhaInter(MhaInterConfig::default())),
    ] {
        let built = algo.build(ProcGrid::new(16, 32), 16 * 1024, &spec).unwrap();
        rows.push((
            format!("fig13/{name}_16x32_16384"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    for msg in [4096usize, 64 * 1024] {
        let built = AllgatherAlgo::MhaInter(MhaInterConfig::default())
            .build(ProcGrid::new(32, 32), msg, &spec)
            .unwrap();
        rows.push((
            format!("fig14/mha_32x32_{msg}"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }
    rows
}

#[test]
fn paper_figure_latencies_are_bit_identical() {
    let measured = measure();
    let expected = golden();
    assert_eq!(measured.len(), expected.len());
    for ((name, got), (ename, want)) in measured.iter().zip(&expected) {
        assert_eq!(name, ename, "workload list drifted");
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{name}: got {:.9} us (0x{:016x}), golden {:.9} us (0x{:016x})",
            got * 1e6,
            got.to_bits(),
            want * 1e6,
            want.to_bits()
        );
    }
}
