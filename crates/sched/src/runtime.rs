//! Shared readiness runtime: indegree-counter (Kahn) drivers over the
//! frozen CSR adjacency.
//!
//! Both execution backends used to carry their own copy of the same loop —
//! "when an op completes, decrement each successor's remaining-dependency
//! counter; a counter hitting zero makes that op ready". This module is the
//! single implementation: [`ReadySet`] for single-threaded drivers (the
//! discrete-event simulator) and [`AtomicReadySet`] for the work-stealing
//! threaded executor, where completions race.
//!
//! Successors are visited in CSR order, i.e. exactly the order the former
//! per-backend `Vec<Vec<OpId>>` adjacency produced — the simulator's event
//! sequence (and therefore every simulated latency) is unchanged.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::frozen::FrozenSchedule;

/// Single-threaded readiness driver.
///
/// Seed execution with [`FrozenSchedule::roots`]; each time an op finishes,
/// call [`ReadySet::complete`] and start every op handed to the callback.
#[derive(Debug, Clone)]
pub struct ReadySet {
    indeg: Vec<u32>,
    remaining: usize,
}

impl ReadySet {
    /// A fresh driver with every op unfinished.
    pub fn new(fs: &FrozenSchedule) -> Self {
        ReadySet {
            indeg: fs.indegrees().to_vec(),
            remaining: fs.n_ops(),
        }
    }

    /// Rewinds the driver to the every-op-unfinished state for `fs`,
    /// reusing the indegree vector's allocation. After this call the
    /// driver is indistinguishable from `ReadySet::new(fs)`.
    pub fn reset(&mut self, fs: &FrozenSchedule) {
        self.indeg.clear();
        self.indeg.extend_from_slice(fs.indegrees());
        self.remaining = fs.n_ops();
    }

    /// A driver seeded with a non-root frontier: every op in `completed` is
    /// already retired (its successors' indegrees pre-decremented), and the
    /// returned frontier holds the not-yet-completed ops whose dependencies
    /// are all in `completed`, in op-id order — exactly the set a fresh
    /// driver replaying `completed` through [`ReadySet::complete`] would
    /// have released but not completed. This is the resume path for
    /// journaled execution: the indegree vector *is* the recoverable
    /// frontier, so a completion journal is all the state a restart needs.
    ///
    /// `completed` must be dependency-closed (every predecessor of a
    /// completed op is itself completed) and duplicate-free; callers
    /// validate journals before seeding (debug builds assert it).
    pub fn from_completed(fs: &FrozenSchedule, completed: &[u32]) -> (Self, Vec<u32>) {
        let (indeg, frontier) = seed_frontier(fs, completed);
        (
            ReadySet {
                indeg,
                remaining: fs.n_ops() - completed.len(),
            },
            frontier,
        )
    }

    /// Records `op` as finished and invokes `on_ready` for every successor
    /// whose dependencies are now all satisfied, in CSR (creation) order.
    pub fn complete(&mut self, fs: &FrozenSchedule, op: u32, mut on_ready: impl FnMut(u32)) {
        debug_assert!(self.remaining > 0, "completed more ops than exist");
        self.remaining -= 1;
        for &s in fs.succs(op) {
            let d = &mut self.indeg[s as usize];
            debug_assert!(*d > 0, "successor {s} already released");
            *d -= 1;
            if *d == 0 {
                on_ready(s);
            }
        }
    }

    /// Ops not yet completed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether every op has completed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Computes the seeded indegree vector and resume frontier shared by
/// [`ReadySet::from_completed`] and [`AtomicReadySet::from_completed`].
fn seed_frontier(fs: &FrozenSchedule, completed: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = fs.n_ops();
    let mut done = vec![false; n];
    for &c in completed {
        debug_assert!((c as usize) < n, "completed op {c} out of range");
        debug_assert!(!done[c as usize], "op {c} completed twice");
        done[c as usize] = true;
    }
    let mut indeg = fs.indegrees().to_vec();
    for &c in completed {
        debug_assert!(
            fs.preds(c).iter().all(|&p| done[p as usize]),
            "completed set is not dependency-closed at op {c}"
        );
        for &s in fs.succs(c) {
            debug_assert!(indeg[s as usize] > 0, "successor {s} over-released");
            indeg[s as usize] -= 1;
        }
    }
    let frontier: Vec<u32> = (0..n as u32)
        .filter(|&i| !done[i as usize] && indeg[i as usize] == 0)
        .collect();
    (indeg, frontier)
}

/// Lock-free readiness driver for concurrent completions.
///
/// Counters are decremented with `fetch_sub(AcqRel)`: the thread that takes a
/// counter to zero observes all writes made by the ops it depended on, so the
/// callback may immediately execute (or enqueue) the successor.
#[derive(Debug)]
pub struct AtomicReadySet {
    indeg: Vec<AtomicU32>,
}

impl AtomicReadySet {
    /// A fresh driver with every op unfinished.
    pub fn new(fs: &FrozenSchedule) -> Self {
        AtomicReadySet {
            indeg: fs.indegrees().iter().map(|&d| AtomicU32::new(d)).collect(),
        }
    }

    /// The concurrent analogue of [`ReadySet::from_completed`]: a driver
    /// seeded with `completed` already retired, plus the resume frontier
    /// (not-yet-completed ops whose dependencies are all completed, in
    /// op-id order). Seeding happens before any worker touches the
    /// counters, so plain stores suffice.
    ///
    /// `completed` must be dependency-closed and duplicate-free (the
    /// journal layer validates this; debug builds assert it).
    pub fn from_completed(fs: &FrozenSchedule, completed: &[u32]) -> (Self, Vec<u32>) {
        let (indeg, frontier) = seed_frontier(fs, completed);
        (
            AtomicReadySet {
                indeg: indeg.into_iter().map(AtomicU32::new).collect(),
            },
            frontier,
        )
    }

    /// Records `op` as finished; invokes `on_ready` for each successor this
    /// call released. Safe to call from many threads at once.
    pub fn complete(&self, fs: &FrozenSchedule, op: u32, mut on_ready: impl FnMut(u32)) {
        for &s in fs.succs(op) {
            if self.indeg[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                on_ready(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::RankId;

    fn chain_with_join() -> FrozenSchedule {
        // 0 -> 1 -> 3 <- 2 <- 0 ; 3 -> 4
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        let o0 = b.compute(RankId(0), 1, &[], 0);
        let o1 = b.compute(RankId(0), 1, &[o0], 0);
        let o2 = b.compute(RankId(0), 1, &[o0], 0);
        let o3 = b.compute(RankId(0), 1, &[o1, o2], 1);
        b.compute(RankId(0), 1, &[o3], 2);
        b.finish().freeze()
    }

    fn drain(fs: &FrozenSchedule) -> Vec<u32> {
        let mut rs = ReadySet::new(fs);
        let mut order: Vec<u32> = fs.roots().to_vec();
        let mut i = 0;
        while i < order.len() {
            let op = order[i];
            rs.complete(fs, op, |s| order.push(s));
            i += 1;
        }
        assert!(rs.is_done());
        assert_eq!(rs.remaining(), 0);
        order
    }

    #[test]
    fn ready_set_releases_in_dependency_order() {
        let fs = chain_with_join();
        let order = drain(&fs);
        assert_eq!(order.len(), fs.n_ops());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &op) in order.iter().enumerate() {
                p[op as usize] = i;
            }
            p
        };
        for op in fs.ops() {
            for d in &op.deps {
                assert!(
                    pos[d.index()] < pos[op.id.index()],
                    "{d} must precede {}",
                    op.id
                );
            }
        }
    }

    #[test]
    fn join_released_exactly_once() {
        let fs = chain_with_join();
        let order = drain(&fs);
        assert_eq!(order.iter().filter(|&&o| o == 3).count(), 1);
    }

    #[test]
    fn atomic_matches_sequential_release_set() {
        let fs = chain_with_join();
        let ars = AtomicReadySet::new(&fs);
        let mut order: Vec<u32> = fs.roots().to_vec();
        let mut i = 0;
        while i < order.len() {
            let op = order[i];
            ars.complete(&fs, op, |s| order.push(s));
            i += 1;
        }
        assert_eq!(order.len(), fs.n_ops());
    }

    /// Released-but-not-completed set after replaying `completed` through a
    /// fresh driver: the reference a seeded frontier must match.
    fn replay_frontier(fs: &FrozenSchedule, completed: &[u32]) -> Vec<u32> {
        let mut rs = ReadySet::new(fs);
        let mut released: Vec<u32> = fs.roots().to_vec();
        for &c in completed {
            rs.complete(fs, c, |s| released.push(s));
        }
        let mut f: Vec<u32> = released
            .into_iter()
            .filter(|op| !completed.contains(op))
            .collect();
        f.sort_unstable();
        f
    }

    #[test]
    fn seeded_frontier_matches_replayed_frontier() {
        let fs = chain_with_join();
        // Every dependency-closed prefix of the drain order.
        let order = drain(&fs);
        for k in 0..=order.len() {
            let completed = &order[..k];
            let want = replay_frontier(&fs, completed);
            let (rs, got) = ReadySet::from_completed(&fs, completed);
            assert_eq!(got, want, "ReadySet frontier diverged at prefix {k}");
            assert_eq!(rs.remaining(), fs.n_ops() - k);
            let (ars, agot) = AtomicReadySet::from_completed(&fs, completed);
            assert_eq!(agot, want, "AtomicReadySet frontier diverged at {k}");
            // Draining the seeded driver visits exactly the unfinished ops.
            let mut rest: Vec<u32> = got.clone();
            let mut i = 0;
            let mut rs = rs;
            while i < rest.len() {
                let op = rest[i];
                rs.complete(&fs, op, |s| rest.push(s));
                i += 1;
            }
            assert!(rs.is_done());
            assert_eq!(rest.len(), fs.n_ops() - k);
            // And the atomic driver releases the same suffix set.
            let mut arest: Vec<u32> = agot.clone();
            let mut i = 0;
            while i < arest.len() {
                let op = arest[i];
                ars.complete(&fs, op, |s| arest.push(s));
                i += 1;
            }
            let (mut a, mut b) = (rest, arest);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_and_full_completed_sets_seed_trivially() {
        let fs = chain_with_join();
        let (rs, frontier) = ReadySet::from_completed(&fs, &[]);
        assert_eq!(frontier, fs.roots());
        assert_eq!(rs.remaining(), fs.n_ops());
        let all: Vec<u32> = drain(&fs);
        let (rs, frontier) = ReadySet::from_completed(&fs, &all);
        assert!(frontier.is_empty());
        assert!(rs.is_done());
    }

    #[test]
    fn atomic_concurrent_join_releases_once() {
        use std::sync::atomic::AtomicUsize;
        // Two parallel predecessors of a join op complete from two threads;
        // the join must be released exactly once.
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        let mut preds = Vec::new();
        for _ in 0..8 {
            preds.push(b.compute(RankId(0), 1, &[], 0));
        }
        b.compute(RankId(0), 1, &preds, 1);
        let fs = b.finish().freeze();
        for _ in 0..50 {
            let ars = AtomicReadySet::new(&fs);
            let released = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for half in 0..2u32 {
                    let (ars, released, fs) = (&ars, &released, &fs);
                    s.spawn(move || {
                        for p in (0..8u32).filter(|p| p % 2 == half) {
                            ars.complete(fs, p, |_| {
                                released.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(released.load(Ordering::Relaxed), 1);
        }
    }
}
