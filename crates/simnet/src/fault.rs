//! Fault injection: timed rail/node capacity events and retry policy.
//!
//! Real multi-rail fabrics flap. A [`FaultSpec`] describes a deterministic
//! timeline of per-rail events — bandwidth derates, link-down/link-up
//! transitions — that the engine applies by rescaling the affected tx/rx
//! resource capacities and re-water-filling the touched connected component
//! at each fault boundary. A flow caught on a dead rail *stalls* (rate 0);
//! after [`FaultSpec::retry_timeout`] it re-issues on a surviving rail, with
//! exponential backoff while no rail is up. Schedules built against the full
//! rail set therefore still complete (degraded), and schedules built
//! failure-aware (see `mha-collectives`) avoid the dead rails entirely.
//!
//! Beyond single rails, [`FaultKind::NodeDown`] / [`FaultKind::NodeUp`]
//! model a whole-node crash: every CPU and every rail of that node drops to
//! capacity 0 until the node restarts, so [`FaultSpec::node_crash`] is the
//! timing-side mirror of the executed kill/resume scenario in `mha-exec`
//! (same crash, modeled for latency there, executed for correctness here).
//!
//! Faults are strictly additive: a `Simulator` without a `FaultSpec` pushes
//! no fault events and scales every capacity by exactly `1.0`, so fault-free
//! runs remain bit-identical to the pre-fault engine.

/// What happens to a rail at a fault boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The rail keeps running at `factor` of its nominal bandwidth
    /// (`0.0 < factor <= 1.0`; `1.0` restores nominal).
    Derate(f64),
    /// The link goes down: capacity 0, flows on it stall.
    Down,
    /// The link comes back up at nominal bandwidth.
    Up,
    /// The whole node crashes: its CPUs and *every* rail of its HCAs drop
    /// to capacity 0 — compute stalls along with traffic. Requires
    /// `node: Some(_)` (a node crash is never fabric-wide); the event's
    /// `rail` field is ignored.
    NodeDown,
    /// The node restarts at nominal capacity (CPUs and all rails). The gap
    /// between a `NodeDown` and its `NodeUp` is the recovery penalty.
    NodeUp,
}

/// One timed fault event on one rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation time (seconds) at which the event takes effect.
    pub time: f64,
    /// Rail index the event applies to.
    pub rail: u8,
    /// Restrict the event to one node's HCA (`None` = the rail fails
    /// fabric-wide, on every node).
    pub node: Option<u32>,
    /// The capacity transition.
    pub kind: FaultKind,
}

/// A deterministic fault timeline plus the retry policy for stalled flows.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Timed events, in any order (the engine sorts by time).
    pub events: Vec<FaultEvent>,
    /// Seconds a flow waits on a dead rail before re-issuing on a surviving
    /// rail. Doubles on every consecutive failed retry (exponential
    /// backoff, capped at 2¹⁰×).
    pub retry_timeout: f64,
}

impl FaultSpec {
    /// An empty timeline with the given retry timeout.
    pub fn new(retry_timeout: f64) -> Self {
        FaultSpec {
            events: Vec::new(),
            retry_timeout,
        }
    }

    /// Convenience: `rail` goes down fabric-wide at `time`.
    pub fn rail_down_at(rail: u8, time: f64) -> Self {
        let mut s = FaultSpec::new(DEFAULT_RETRY_TIMEOUT);
        s.events.push(FaultEvent {
            time,
            rail,
            node: None,
            kind: FaultKind::Down,
        });
        s
    }

    /// Convenience: `rail` runs at `factor` of nominal from `time` on.
    pub fn derate(rail: u8, time: f64, factor: f64) -> Self {
        let mut s = FaultSpec::new(DEFAULT_RETRY_TIMEOUT);
        s.events.push(FaultEvent {
            time,
            rail,
            node: None,
            kind: FaultKind::Derate(factor),
        });
        s
    }

    /// Convenience: `rail` flaps — down at `t_down`, back up at `t_up`.
    pub fn flap(rail: u8, t_down: f64, t_up: f64) -> Self {
        let mut s = FaultSpec::rail_down_at(rail, t_down);
        s.events.push(FaultEvent {
            time: t_up,
            rail,
            node: None,
            kind: FaultKind::Up,
        });
        s
    }

    /// Convenience: `node` crashes at `time` and never comes back.
    pub fn node_down_at(node: u32, time: f64) -> Self {
        let mut s = FaultSpec::new(DEFAULT_RETRY_TIMEOUT);
        s.events.push(FaultEvent {
            time,
            rail: 0,
            node: Some(node),
            kind: FaultKind::NodeDown,
        });
        s
    }

    /// Convenience: `node` crashes at `time` and restarts after a
    /// `recovery` penalty — the timing-side mirror of a journaled
    /// kill/resume in `mha-exec`.
    pub fn node_crash(node: u32, time: f64, recovery: f64) -> Self {
        let mut s = FaultSpec::node_down_at(node, time);
        s.events.push(FaultEvent {
            time: time + recovery,
            rail: 0,
            node: Some(node),
            kind: FaultKind::NodeUp,
        });
        s
    }

    /// Appends an event (builder style).
    pub fn with_event(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Checks the timeline against a cluster with `rails` rails and
    /// `nodes` nodes.
    pub fn validate(&self, rails: u8, nodes: u32) -> Result<(), String> {
        if !(self.retry_timeout.is_finite() && self.retry_timeout > 0.0) {
            return Err(format!(
                "retry_timeout must be positive and finite, got {}",
                self.retry_timeout
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            if !(ev.time.is_finite() && ev.time >= 0.0) {
                return Err(format!(
                    "event {i}: time {} is not a valid instant",
                    ev.time
                ));
            }
            if ev.rail >= rails {
                return Err(format!(
                    "event {i}: rail {} out of range (cluster has {rails})",
                    ev.rail
                ));
            }
            if let Some(n) = ev.node {
                if n >= nodes {
                    return Err(format!(
                        "event {i}: node {n} out of range (grid has {nodes})"
                    ));
                }
            }
            if let FaultKind::Derate(f) = ev.kind {
                if !(f.is_finite() && f > 0.0 && f <= 1.0) {
                    return Err(format!("event {i}: derate factor {f} outside (0, 1]"));
                }
            }
            if matches!(ev.kind, FaultKind::NodeDown | FaultKind::NodeUp) && ev.node.is_none() {
                return Err(format!(
                    "event {i}: node-level fault requires an explicit node"
                ));
            }
        }
        Ok(())
    }

    /// A stable structural digest of the timeline (see
    /// [`mha_sched::Fingerprinter`]) — folded into campaign cache keys so
    /// runs under different fault timelines never share a cached result.
    pub fn digest(&self) -> u64 {
        let mut fp = mha_sched::Fingerprinter::new();
        fp.push_f64(self.retry_timeout);
        fp.push_usize(self.events.len());
        for ev in &self.events {
            fp.push_f64(ev.time).push_u8(ev.rail);
            match ev.node {
                None => fp.push_bool(false),
                Some(n) => fp.push_bool(true).push_u32(n),
            };
            match ev.kind {
                FaultKind::Derate(f) => fp.push_u8(0).push_f64(f),
                FaultKind::Down => fp.push_u8(1),
                FaultKind::Up => fp.push_u8(2),
                // Appended discriminants: timelines without node events
                // digest exactly as before.
                FaultKind::NodeDown => fp.push_u8(3),
                FaultKind::NodeUp => fp.push_u8(4),
            };
        }
        fp.finish().0
    }

    /// Rails down fabric-wide from `time` on (ignoring per-node events) —
    /// what a failure-aware builder would exclude when re-striping.
    pub fn down_rails_at(&self, time: f64, rails: u8) -> Vec<u8> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| self.events[a].time.total_cmp(&self.events[b].time));
        let mut down = vec![false; usize::from(rails)];
        for i in order {
            let ev = &self.events[i];
            if ev.time > time || ev.node.is_some() || usize::from(ev.rail) >= down.len() {
                continue;
            }
            down[usize::from(ev.rail)] = matches!(ev.kind, FaultKind::Down);
        }
        (0..rails).filter(|&r| down[usize::from(r)]).collect()
    }
}

/// Default retry timeout for the convenience constructors: 100 µs, a few
/// orders of magnitude above the rail startup latency.
pub const DEFAULT_RETRY_TIMEOUT: f64 = 100e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_sane_timelines() {
        let s = FaultSpec::flap(1, 1e-3, 2e-3);
        assert!(s.validate(2, 4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_rail_node_factor_and_timeout() {
        assert!(FaultSpec::rail_down_at(2, 0.0).validate(2, 4).is_err());
        let s = FaultSpec::new(0.0);
        assert!(s.validate(2, 4).is_err());
        let s = FaultSpec::derate(0, 0.0, 0.0);
        assert!(s.validate(2, 4).is_err());
        let s = FaultSpec::derate(0, 0.0, 1.5);
        assert!(s.validate(2, 4).is_err());
        let s = FaultSpec::new(1e-3).with_event(FaultEvent {
            time: 0.0,
            rail: 0,
            node: Some(9),
            kind: FaultKind::Down,
        });
        assert!(s.validate(2, 4).is_err());
        let s = FaultSpec::new(1e-3).with_event(FaultEvent {
            time: f64::NAN,
            rail: 0,
            node: None,
            kind: FaultKind::Down,
        });
        assert!(s.validate(2, 4).is_err());
    }

    #[test]
    fn down_rails_tracks_the_timeline() {
        let s = FaultSpec::flap(0, 1.0, 2.0);
        assert_eq!(s.down_rails_at(0.5, 2), Vec::<u8>::new());
        assert_eq!(s.down_rails_at(1.5, 2), vec![0]);
        assert_eq!(s.down_rails_at(2.5, 2), Vec::<u8>::new());
    }

    #[test]
    fn node_crash_constructors_validate() {
        let s = FaultSpec::node_crash(1, 1e-3, 5e-4);
        assert!(s.validate(2, 4).is_ok());
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[1].time, 1.5e-3);
        assert!(FaultSpec::node_down_at(9, 0.0).validate(2, 4).is_err());
        let s = FaultSpec::new(1e-3).with_event(FaultEvent {
            time: 0.0,
            rail: 0,
            node: None,
            kind: FaultKind::NodeDown,
        });
        assert!(s.validate(2, 4).is_err(), "node event without a node");
    }

    #[test]
    fn node_events_are_not_fabric_wide_rail_downs() {
        let s = FaultSpec::node_crash(0, 1.0, 1.0);
        assert_eq!(s.down_rails_at(1.5, 2), Vec::<u8>::new());
    }

    #[test]
    fn digest_distinguishes_node_events() {
        let a = FaultSpec::node_down_at(0, 1.0);
        let b = FaultSpec::node_crash(0, 1.0, 1.0);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), FaultSpec::rail_down_at(0, 1.0).digest());
    }
}
