//! Figure 3: inter-node latency with one and two HCAs (striping halves
//! large-message latency above the 16 KB threshold).

use mha_apps::report::{fmt_bytes, Table};
use mha_simnet::{pt2pt_latency_us, size_sweep, ClusterSpec, Placement, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let two = Simulator::new(ClusterSpec::thor()).unwrap();
    let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let mut t = Table::new(
        "Figure 3: inter-node pt2pt latency (us), 1 vs 2 HCAs",
        "msg_bytes",
        vec!["1 HCA".into(), "2 HCAs".into()],
    );
    for m in size_sweep(8 * 1024, 4 << 20) {
        let l1 = pt2pt_latency_us(&one, Placement::InterNode, m).unwrap();
        let l2 = pt2pt_latency_us(&two, Placement::InterNode, m).unwrap();
        t.push(fmt_bytes(m), vec![l1, l2]);
    }
    mha_bench::emit(&t, "fig03_latency");
    mha_bench::emit_run_summary(
        &two,
        &mha_bench::pt2pt_rails_schedule(4 << 20),
        "fig03_latency",
    );
}
