//! Figure 5: latency as a function of the offload size, showing the
//! V-shaped curve and the optimum the tuning algorithm finds. Each
//! (L, M) configuration is one campaign point (see `mha_bench::campaign`)
//! whose tuner sweep returns the full curve plus a meta row carrying the
//! tuned/analytic optima for the title.

use mha_apps::report::Table;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::mha::tune_offload;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let configs = [
        (4u32, 4usize << 20, "L4_4M"),
        (8, 1 << 20, "L8_1M"),
        (16, 1 << 20, "L16_1M"),
    ];
    let points: Vec<CampaignPoint> = configs
        .iter()
        .map(|&(l, msg, tag)| {
            let spec = spec.clone();
            CampaignPoint::custom(tag, move |_seed| {
                let (best, curve) = tune_offload(&spec, l, msg).map_err(|e| format!("{e:?}"))?;
                let analytic = mha_collectives::mha::optimal_offload(&spec, l, msg);
                let mut rows = vec![Row::new("meta", vec![f64::from(best), f64::from(analytic)])];
                for pt in &curve {
                    rows.push(Row::new(pt.d.to_string(), vec![pt.latency_us]));
                }
                Ok(rows)
            })
        })
        .collect();
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    for (pi, &(l, msg, tag)) in configs.iter().enumerate() {
        let rows = report.rows_for(pi);
        let best = rows[0].values[0] as u32;
        let analytic = rows[0].values[1] as u32;
        let mut t = Table::new(
            format!(
                "Figure 5: offload size vs latency, L={l}, M={msg} \
                 (tuned optimum d={best}, Eq.1 predicts d={analytic})"
            ),
            "offload_d",
            vec!["latency_us".into()],
        );
        for row in &rows[1..] {
            t.push(row.label.clone(), row.values.clone());
        }
        mha_bench::emit(&t, &format!("fig05_offload_{tag}"));
    }
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_intra(
        mha_sched::ProcGrid::single_node(8),
        1 << 20,
        mha_collectives::mha::Offload::Auto,
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig05_offload");
}
