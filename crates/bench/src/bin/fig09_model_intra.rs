//! Figure 9: validation of the MHA-intra cost model (Eq. 2) against the
//! simulator, 4 processes, 256 KB – 16 MB.

use mha_apps::report::{fmt_bytes, Table};
use mha_model::{calibrate, mean_rel_error, validate_intra};
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let params = calibrate(&spec).unwrap();
    let sizes = size_sweep(256 * 1024, 16 << 20);
    let points = validate_intra(&spec, &params, 4, &sizes).unwrap();
    let mut t = Table::new(
        format!(
            "Figure 9: MHA-intra model validation, 4 processes \
             (mean rel. error {:.1}%)",
            mean_rel_error(&points) * 100.0
        ),
        "msg_bytes",
        vec![
            "actual_us".into(),
            "predicted_us".into(),
            "rel_err_pct".into(),
        ],
    );
    for p in &points {
        t.push(
            fmt_bytes(p.msg),
            vec![p.actual_us, p.predicted_us, p.rel_error() * 100.0],
        );
    }
    mha_bench::emit(&t, "fig09_model_intra");
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_intra(
        mha_sched::ProcGrid::single_node(4),
        4 << 20,
        mha_collectives::mha::Offload::Auto,
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig09_model_intra");
}
