//! # mha-tune — the offline autotuner service
//!
//! The paper reports *tuned numbers* (Section 5.3): at every
//! `(grid, message size)` point the best of its algorithm variants. This
//! crate industrializes that procedure into the three-stage pipeline of an
//! MPI tuned-collectives module:
//!
//! 1. **Search** ([`search::run_search`]): enumerate the
//!    [`mha_collectives::AlgoConfig`] design space ([`space::candidates`] —
//!    families × phase-2 algorithm × overlap × offload × exchange chunk ×
//!    stripe threshold, plus degraded-rail variants), price candidates on
//!    the simulator through the campaign runner (shared
//!    [`mha_bench::campaign::ScheduleCache`], deterministic across worker
//!    counts), and prune with **successive halving**: a cheap full sweep
//!    on a quarter-size proxy grid, then only the survivors — joined by
//!    every untuned baseline family — priced on the true grid. The winner
//!    is the rung-1 argmin, so the tuned pick is ≤ every untuned family at
//!    that point *by construction*.
//! 2. **Table** ([`mha_collectives::TunedTable`], re-exported here): the
//!    winners keyed by `(nodes, ppn, msg_bucket, rails_up)`, serialized to
//!    `results/tuned_thor.mtab` — a versioned, digest-sealed text format.
//! 3. **Serving** ([`mha_collectives::TunedTable::lookup`]): load once,
//!    then every query is a pure hash probe (nearest-neighbor fallback
//!    off-grid) returning an `AlgoConfig` for the one
//!    [`mha_collectives::build`] dispatch call. The `fig*` binaries serve
//!    it behind `--tuned`; `ablate_tune` measures tuned vs untuned.
//!
//! Binaries: `mha_tune` (run the search, write the table), `ablate_tune`
//! (serve the shipped table, assert tuned ≤ untuned everywhere).

#![warn(missing_docs)]

pub mod search;
pub mod space;

pub use mha_collectives::{
    build, msg_bucket, AlgoConfig, Family, TableError, TableKey, TunedTable, TABLE_FORMAT_VERSION,
};
pub use search::{fig_grids, full_points, reduced_points, run_search, PointSummary, TunePoint};
pub use space::{candidates, untuned_families};

use std::path::PathBuf;

/// The tuning-table path the serving side and the tools agree on:
/// `MHA_TUNED_TABLE` if set, else `tuned_thor.mtab` under the bench
/// results directory (honoring `MHA_RESULTS_DIR`).
pub fn default_table_path() -> PathBuf {
    std::env::var_os("MHA_TUNED_TABLE")
        .map(PathBuf::from)
        .unwrap_or_else(|| mha_bench::results_dir().join("tuned_thor.mtab"))
}
