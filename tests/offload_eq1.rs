//! Property sweep for the Eq. 1 offload split: for all `(L, H, msg)` the
//! analytic `d` stays within its feasible range and balances the CPU and
//! HCA finish times to within the rounding granularity.
//!
//! Eq. 1 equates `T_C(M) · (L − 1 − d) = T_H(M) · L · d`; the implemented
//! `d` is the rounded real solution, so the residual imbalance can never
//! exceed half a chunk on each side — `0.5 · (T_C + T_H·L)`.

use mha::collectives::mha::{build_mha_intra, optimal_offload, resolve_offload, Offload};
use mha::sched::ProcGrid;
use mha::simnet::ClusterSpec;

#[test]
fn offload_split_is_feasible_and_balanced_for_all_l_h_msg() {
    let specs = [
        ("thor", ClusterSpec::thor()),
        ("thor_single_rail", ClusterSpec::thor_single_rail()),
        ("thor_numa", ClusterSpec::thor_numa()),
    ];
    for (name, spec) in &specs {
        for l in 2..=32u32 {
            for msg in [4 * 1024usize, 64 * 1024, 1 << 20, 4 << 20] {
                let d = optimal_offload(spec, l, msg);
                assert!(
                    d < l,
                    "{name}: d={d} exceeds L-1={} at L={l} msg={msg}",
                    l - 1
                );
                assert_eq!(d, resolve_offload(Offload::Auto, spec, l, msg));

                let tc = spec.t_c(msg);
                let th = spec.t_h(msg);
                let cpu_time = tc * f64::from(l - 1 - d);
                let hca_time = th * f64::from(l) * f64::from(d);
                let half_chunk = 0.5 * (tc + th * f64::from(l));
                assert!(
                    (cpu_time - hca_time).abs() <= half_chunk * (1.0 + 1e-12),
                    "{name}: imbalance {:.3e}s exceeds half a chunk {:.3e}s \
                     at L={l} msg={msg} (d={d})",
                    (cpu_time - hca_time).abs(),
                    half_chunk
                );
            }
        }
    }
}

#[test]
fn built_schedule_offloads_exactly_d_transfers_per_rank() {
    let spec = ClusterSpec::thor();
    for l in [2u32, 4, 8, 16] {
        for msg in [64 * 1024usize, 1 << 20] {
            let d = optimal_offload(&spec, l, msg);
            let built =
                build_mha_intra(ProcGrid::single_node(l), msg, Offload::Auto, &spec).unwrap();
            let stats = built.sched.stats();
            assert_eq!(
                stats.rail_transfers,
                (l as usize) * (d as usize),
                "L={l} msg={msg}: expected L*d rail transfers"
            );
            assert_eq!(
                stats.cma_transfers,
                (l as usize) * ((l - 1 - d) as usize),
                "L={l} msg={msg}: the rest must stay on CMA"
            );
        }
    }
}
