//! Integration tests for the beyond-the-paper extensions: the 3-level
//! NUMA-aware design (Section 7 future work), the hierarchical Broadcast,
//! and the BPMF application.

use mha::collectives::mha::{build_mha_inter, build_mha_numa3, MhaInterConfig, Numa3Config};
use mha::collectives::{build_binomial_bcast, build_mha_bcast};
use mha::exec::{verify_allgather, verify_bcast, Mode};
use mha::sched::{ProcGrid, RankId};
use mha::simnet::{kind_breakdown, ClusterSpec, NumaSpec, SimConfig, Simulator};

#[test]
fn numa3_full_pipeline_and_comparison() {
    let spec = ClusterSpec::thor_numa();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(4, 8);
    let msg = 64 * 1024;

    let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
    mha::sched::validate(&aware.sched, Some(spec.rails)).unwrap();
    assert!(mha::sched::check_races(&aware.sched).is_empty());
    verify_allgather(
        &aware.sched,
        &aware.send,
        &aware.recv,
        msg,
        Mode::Threaded(4),
    )
    .unwrap();

    let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
    let t_aware = sim.run(&aware.sched).unwrap().latency_us();
    let t_blind = sim.run(&blind.sched).unwrap().latency_us();
    assert!(
        t_aware < t_blind,
        "NUMA-aware {t_aware} vs NUMA-blind {t_blind}"
    );
}

#[test]
fn numa_spec_does_not_perturb_non_numa_runs() {
    // The same schedule on thor() vs thor_numa() with all ranks on one
    // socket prices within the per-socket-memory difference only.
    let grid = ProcGrid::new(2, 4); // 2 sockets of 2 ranks per node
    let msg = 16 * 1024;
    let spec_plain = ClusterSpec::thor();
    let built = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec_plain).unwrap();
    let t_plain = Simulator::new(spec_plain)
        .unwrap()
        .run(&built.sched)
        .unwrap()
        .latency_us();
    assert!(t_plain > 0.0);
    // The NUMA run of the *same* schedule is slower or equal — socket
    // memory is scarcer and some hops cross the interconnect.
    let spec_numa = ClusterSpec::thor_numa();
    let built_numa = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec_numa).unwrap();
    let t_numa = Simulator::new(spec_numa)
        .unwrap()
        .run(&built_numa.sched)
        .unwrap()
        .latency_us();
    assert!(t_numa >= t_plain * 0.999, "{t_numa} vs {t_plain}");
}

#[test]
fn custom_numa_layouts_work() {
    // A 4-socket layout still produces correct collectives.
    let mut spec = ClusterSpec::thor_numa();
    spec.numa = Some(NumaSpec {
        sockets: 4,
        xsocket_bw: 5.0e9,
        xsocket_alpha: 0.2e-6,
    });
    let grid = ProcGrid::new(2, 8);
    let built = build_mha_numa3(grid, 1024, Numa3Config::default(), &spec).unwrap();
    verify_allgather(&built.sched, &built.send, &built.recv, 1024, Mode::Single).unwrap();
    Simulator::new(spec).unwrap().run(&built.sched).unwrap();
}

#[test]
fn bcast_full_pipeline_with_overlap_measurement() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(4, 8);
    let msg = 4 << 20;
    let root = RankId(5); // non-leader root exercises the root-node path

    let mha = build_mha_bcast(grid, msg, root, 256 * 1024, &spec).unwrap();
    assert!(mha::sched::check_races(&mha.sched).is_empty());
    verify_bcast(&mha.sched, &mha.bufs, root.index(), msg, Mode::Threaded(4)).unwrap();

    let res = sim.run_with(&mha.sched, SimConfig { trace: true }).unwrap();
    let t_mha = res.latency_us();
    let kb = kind_breakdown(&res.trace.unwrap());
    // The segmented pipeline hides most network time under shm copies.
    assert!(
        kb.overlap_fraction() > 0.5,
        "overlap fraction {}",
        kb.overlap_fraction()
    );

    let flat = build_binomial_bcast(grid, msg, root);
    verify_bcast(&flat.sched, &flat.bufs, root.index(), msg, Mode::Single).unwrap();
    let t_flat = sim.run(&flat.sched).unwrap().latency_us();
    assert!(t_mha < t_flat, "{t_mha} vs {t_flat}");
}

#[test]
fn bpmf_application_tracks_allgather_quality() {
    use mha::apps::bpmf::{run_bpmf_iteration, BpmfConfig};
    use mha::apps::Contestant;
    use mha::collectives::Library;
    let spec = ClusterSpec::thor();
    let cfg = BpmfConfig::movielens(ProcGrid::new(8, 32));
    let hpcx = run_bpmf_iteration(cfg, Contestant::Library(Library::HpcX), &spec).unwrap();
    let mha = run_bpmf_iteration(cfg, Contestant::MhaTuned, &spec).unwrap();
    assert!(mha.samples_per_sec > hpcx.samples_per_sec);
    assert!(mha.comm_fraction > 0.0 && mha.comm_fraction < 1.0);
}
