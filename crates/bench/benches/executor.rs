//! Real-data executor throughput: bytes moved per second through the
//! dependency-driven worker pool versus the sequential reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mha_collectives::mha::MhaInterConfig;
use mha_collectives::AllgatherAlgo;
use mha_exec::{run_single, run_threaded, BufferStore};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn bench_exec(c: &mut Criterion) {
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(2, 8);
    let msg = 64 * 1024;
    let built = AllgatherAlgo::MhaInter(MhaInterConfig::default())
        .build(grid, msg, &spec)
        .unwrap();
    let bytes = built.sched.total_bytes();
    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::new("single", "mha_2x8_64K"), |b| {
        let store = BufferStore::new(&built.sched);
        b.iter(|| run_single(&built.sched, &store).unwrap())
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(BenchmarkId::new("threaded", format!("{threads}t")), |b| {
            let store = BufferStore::new(&built.sched);
            b.iter(|| run_threaded(&built.sched, &store, threads).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
