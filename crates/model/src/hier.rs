//! Per-level cost model for composer-built hierarchical Allgathers.
//!
//! The 2-level equations of Section 4 generalize level by level: the leaf
//! gather is Eq. 2 on the innermost fanout, each middle level adds an
//! import round (one region crossing per sibling, over that level's link
//! or offloaded to the HCAs), and the outermost level keeps the Eq. 6/7
//! exchange-vs-copy-pipeline case split — with the network term priced
//! from the tree's own level-0 link, so heterogeneous per-level speeds
//! flow straight into the prediction.

use mha_collectives::mha::{InterAlgo, Offload};
use mha_collectives::{ComposePlan, LevelAlgo};
use mha_sched::Topology;

use crate::inter::intra_bcast;
use crate::intra::{mha_intra_latency, optimal_offload};
use crate::params::ModelParams;

/// Time of one transfer of `len` bytes over the link at depth `d` of the
/// tree, striped across that level's rails. The outermost level charges
/// the parameter set's rendezvous-aware startup (it is the rail fabric);
/// inner links use their own `alpha`.
fn t_level(p: &ModelParams, topo: &Topology, d: usize, len: usize) -> f64 {
    let lvl = topo.level(d);
    let alpha = if d == 0 {
        p.rail_startup(len)
    } else {
        lvl.alpha
    };
    alpha + len as f64 / (lvl.bw * f64::from(lvl.rails))
}

/// The leaf-gather term: Eq. 2 on the innermost fanout with the offload
/// count resolved from `policy`.
fn gather_term(p: &ModelParams, leaf: u32, m: usize, policy: Offload) -> f64 {
    let d = match policy {
        Offload::None => 0,
        Offload::Fixed(d) => d,
        Offload::Auto => optimal_offload(p, leaf, m, false),
    };
    mha_intra_latency(p, leaf, m, d)
}

/// Predicted latency (seconds) of `plan` composed over `topo` with
/// per-rank contribution `m`, or `None` when the plan is not a gather /
/// hierarchical shape this model prices (whole-tree flat plans have their
/// own models).
///
/// On a two-level tree with the default MHA-inter plan this reproduces
/// [`crate::mha_inter_latency`] exactly; deeper trees add one import term
/// per middle level: `(children − 1)` region crossings over the level's
/// link (or the rail fabric when offloaded) plus the members' congested
/// copy-out of each imported region.
pub fn composed_latency(
    p: &ModelParams,
    topo: &Topology,
    plan: &ComposePlan,
    m: usize,
) -> Option<f64> {
    let depth = topo.depth();
    if plan.levels.len() != depth {
        return None;
    }
    let LevelAlgo::Gather { offload } = plan.levels[depth - 1] else {
        return None;
    };
    let leaf = topo.fanout(depth - 1);
    if depth == 1 {
        return Some(gather_term(p, leaf, m, offload));
    }
    let LevelAlgo::Exchange { inter, .. } = plan.levels[0] else {
        return None;
    };
    let mut imports = Vec::with_capacity(depth - 2);
    for lvl in &plan.levels[1..depth - 1] {
        let LevelAlgo::Import { offload } = lvl else {
            return None;
        };
        imports.push(*offload);
    }

    let ppn = topo.group_size(1);
    let mut t = gather_term(p, leaf, m, offload);

    // Import rounds, innermost middle level first (emission order). Each
    // group leader pulls its siblings' regions — `children − 1` crossings
    // — and every member copies each imported region out over CMA with
    // all of the node's ranks contending for memory.
    for dd in (1..depth - 1).rev() {
        let children = topo.fanout(dd);
        if children <= 1 {
            continue;
        }
        let region = topo.group_size(dd + 1) as usize * m;
        let link = if imports[dd - 1] {
            p.t_h(region)
        } else {
            t_level(p, topo, dd, region)
        };
        let pull = p.t_c(region, ppn);
        t += f64::from(children - 1) * (link + pull);
    }

    // Outermost exchange + distribute: the Eq. 6/7 case split, with the
    // network step priced from the tree's level-0 link.
    let n = topo.fanout(0);
    if n <= 1 {
        return Some(t);
    }
    let ml = ppn as usize * m;
    let bcast_chunk = intra_bcast(p, ml, ppn);
    let step = t_level(p, topo, 0, ml);
    Some(match inter {
        InterAlgo::RecursiveDoubling => {
            let log_n = (f64::from(n)).log2().ceil();
            let t2 = p.rail_startup(ml) * log_n
                + f64::from(n - 1) * ml as f64
                    / (topo.level(0).bw * f64::from(topo.level(0).rails));
            if bcast_chunk <= t_level(p, topo, 0, 2 * ml) {
                let final_bcast = intra_bcast(p, ml * (n as usize / 2).max(1), ppn);
                t + t2 + final_bcast
            } else {
                t + step + f64::from(n - 1) * bcast_chunk
            }
        }
        InterAlgo::Ring => {
            let t2 = f64::from(n - 1) * step;
            if bcast_chunk <= step {
                t + t2 + bcast_chunk
            } else {
                t + step + f64::from(n - 1) * bcast_chunk
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inter::{mha_inter_latency, Phase2};
    use mha_collectives::mha::MhaInterConfig;
    use mha_simnet::ClusterSpec;

    fn p() -> ModelParams {
        ModelParams::from_spec(&ClusterSpec::thor())
    }

    #[test]
    fn two_level_plan_reproduces_the_inter_model_exactly() {
        let p = p();
        let spec = ClusterSpec::thor();
        for (n, l) in [(2u32, 4u32), (4, 8), (16, 8), (8, 16)] {
            let topo = spec.topology_of(&mha_sched::ProcGrid::new(n, l));
            for m in [64usize, 4096, 64 * 1024, 1 << 20] {
                for (inter, phase2) in [
                    (InterAlgo::Ring, Phase2::Ring),
                    (InterAlgo::RecursiveDoubling, Phase2::RecursiveDoubling),
                ] {
                    let cfg = MhaInterConfig {
                        inter,
                        ..MhaInterConfig::default()
                    };
                    let composed =
                        composed_latency(&p, &topo, &ComposePlan::mha_inter(cfg), m).unwrap();
                    let direct = mha_inter_latency(&p, n, l, m, phase2);
                    assert_eq!(composed, direct, "n={n} l={l} m={m} {inter:?}");
                }
            }
        }
    }

    #[test]
    fn three_level_prediction_adds_a_positive_import_term() {
        let p = p();
        let spec = ClusterSpec::thor_numa();
        let grid = mha_sched::ProcGrid::new(4, 16);
        let t2 = composed_latency(
            &p,
            &ClusterSpec::thor().topology_of(&grid),
            &ComposePlan::mha_inter(MhaInterConfig::default()),
            64 * 1024,
        )
        .unwrap();
        let t3 = composed_latency(
            &p,
            &spec.topology_of(&grid),
            &ComposePlan::numa3(true),
            64 * 1024,
        )
        .unwrap();
        assert!(t3.is_finite() && t3 > 0.0);
        // The 3-level plan gathers with d = 0 and pays the import round, so
        // against the same outer exchange it predicts strictly more than
        // the 2-level plan minus its offload benefit could ever recover.
        assert!(t3 > 0.5 * t2, "t3 {t3} vs t2 {t2}");
    }

    #[test]
    fn depth_one_prices_the_leaf_gather() {
        let p = p();
        let topo = Topology::from_fanouts(&[8]);
        let t = composed_latency(&p, &topo, &ComposePlan::gather(Offload::Auto), 4096).unwrap();
        assert_eq!(t, crate::intra::mha_intra_latency_auto(&p, 8, 4096));
    }

    #[test]
    fn unsupported_plan_shapes_return_none() {
        let p = p();
        let topo = Topology::from_fanouts(&[4, 8]);
        // Whole-tree flat plan: not a hierarchical shape.
        assert!(composed_latency(&p, &topo, &ComposePlan::ring(), 64).is_none());
        // Plan depth mismatch.
        assert!(composed_latency(&p, &topo, &ComposePlan::numa3(true), 64).is_none());
    }

    #[test]
    fn import_term_grows_with_socket_count() {
        let p = p();
        let mk = |sockets: u32| {
            let topo = Topology::new(vec![
                mha_sched::TopoLevel::new(4).with_link(2, 12.0e9, 1.6e-6),
                mha_sched::TopoLevel::new(sockets).with_link(1, 7.0e9, 0.15e-6),
                mha_sched::TopoLevel::new(16 / sockets).with_link(1, 11.0e9, 0.8e-6),
            ]);
            composed_latency(&p, &topo, &ComposePlan::numa3(false), 256 * 1024).unwrap()
        };
        assert!(mk(4) > mk(2), "more siblings, more import rounds");
    }
}
