//! The generic hierarchical composer: one emission engine for every
//! Allgather family, parameterized by a [`Topology`] tree and a per-level
//! algorithm plan.
//!
//! A [`ComposePlan`] assigns one [`LevelAlgo`] per tree level, outermost
//! first. Two plan shapes exist:
//!
//! * **whole-tree** — a single level running one of the classic algorithms
//!   over the flattened grid (flat ring/RD/Bruck/direct-spread, or the
//!   two-level leader baselines, which read the node structure from the
//!   flattened grid);
//! * **hierarchical** — `[Exchange, Import…, Gather]`, one entry per
//!   level: the innermost groups run the offloaded direct-spread gather
//!   (MHA-intra), each intermediate level's leaders import sibling regions
//!   and fan them out (the NUMA inter-socket stage), and the outermost
//!   level runs the striped leader exchange with the overlapped
//!   shared-memory distribute (MHA-inter phases 2+3).
//!
//! The paper's designs are instantiations: MHA-intra is `[Gather]` on a
//! depth-1 tree, MHA-inter is `[Exchange, Gather]` on the two-level tree,
//! and the future-work NUMA design is `[Exchange, Import, Gather]` on the
//! (node × socket × rank) tree — at any deeper nesting the same three
//! roles compose unchanged. Emission depends only on the tree *shape*;
//! link speeds feed models and cache keys.

use mha_sched::{BufId, Channel, GroupId, Loc, OpId, OpKind, RailSet, RankId, Topology};
use mha_simnet::ClusterSpec;

use crate::chunks::chunk_bounds;
use crate::ctx::{BuildError, Built, Ctx};
use crate::mha::{resolve_offload, InterAlgo, Offload};
use crate::{flat, twolevel};

/// The algorithm assigned to one level of a [`ComposePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelAlgo {
    /// Innermost level: offloaded direct-spread gather within each leaf
    /// group (MHA-intra, Section 3.1).
    Gather {
        /// HCA offload policy for the gather's fetches.
        offload: Offload,
    },
    /// Intermediate level: each group leader imports its siblings' regions
    /// once, members pull from their leader (the NUMA inter-socket stage).
    Import {
        /// Import regions via NIC loopback (`true`) or over the
        /// level's link — CMA / the socket interconnect (`false`).
        offload: bool,
    },
    /// Outermost level: leader exchange over the rails plus the overlapped
    /// shared-memory distribute (MHA-inter phases 2+3).
    Exchange {
        /// Ring or Recursive Doubling between the level's leaders.
        inter: InterAlgo,
        /// Whether the distribute overlaps the exchange.
        overlap: bool,
        /// Pipeline granularity in rank-blocks: each exchange step's
        /// region is split into pieces of at most this many blocks, each
        /// forwarded (Ring) or gated (RD) independently — a finer
        /// pipeline than the paper's whole-node-block steps. `None` (and
        /// any value ≥ the step region) emits the block-granular stream
        /// byte-identically.
        chunk: Option<u32>,
    },
    /// Whole-tree flat ring over the flattened grid.
    Ring,
    /// Whole-tree flat recursive doubling (power-of-two ranks).
    RecursiveDoubling,
    /// Whole-tree Bruck.
    Bruck,
    /// Whole-tree direct spread.
    DirectSpread,
    /// Whole-tree single-leader baseline (power-of-two nodes).
    SingleLeader,
    /// Whole-tree multi-leader baseline.
    MultiLeader {
        /// Leader groups per node (must divide ppn).
        groups: u32,
    },
}

/// A per-level algorithm assignment, outermost level first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposePlan {
    /// One entry per tree level for hierarchical plans; exactly one entry
    /// for whole-tree plans.
    pub levels: Vec<LevelAlgo>,
}

impl ComposePlan {
    /// A plan from explicit per-level assignments.
    pub fn new(levels: Vec<LevelAlgo>) -> Self {
        ComposePlan { levels }
    }

    /// Whole-tree flat ring.
    pub fn ring() -> Self {
        ComposePlan::new(vec![LevelAlgo::Ring])
    }

    /// Whole-tree flat recursive doubling.
    pub fn recursive_doubling() -> Self {
        ComposePlan::new(vec![LevelAlgo::RecursiveDoubling])
    }

    /// Whole-tree Bruck.
    pub fn bruck() -> Self {
        ComposePlan::new(vec![LevelAlgo::Bruck])
    }

    /// Whole-tree direct spread.
    pub fn direct_spread() -> Self {
        ComposePlan::new(vec![LevelAlgo::DirectSpread])
    }

    /// Whole-tree single-leader baseline.
    pub fn single_leader() -> Self {
        ComposePlan::new(vec![LevelAlgo::SingleLeader])
    }

    /// Whole-tree multi-leader baseline.
    pub fn multi_leader(groups: u32) -> Self {
        ComposePlan::new(vec![LevelAlgo::MultiLeader { groups }])
    }

    /// MHA-intra as a depth-1 plan.
    pub fn gather(offload: Offload) -> Self {
        ComposePlan::new(vec![LevelAlgo::Gather { offload }])
    }

    /// MHA-inter as the 2-level `[Exchange, Gather]` instantiation.
    pub fn mha_inter(cfg: crate::mha::MhaInterConfig) -> Self {
        ComposePlan::mha_inter_chunked(cfg, None)
    }

    /// [`ComposePlan::mha_inter`] with an explicit Exchange pipeline
    /// chunk (rank-blocks per piece; `None` = whole node blocks).
    pub fn mha_inter_chunked(cfg: crate::mha::MhaInterConfig, chunk: Option<u32>) -> Self {
        ComposePlan::new(vec![
            LevelAlgo::Exchange {
                inter: cfg.inter,
                overlap: cfg.overlap,
                chunk,
            },
            LevelAlgo::Gather {
                offload: cfg.offload,
            },
        ])
    }

    /// The 3-level NUMA design as `[Exchange, Import, Gather]`.
    pub fn numa3(offload_xsocket: bool) -> Self {
        ComposePlan::new(vec![
            LevelAlgo::Exchange {
                inter: InterAlgo::Ring,
                overlap: true,
                chunk: None,
            },
            LevelAlgo::Import {
                offload: offload_xsocket,
            },
            LevelAlgo::Gather {
                offload: Offload::None,
            },
        ])
    }

    /// A hierarchical plan for a tree of `depth` levels: one Exchange,
    /// `depth − 2` Imports, one Gather (or `[Gather]` at depth 1).
    pub fn hierarchical(
        depth: usize,
        inter: InterAlgo,
        overlap: bool,
        import_offload: bool,
        gather: Offload,
    ) -> Self {
        if depth <= 1 {
            return ComposePlan::gather(gather);
        }
        let mut levels = vec![LevelAlgo::Exchange {
            inter,
            overlap,
            chunk: None,
        }];
        levels.extend(std::iter::repeat_n(
            LevelAlgo::Import {
                offload: import_offload,
            },
            depth - 2,
        ));
        levels.push(LevelAlgo::Gather { offload: gather });
        ComposePlan::new(levels)
    }

    /// Short name for schedule labels and reports.
    pub fn name(&self) -> String {
        self.levels
            .iter()
            .map(|l| match l {
                LevelAlgo::Gather { .. } => "gather".to_string(),
                LevelAlgo::Import { offload: true } => "import-hca".to_string(),
                LevelAlgo::Import { offload: false } => "import".to_string(),
                LevelAlgo::Exchange { inter, chunk, .. } => {
                    let base = match inter {
                        InterAlgo::Ring => "xchg-ring",
                        InterAlgo::RecursiveDoubling => "xchg-rd",
                    };
                    match chunk {
                        Some(c) => format!("{base}(c={c})"),
                        None => base.to_string(),
                    }
                }
                LevelAlgo::Ring => "ring".to_string(),
                LevelAlgo::RecursiveDoubling => "rd".to_string(),
                LevelAlgo::Bruck => "bruck".to_string(),
                LevelAlgo::DirectSpread => "direct-spread".to_string(),
                LevelAlgo::SingleLeader => "single-leader".to_string(),
                LevelAlgo::MultiLeader { groups } => format!("multi-leader(g={groups})"),
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The parsed shape of a plan, after structural validation against a tree.
enum PlanKind {
    /// One whole-tree algorithm over the flattened grid.
    Whole(LevelAlgo),
    /// `[Gather]` on a depth-1 tree.
    GatherOnly(Offload),
    /// `[Exchange, Import…, Gather]`, one entry per level.
    Hier {
        inter: InterAlgo,
        overlap: bool,
        chunk: Option<u32>,
        /// Import offload flags; `imports[dd - 1]` belongs to tree level
        /// `dd` (the level whose groups the stage merges into).
        imports: Vec<bool>,
        gather: Offload,
    },
}

fn plan_kind(plan: &ComposePlan, depth: usize) -> Result<PlanKind, BuildError> {
    match plan.levels.as_slice() {
        [] => Err(BuildError::BadParameter(
            "a compose plan needs at least one level".into(),
        )),
        [LevelAlgo::Gather { offload }] => {
            if depth == 1 {
                Ok(PlanKind::GatherOnly(*offload))
            } else {
                Err(BuildError::BadParameter(format!(
                    "a lone Gather level needs a depth-1 topology, got depth {depth}"
                )))
            }
        }
        [one @ (LevelAlgo::Ring
        | LevelAlgo::RecursiveDoubling
        | LevelAlgo::Bruck
        | LevelAlgo::DirectSpread
        | LevelAlgo::SingleLeader
        | LevelAlgo::MultiLeader { .. })] => Ok(PlanKind::Whole(*one)),
        levels => {
            if levels.len() != depth {
                return Err(BuildError::BadParameter(format!(
                    "plan has {} levels but the topology has {depth}",
                    levels.len()
                )));
            }
            let LevelAlgo::Exchange {
                inter,
                overlap,
                chunk,
            } = levels[0]
            else {
                return Err(BuildError::BadParameter(
                    "a hierarchical plan starts with an Exchange level".into(),
                ));
            };
            let LevelAlgo::Gather { offload: gather } = levels[depth - 1] else {
                return Err(BuildError::BadParameter(
                    "a hierarchical plan ends with a Gather level".into(),
                ));
            };
            let mut imports = Vec::with_capacity(depth - 2);
            for (dd, lvl) in levels.iter().enumerate().take(depth - 1).skip(1) {
                let LevelAlgo::Import { offload } = lvl else {
                    return Err(BuildError::BadParameter(format!(
                        "hierarchical plan level {dd} must be an Import stage"
                    )));
                };
                imports.push(*offload);
            }
            Ok(PlanKind::Hier {
                inter,
                overlap,
                chunk,
                imports,
                gather,
            })
        }
    }
}

/// Emits `plan` over `topo` into an existing context. `spec` is required
/// for hierarchical plans (offload resolution, shm homing, stripe policy);
/// `rails` restricts Exchange traffic to a surviving-rail set (`None` =
/// all rails up).
pub(crate) fn emit_plan(
    ctx: &mut Ctx,
    topo: &Topology,
    plan: &ComposePlan,
    spec: Option<&ClusterSpec>,
    rails: Option<&RailSet>,
) -> Result<(), BuildError> {
    let grid = ctx.grid();
    if !topo.matches(&grid) {
        return Err(BuildError::BadParameter(format!(
            "topology (nranks {}, {} levels) does not flatten onto the {}x{} grid",
            topo.nranks(),
            topo.depth(),
            grid.nodes(),
            grid.ppn()
        )));
    }
    let kind = plan_kind(plan, topo.depth())?;

    // Structural checks come before the degenerate early-out, preserving
    // the historical builders' error precedence (a non-power-of-two RD is
    // rejected even at msg = 0).
    match &kind {
        PlanKind::Whole(LevelAlgo::RecursiveDoubling) if !grid.nranks().is_power_of_two() => {
            return Err(BuildError::RequiresPowerOfTwo {
                what: "ranks",
                got: grid.nranks(),
            });
        }
        PlanKind::Whole(LevelAlgo::SingleLeader) if !grid.nodes().is_power_of_two() => {
            return Err(BuildError::RequiresPowerOfTwo {
                what: "nodes",
                got: grid.nodes(),
            });
        }
        PlanKind::Whole(LevelAlgo::MultiLeader { groups }) => {
            let g = *groups;
            if g == 0 || !grid.ppn().is_multiple_of(g) {
                return Err(BuildError::BadParameter(format!(
                    "{g} groups do not divide {} processes per node",
                    grid.ppn()
                )));
            }
        }
        PlanKind::Hier {
            inter: InterAlgo::RecursiveDoubling,
            ..
        } if !topo.fanout(0).is_power_of_two() => {
            return Err(BuildError::RequiresPowerOfTwo {
                what: "nodes",
                got: topo.fanout(0),
            });
        }
        _ => {}
    }
    if ctx.is_degenerate() {
        ctx.emit_degenerate();
        return Ok(());
    }

    match kind {
        PlanKind::Whole(algo) => {
            match algo {
                LevelAlgo::Ring => flat::emit_ring(ctx),
                LevelAlgo::RecursiveDoubling => flat::emit_recursive_doubling(ctx),
                LevelAlgo::Bruck => flat::emit_bruck(ctx),
                LevelAlgo::DirectSpread => flat::emit_direct_spread(ctx),
                LevelAlgo::SingleLeader => twolevel::emit_single_leader(ctx),
                LevelAlgo::MultiLeader { groups } => twolevel::emit_multi_leader(ctx, groups),
                _ => unreachable!("plan_kind only yields whole-tree variants here"),
            }
            Ok(())
        }
        PlanKind::GatherOnly(offload) => {
            let spec = need_spec(spec)?;
            let d = resolve_offload(offload, spec, topo.group_size(0), ctx.msg);
            let ranks: Vec<RankId> = grid.ranks().collect();
            gather_into(ctx, &ranks, d, 0);
            Ok(())
        }
        PlanKind::Hier {
            inter,
            overlap,
            chunk,
            imports,
            gather,
        } => {
            let spec = need_spec(spec)?;
            let full;
            let rails = match rails {
                Some(r) => r,
                None => {
                    full = RailSet::full(spec.rails);
                    &full
                }
            };
            emit_hier(
                ctx, topo, inter, overlap, chunk, &imports, gather, spec, rails,
            );
            Ok(())
        }
    }
}

fn need_spec(spec: Option<&ClusterSpec>) -> Result<&ClusterSpec, BuildError> {
    spec.ok_or_else(|| BuildError::BadParameter("hierarchical plans need a cluster spec".into()))
}

/// Builds an Allgather for an explicit topology tree and plan. The grid is
/// the tree's flattened form.
///
/// # Errors
///
/// [`BuildError::BadParameter`] if the plan's shape does not fit the tree;
/// [`BuildError::RequiresPowerOfTwo`] for the algorithms that need one.
pub fn build_composed(
    topo: &Topology,
    msg: usize,
    plan: &ComposePlan,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let grid = topo.flatten();
    let fanouts: Vec<String> = topo.levels().iter().map(|l| l.fanout.to_string()).collect();
    let name = format!("composed({};{})", fanouts.join("x"), plan.name());
    let mut ctx = Ctx::new(grid, msg, name);
    emit_plan(&mut ctx, topo, plan, Some(spec), None)?;
    Ok(ctx.finish())
}

/// Failure-aware variant of [`build_composed`]: Exchange traffic resolves
/// `Channel::AllRails` against the rails not listed in `down_rails`. With
/// no failures the op stream is byte-identical to [`build_composed`].
///
/// # Errors
///
/// Same as [`build_composed`].
pub fn build_composed_degraded(
    topo: &Topology,
    msg: usize,
    plan: &ComposePlan,
    spec: &ClusterSpec,
    down_rails: &[u8],
) -> Result<Built, BuildError> {
    let rails = RailSet::excluding(spec.rails, down_rails);
    let grid = topo.flatten();
    let fanouts: Vec<String> = topo.levels().iter().map(|l| l.fanout.to_string()).collect();
    let name = format!(
        "composed({};{},rails={}/{})",
        fanouts.join("x"),
        plan.name(),
        rails.len(),
        rails.total(),
    );
    let mut ctx = Ctx::new(grid, msg, name);
    emit_plan(&mut ctx, topo, plan, Some(spec), Some(&rails))?;
    Ok(ctx.finish())
}

/// Emits the offloaded direct-spread gather among `ranks` (a contiguous
/// same-node block) into the global receive-buffer layout, returning for
/// each member the ops that filled its copy of the group region. `d` of
/// each rank's `len − 1` fetches ride the HCAs with no program-order deps;
/// the rest chain over CMA (Section 3.1, generalized from whole nodes to
/// arbitrary leaf groups).
pub(crate) fn gather_into(
    ctx: &mut Ctx,
    ranks: &[RankId],
    d: u32,
    step_base: u32,
) -> Vec<Vec<OpId>> {
    let msg = ctx.msg;
    let l = ranks.len() as u32;
    let d = d.min(l.saturating_sub(1));
    let mut fills: Vec<Vec<OpId>> = Vec::with_capacity(l as usize);
    for (lr, &me) in ranks.iter().enumerate() {
        let lr = lr as u32;
        let mut ops = Vec::with_capacity(l as usize);
        ops.push(ctx.self_copy(me, step_base));
        for i in 1..l {
            let peer = ranks[((lr + l - i) % l) as usize];
            let (src, dst) = (ctx.send_loc(peer), ctx.recv_block(me, peer.0));
            if i > l - 1 - d {
                // Offloaded to the HCAs: posted immediately (no program-
                // order deps); the NIC moves it while the CPU works through
                // its CMA chain. In Allreduce phase B it additionally waits
                // for the origin's contribution to exist.
                let deps = ctx.ready_deps(peer);
                let t = ctx.b.transfer(
                    peer,
                    me,
                    src,
                    dst,
                    msg,
                    Channel::AllRails,
                    &deps,
                    step_base + i,
                );
                ops.push(t);
            } else {
                // CPU path: CMA fetches chained in the rank's program order.
                let mut deps = ctx.cur.deps_of(me);
                deps.extend(ctx.ready_deps(peer));
                let t = ctx
                    .b
                    .transfer(peer, me, src, dst, msg, Channel::Cma, &deps, step_base + i);
                ctx.cur.advance(me, t);
                ops.push(t);
            }
        }
        fills.push(ops);
    }
    fills
}

/// A chunk that arrived at a group leader during the Exchange level.
struct Arrival {
    /// First global rank-block of the chunk.
    start_block: u32,
    /// Number of rank-blocks.
    nblocks: u32,
    /// The transfer that delivered it.
    op: OpId,
}

/// One Exchange-level leader-to-leader chunk transfer, resolved against the
/// surviving-rail set. With a full set this *is* the fault-oblivious
/// `AllRails` transfer. Degraded, the chunk is re-tiled into per-rail
/// stripes over the survivors (small chunks are pinned round-robin to one
/// survivor, mirroring the pt2pt layer's policy below the stripe
/// threshold), joined by a zero-flop marker at the receiving leader so
/// downstream deps see one op.
#[allow(clippy::too_many_arguments)]
pub(crate) fn leader_chunk_transfer(
    ctx: &mut Ctx,
    rails: &RailSet,
    spec: &ClusterSpec,
    rr: &mut usize,
    lsrc: RankId,
    ldst: RankId,
    src: Loc,
    dst: Loc,
    len: usize,
    deps: &[OpId],
    step: u32,
) -> OpId {
    if rails.is_full() {
        return ctx
            .b
            .transfer(lsrc, ldst, src, dst, len, Channel::AllRails, deps, step);
    }
    let k = rails.len();
    if !spec.stripes(len) {
        let h = rails.rails()[*rr % k];
        *rr += 1;
        return ctx
            .b
            .transfer(lsrc, ldst, src, dst, len, Channel::Rail(h), deps, step);
    }
    let mut parts: Vec<OpId> = Vec::with_capacity(k);
    for (i, &h) in rails.rails().iter().enumerate() {
        let (lo, hi) = chunk_bounds(len, k, i);
        if hi == lo {
            continue;
        }
        let t = ctx.b.transfer(
            lsrc,
            ldst,
            Loc::new(src.buf, src.offset + lo),
            Loc::new(dst.buf, dst.offset + lo),
            hi - lo,
            Channel::Rail(h),
            deps,
            step,
        );
        parts.push(t);
    }
    if parts.len() == 1 {
        return parts[0];
    }
    ctx.b.push(
        OpKind::Compute {
            actor: ldst,
            flops: 0,
        },
        &parts,
        step,
        "stripe-join",
    )
}

/// Splits a step's region of `total_blocks` rank-blocks into pipeline
/// pieces of at most `chunk` blocks as `(start, len)` block offsets.
/// `None`, `0`, and any chunk ≥ the region keep it whole — one piece,
/// whose emission is bit-identical to the unchunked stream.
fn exchange_pieces(total_blocks: u32, chunk: Option<u32>) -> Vec<(u32, u32)> {
    match chunk {
        Some(c) if c > 0 && c < total_blocks => (0..total_blocks)
            .step_by(c as usize)
            .map(|start| (start, c.min(total_blocks - start)))
            .collect(),
        _ => vec![(0, total_blocks)],
    }
}

/// The hierarchical emission engine. Preconditions (checked by
/// [`emit_plan`]): the context is non-degenerate, the tree matches the
/// grid, `depth ≥ 2`, and RD implies a power-of-two outer fanout.
#[allow(clippy::too_many_arguments)]
fn emit_hier(
    ctx: &mut Ctx,
    topo: &Topology,
    inter: InterAlgo,
    overlap: bool,
    chunk: Option<u32>,
    imports: &[bool],
    gather: Offload,
    spec: &ClusterSpec,
    rails: &RailSet,
) {
    let grid = ctx.grid();
    let msg = ctx.msg;
    let depth = topo.depth();
    let n = topo.fanout(0);
    let leaf_size = topo.group_size(depth - 1);
    let d = resolve_offload(gather, spec, leaf_size, msg);

    // ---- Leaf level: gather within the innermost groups ------------------
    // region_done[g]: ops after which group g's *leader* holds the group's
    // full region.
    let nleaf = topo.num_groups(depth - 1);
    let mut region_done: Vec<Vec<OpId>> = Vec::with_capacity(nleaf as usize);
    for g in 0..nleaf {
        let first = topo.leader(depth - 1, GroupId(g));
        let ranks: Vec<RankId> = grid.rank_block(first, leaf_size).collect();
        let fills = gather_into(ctx, &ranks, d, 0);
        region_done.push(fills.into_iter().next().expect("leaf group non-empty"));
    }

    // ---- Import levels (innermost first): leaders merge child regions ----
    // At each level the group leaders import every sibling child's region
    // once (HCA loopback or the level's link), members pull the imported
    // region from their own leader over CMA — so after stage `m` every
    // depth-`dd` group leader holds its group's aggregated region.
    for (m, dd) in (1..depth - 1).rev().enumerate() {
        let offload = imports[dd - 1];
        let children = topo.fanout(dd);
        let child_size = topo.group_size(dd + 1);
        let region_bytes = child_size as usize * msg;
        let step_import = 100 + 200 * m as u32;
        let step_relay = 200 + 200 * m as u32;
        let mut next_done: Vec<Vec<OpId>> = Vec::with_capacity(topo.num_groups(dd) as usize);
        for g in 0..topo.num_groups(dd) {
            let first_child = g * children;
            let mut done = region_done[first_child as usize].clone();
            for c in 0..children {
                let me = RankId((first_child + c) * child_size);
                for other in 0..children {
                    if other == c {
                        continue;
                    }
                    let peer = RankId((first_child + other) * child_size);
                    let first_block = peer.0; // regions are rank-contiguous
                    let channel = if offload {
                        Channel::AllRails // NIC loopback: bypasses the link
                    } else {
                        Channel::Cma // pays the level's interconnect once
                    };
                    let mut deps = region_done[(first_child + other) as usize].clone();
                    deps.extend(ctx.cur.deps_of(me));
                    let import = ctx.b.transfer(
                        peer,
                        me,
                        ctx.recv_block(peer, first_block),
                        ctx.recv_block(me, first_block),
                        region_bytes,
                        channel,
                        &deps,
                        step_import + other,
                    );
                    if channel == Channel::Cma {
                        ctx.cur.advance(me, import);
                    }
                    if c == 0 {
                        done.push(import);
                    }
                    // Members pull the imported region from their leader
                    // (same-group CMA), pipelined per member.
                    for j in 1..child_size {
                        let member = RankId(me.0 + j);
                        let deps = ctx.cur.deps_with(member, &[import]);
                        let t = ctx.b.transfer(
                            me,
                            member,
                            ctx.recv_block(me, first_block),
                            ctx.recv_block(member, first_block),
                            region_bytes,
                            Channel::Cma,
                            &deps,
                            step_relay + other,
                        );
                        ctx.cur.advance(member, t);
                    }
                }
            }
            next_done.push(done);
        }
        region_done = next_done;
    }
    if n == 1 {
        return;
    }

    // ---- Shared-memory segments for the distribute -----------------------
    // Depth ≥ 3: one segment per depth-2 group (socket), homed on its
    // socket so copy-outs never cross the interconnect. Depth 2: one
    // segment per node; the leader first-touches it, so on a NUMA node its
    // pages land on the leader's socket — ranks of other sockets then pay
    // the cross-socket interconnect on their copy-outs. (That NUMA
    // blindness is exactly what the deeper instantiations fix.)
    let gs1 = topo.group_size(1);
    let total = grid.nranks() as usize * msg;
    let shm: Vec<Vec<BufId>> = if depth >= 3 {
        let nseg = topo.fanout(1);
        grid.node_ids()
            .map(|node| {
                (0..nseg)
                    .map(|c| {
                        ctx.b.shared_buf_homed(
                            node,
                            c.min(spec.sockets().saturating_sub(1)),
                            total,
                            format!("shm/{node}/s{c}"),
                        )
                    })
                    .collect()
            })
            .collect()
    } else {
        grid.node_ids()
            .map(|node| {
                let buf = if let Some(numa) = spec.numa.as_ref() {
                    let home = numa.socket_of(&grid, grid.leader_of(node));
                    ctx.b
                        .shared_buf_homed(node, home, total, format!("shm/{node}"))
                } else {
                    ctx.b.shared_buf(node, total, format!("shm/{node}"))
                };
                vec![buf]
            })
            .collect()
    };

    // ---- Exchange level: leader exchange over the rails ------------------
    let leader = |nd: u32| RankId(nd * gs1);
    // Chunk location inside any rank's receive buffer / an shm segment.
    let chunk_loc = |buf: BufId, start_block: u32| Loc::new(buf, start_block as usize * msg);

    let mut arrivals: Vec<Vec<Arrival>> = (0..n).map(|_| Vec::new()).collect();
    let mut rr = 0usize; // round-robin cursor for degraded small chunks

    // final_recv[nd]: ops after which node nd's exchange is complete — the
    // non-overlapped distribute's gate (a single op unchunked; chunked,
    // every piece's last-step transfer).
    let final_recv: Vec<Vec<OpId>>;
    match inter {
        InterAlgo::Ring => {
            // The forwarded unit is a node block; pieces pipeline it.
            let pieces = exchange_pieces(gs1, chunk);
            let np = pieces.len();
            // avail[nd][p]: ops guaranteeing piece p of the block node nd
            // sends this step.
            let mut avail: Vec<Vec<Vec<OpId>>> =
                region_done.into_iter().map(|d| vec![d; np]).collect();
            let mut prev_recv: Vec<Vec<Option<OpId>>> = vec![vec![None; np]; n as usize];
            for s in 0..n - 1 {
                let mut next_avail = Vec::with_capacity(n as usize);
                let mut next_recv = Vec::with_capacity(n as usize);
                for nd in 0..n {
                    let sender = (nd + n - 1) % n;
                    let block_node = (sender + n - s) % n;
                    let (lsrc, ldst) = (leader(sender), leader(nd));
                    let mut nd_avail = Vec::with_capacity(np);
                    let mut nd_recv = Vec::with_capacity(np);
                    for (p, &(pstart, plen)) in pieces.iter().enumerate() {
                        let mut deps = avail[sender as usize][p].clone();
                        deps.extend(prev_recv[nd as usize][p]);
                        let start = block_node * gs1 + pstart;
                        let t = leader_chunk_transfer(
                            ctx,
                            rails,
                            spec,
                            &mut rr,
                            lsrc,
                            ldst,
                            chunk_loc(ctx.recv[lsrc.index()], start),
                            chunk_loc(ctx.recv[ldst.index()], start),
                            plen as usize * msg,
                            &deps,
                            1000 + s,
                        );
                        arrivals[nd as usize].push(Arrival {
                            start_block: start,
                            nblocks: plen,
                            op: t,
                        });
                        nd_avail.push(vec![t]);
                        nd_recv.push(Some(t));
                    }
                    next_avail.push(nd_avail);
                    next_recv.push(nd_recv);
                }
                avail = next_avail;
                prev_recv = next_recv;
            }
            final_recv = prev_recv
                .into_iter()
                .map(|v| v.into_iter().flatten().collect())
                .collect();
        }
        InterAlgo::RecursiveDoubling => {
            // net_cur[nd]: deps representing "node nd's region is current".
            let mut net_cur: Vec<Vec<OpId>> = region_done;
            let steps = n.trailing_zeros();
            for k in 0..steps {
                let dist = 1u32 << k;
                // The exchanged unit doubles each step; pieces split it
                // with whole-region deps (RD's butterfly admits no finer
                // cross-step forwarding).
                let pieces = exchange_pieces(dist * gs1, chunk);
                let mut next_cur = net_cur.clone();
                for nd in 0..n {
                    let partner = nd ^ dist;
                    let pbase = partner & !(dist - 1);
                    let mut deps = net_cur[partner as usize].clone();
                    deps.extend(net_cur[nd as usize].iter().copied());
                    let (lsrc, ldst) = (leader(partner), leader(nd));
                    let mut got = Vec::with_capacity(pieces.len());
                    for &(pstart, plen) in &pieces {
                        let start = pbase * gs1 + pstart;
                        let t = leader_chunk_transfer(
                            ctx,
                            rails,
                            spec,
                            &mut rr,
                            lsrc,
                            ldst,
                            chunk_loc(ctx.recv[lsrc.index()], start),
                            chunk_loc(ctx.recv[ldst.index()], start),
                            plen as usize * msg,
                            &deps,
                            1000 + k,
                        );
                        arrivals[nd as usize].push(Arrival {
                            start_block: start,
                            nblocks: plen,
                            op: t,
                        });
                        got.push(t);
                    }
                    next_cur[nd as usize] = got;
                }
                net_cur = next_cur;
            }
            final_recv = net_cur;
        }
    }

    // ---- Distribute (overlapped with the exchange) -----------------------
    // The first segment's leader (= node leader) publishes each arrived
    // chunk into its segment; each further segment's leader relays it into
    // its own segment (one link crossing per chunk per segment), then all
    // members copy out locally.
    let nseg = if depth >= 3 { topo.fanout(1) } else { 1 };
    let seg_size = if depth >= 3 { topo.group_size(2) } else { gs1 };
    for node in grid.node_ids() {
        let nd = node.index();
        for (idx, arr) in arrivals[nd].iter().enumerate() {
            let gate: &[OpId] = if overlap {
                std::slice::from_ref(&arr.op)
            } else {
                &final_recv[nd]
            };
            let off = arr.start_block as usize * msg;
            let len = arr.nblocks as usize * msg;
            let mut publish: Vec<OpId> = Vec::with_capacity(nseg as usize);
            for c in 0..nseg {
                let actor = RankId(node.0 * gs1 + c * seg_size);
                let (src, dep): (Loc, Vec<OpId>) = if c == 0 {
                    (
                        Loc::new(ctx.recv[actor.index()], off),
                        ctx.cur.deps_with(actor, gate),
                    )
                } else {
                    (
                        Loc::new(shm[nd][0], off),
                        ctx.cur.deps_with(actor, &[publish[0]]),
                    )
                };
                let cin = ctx.b.copy(
                    actor,
                    src,
                    Loc::new(shm[nd][c as usize], off),
                    len,
                    &dep,
                    2000 + idx as u32,
                );
                ctx.cur.advance(actor, cin);
                publish.push(cin);
                // The relayed chunk also completes the relaying leader's
                // own receive buffer.
                if c > 0 {
                    let deps = ctx.cur.deps_with(actor, &[cin]);
                    let own = ctx.b.copy(
                        actor,
                        Loc::new(shm[nd][c as usize], off),
                        Loc::new(ctx.recv[actor.index()], off),
                        len,
                        &deps,
                        3000 + idx as u32,
                    );
                    ctx.cur.advance(actor, own);
                }
                for j in 1..seg_size {
                    let member = RankId(actor.0 + j);
                    let deps = ctx.cur.deps_with(member, &[cin]);
                    let cout = ctx.b.copy(
                        member,
                        Loc::new(shm[nd][c as usize], off),
                        Loc::new(ctx.recv[member.index()], off),
                        len,
                        &deps,
                        3000 + idx as u32,
                    );
                    ctx.cur.advance(member, cout);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use crate::mha::MhaInterConfig;
    use mha_sched::ProcGrid;

    fn ops_of(b: &Built) -> String {
        format!("{:?}", b.sched.ops())
    }

    #[test]
    fn composed_two_level_reproduces_mha_inter_bit_for_bit() {
        let spec = ClusterSpec::thor();
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for overlap in [true, false] {
                for (nodes, ppn, msg) in [(4u32, 4u32, 64usize), (2, 8, 4096), (1, 4, 16)] {
                    let cfg = MhaInterConfig {
                        inter,
                        offload: Offload::Auto,
                        overlap,
                    };
                    let legacy =
                        crate::mha::build_mha_inter(ProcGrid::new(nodes, ppn), msg, cfg, &spec)
                            .unwrap();
                    let topo = Topology::two_level(nodes, ppn);
                    let composed =
                        build_composed(&topo, msg, &ComposePlan::mha_inter(cfg), &spec).unwrap();
                    assert_eq!(
                        ops_of(&legacy),
                        ops_of(&composed),
                        "{inter:?}/overlap={overlap}/{nodes}x{ppn}/{msg}"
                    );
                    assert_eq!(
                        legacy.sched.fingerprint().0,
                        composed.sched.fingerprint().0,
                        "fingerprint drift at {inter:?}/{nodes}x{ppn}/{msg}"
                    );
                }
            }
        }
    }

    #[test]
    fn composed_whole_tree_plans_reproduce_the_flat_builders() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(2, 4);
        let topo = Topology::from_grid(&grid);
        let msg = 32;
        let pairs: Vec<(Built, ComposePlan)> = vec![
            (crate::flat::build_ring(grid, msg), ComposePlan::ring()),
            (
                crate::flat::build_recursive_doubling(grid, msg).unwrap(),
                ComposePlan::recursive_doubling(),
            ),
            (crate::flat::build_bruck(grid, msg), ComposePlan::bruck()),
            (
                crate::flat::build_direct_spread(grid, msg),
                ComposePlan::direct_spread(),
            ),
            (
                crate::twolevel::build_single_leader(grid, msg).unwrap(),
                ComposePlan::single_leader(),
            ),
            (
                crate::twolevel::build_multi_leader(grid, msg, 2).unwrap(),
                ComposePlan::multi_leader(2),
            ),
        ];
        for (legacy, plan) in pairs {
            let composed = build_composed(&topo, msg, &plan, &spec).unwrap();
            assert_eq!(ops_of(&legacy), ops_of(&composed), "{}", plan.name());
        }
    }

    #[test]
    fn deep_trees_build_correct_allgathers() {
        let spec = ClusterSpec::thor();
        for fanouts in [
            vec![2u32, 2, 2],
            vec![3, 2, 2],
            vec![2, 2, 2, 2],
            vec![4, 1, 2],
            vec![1, 2, 3],
        ] {
            let topo = Topology::from_fanouts(&fanouts);
            let plan =
                ComposePlan::hierarchical(topo.depth(), InterAlgo::Ring, true, true, Offload::None);
            let built = build_composed(&topo, 24, &plan, &spec).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn degraded_composed_build_matches_with_no_failures() {
        let spec = ClusterSpec::thor();
        let topo = Topology::from_fanouts(&[4, 2, 2]);
        let plan = ComposePlan::hierarchical(3, InterAlgo::Ring, true, false, Offload::None);
        let base = build_composed(&topo, 64 * 1024, &plan, &spec).unwrap();
        let deg = build_composed_degraded(&topo, 64 * 1024, &plan, &spec, &[]).unwrap();
        assert_eq!(ops_of(&base), ops_of(&deg));
        // And an actually degraded 3-level build stays correct.
        let deg = build_composed_degraded(&topo, 64 * 1024, &plan, &spec, &[0]).unwrap();
        assert_allgather_correct(&deg);
    }

    #[test]
    fn mismatched_plans_are_rejected() {
        let spec = ClusterSpec::thor();
        let topo = Topology::from_fanouts(&[2, 2, 2]);
        // Plan depth != tree depth.
        let err = build_composed(
            &topo,
            8,
            &ComposePlan::mha_inter(MhaInterConfig::default()),
            &spec,
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::BadParameter(_)));
        // Lone Gather needs depth 1.
        let err = build_composed(&topo, 8, &ComposePlan::gather(Offload::None), &spec).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter(_)));
        // RD needs a power-of-two outer fanout, even at msg = 0.
        let topo3 = Topology::from_fanouts(&[3, 2, 2]);
        let plan =
            ComposePlan::hierarchical(3, InterAlgo::RecursiveDoubling, true, true, Offload::None);
        for msg in [0usize, 8] {
            let err = build_composed(&topo3, msg, &plan, &spec).unwrap_err();
            assert!(matches!(err, BuildError::RequiresPowerOfTwo { .. }));
        }
    }

    #[test]
    fn zero_message_composes_to_a_degenerate_schedule() {
        let spec = ClusterSpec::thor();
        let topo = Topology::from_fanouts(&[2, 2, 2]);
        let plan = ComposePlan::hierarchical(3, InterAlgo::Ring, true, true, Offload::None);
        let built = build_composed(&topo, 0, &plan, &spec).unwrap();
        assert_eq!(built.sched.ops().len(), 8);
        assert_allgather_correct(&built);
    }

    #[test]
    fn plan_names_are_descriptive() {
        assert_eq!(
            ComposePlan::numa3(true).name(),
            "xchg-ring+import-hca+gather"
        );
        assert_eq!(ComposePlan::multi_leader(4).name(), "multi-leader(g=4)");
    }
}
