//! The future-work experiment (paper Section 7): 3-level NUMA-aware
//! Allgather versus the NUMA-blind 2-level design on a dual-socket
//! cluster model, across message sizes. Runs as one campaign (see
//! `mha_bench::campaign`), three simulated cells per row.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, build_mha_numa3, MhaInterConfig, Numa3Config};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor_numa();
    let grid = ProcGrid::new(4, 16);
    let sizes = size_sweep(4096, 1 << 20);
    let mut cells = Vec::new();
    for &msg in &sizes {
        let key = ConfigKey::new("numa/2level_blind", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim("blind", key, spec.clone(), move || {
            build_mha_inter(grid, msg, MhaInterConfig::default(), &spec2)
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
        }));
        let key = ConfigKey::new("numa/3level_aware", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim("aware", key, spec.clone(), move || {
            build_mha_numa3(grid, msg, Numa3Config::default(), &spec2)
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
        }));
        let key = ConfigKey::new("numa/3level_no_offload", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim(
            "no_offload",
            key,
            spec.clone(),
            move || {
                build_mha_numa3(
                    grid,
                    msg,
                    Numa3Config {
                        offload_xsocket: false,
                    },
                    &spec2,
                )
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
            },
        ));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Future work: 3-level NUMA-aware vs 2-level NUMA-blind, 4 nodes x 16 PPN \
         (dual-socket, 7 GB/s effective cross-socket copies)",
        "msg_bytes",
        vec![
            "2level_blind_us".into(),
            "3level_numa_us".into(),
            "3level_no_offload_us".into(),
            "gain_pct".into(),
        ],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        let t_blind = report.value(3 * i);
        let t_aware = report.value(3 * i + 1);
        let t_noloop = report.value(3 * i + 2);
        t.push(
            fmt_bytes(msg),
            vec![
                t_blind,
                t_aware,
                t_noloop,
                (1.0 - t_aware / t_blind) * 100.0,
            ],
        );
    }
    mha_bench::emit(&t, "ablate_numa");
}
