//! Figure 11 (a–d): intra-node Allgather vs HPC-X and MVAPICH2-X for
//! 2/4/8/16 processes, 256 KB – 16 MB. Each panel runs as one campaign
//! (see `mha_bench::campaign`): cells fan out over the worker pool,
//! schedules are cached per configuration fingerprint.

use mha_apps::paper_contestants;
use mha_bench::campaign::{allgather_sweep, CampaignConfig};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let sizes = size_sweep(256 * 1024, 16 << 20);
    for ppn in [2u32, 4, 8, 16] {
        let grid = ProcGrid::single_node(ppn);
        let t = allgather_sweep(
            &format!("Figure 11: intra-node Allgather latency (us), {ppn} processes"),
            grid,
            &sizes,
            &paper_contestants(),
            &spec,
            &cfg,
        )
        .unwrap();
        mha_bench::emit(&t, &format!("fig11_intra_allgather_{ppn}p"));
    }
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_intra(
        ProcGrid::single_node(16),
        4 << 20,
        mha_collectives::mha::Offload::Auto,
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig11_intra_allgather");
}
