//! The discrete-event engine: executes a frozen schedule DAG in virtual time
//! on a [`ClusterSpec`], with fluid max-min fair bandwidth sharing.
//!
//! The engine consumes the compiled form of a schedule
//! ([`mha_sched::FrozenSchedule`]) and drives readiness through the shared
//! indegree-counter runtime ([`mha_sched::ReadySet`]) — the same machinery
//! the real executors use, so both backends release ops in identical order.
//!
//! Each op, once its dependencies finish, pays a fixed startup latency
//! (α_C / α_H / α_L, plus the rendezvous handshake for large rail messages)
//! and then becomes one or more *flows*. A flow occupies a set of resources
//! (see [`crate::resources`]) and drains its byte count at the max-min fair
//! rate. Whenever a flow starts or finishes, rates are recomputed — but only
//! for the *connected component* of flows reachable from the changed
//! resources, so million-op flat-ring schedules stay tractable.
//!
//! Every run narrates itself through a [`Probe`] ([`Simulator::run_probed`]):
//! op spans, flow-rate changes, water-fill recomputations and resource
//! totals. [`Simulator::run`] plugs in the no-op sink; `trace: true` plugs in
//! the ASCII-timeline sink ([`crate::trace::TraceBuilder`]).

use mha_sched::{
    Channel, FrozenSchedule, NodeId, NullProbe, OpKind, Probe, ProcGrid, ReadySet, Schedule,
};

use crate::calendar::CalendarQueue;
use crate::fault::{FaultEvent, FaultKind, FaultSpec};
use crate::resources::{socket_of, ResourceId, ResourceMap};
use crate::topology::ClusterSpec;
use crate::trace::{Trace, TraceBuilder};
use crate::waterfill::{FillError, FlowSpec, IncrementalFiller};

/// A rail flow's routing coordinates `(src node, dst node, rail)` — what a
/// retry needs to re-issue the flow on a surviving rail.
type RailRoute = (NodeId, NodeId, u8);

/// One expanded flow before materialization: rate cap, byte count, rail
/// route, and the half-open range of its `(resource, weight)` pairs inside
/// the arena's flat emission scratch ([`EngineArena::spec_res`]).
#[derive(Debug, Clone, Copy)]
struct SpecTmp {
    cap: f64,
    bytes: f64,
    route: Option<RailRoute>,
    res_lo: u32,
    res_hi: u32,
}

/// An error preventing simulation.
#[derive(Debug)]
pub enum SimError {
    /// The schedule failed structural validation.
    InvalidSchedule(mha_sched::ValidateError),
    /// The cluster spec is physically implausible.
    InvalidSpec(String),
    /// The grid places more ranks on a node than the cluster has cores.
    PpnExceedsCores {
        /// Requested processes per node.
        ppn: u32,
        /// Available cores per node.
        cores: u32,
    },
    /// An op expanded into a flow the water-filler rejected (non-finite or
    /// non-positive cap/weight). Formerly a debug-only assertion that let
    /// release builds silently corrupt every rate in the component.
    InvalidFlow {
        /// The op whose flow was rejected.
        op: u32,
        /// What the water-filler rejected.
        source: FillError,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            SimError::InvalidSpec(e) => write!(f, "invalid cluster spec: {e}"),
            SimError::PpnExceedsCores { ppn, cores } => {
                write!(f, "{ppn} processes per node exceed {cores} cores")
            }
            SimError::InvalidFlow { op, source } => {
                write!(f, "op {op} produced an invalid flow: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidFlow { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<mha_sched::ValidateError> for SimError {
    fn from(e: mha_sched::ValidateError) -> Self {
        SimError::InvalidSchedule(e)
    }
}

/// Simulation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Record a per-op [`Trace`] (costs memory proportional to op count).
    pub trace: bool,
}

/// The outcome of simulating one schedule.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the whole schedule, in seconds.
    pub makespan: f64,
    /// Completion time of each op, indexed like `Schedule::ops()`.
    pub op_end: Vec<f64>,
    /// Per-op timeline, if requested via [`SimConfig::trace`].
    pub trace: Option<Trace>,
    /// Events processed (diagnostics).
    pub events: u64,
    /// Peak number of simultaneously active flows.
    pub max_concurrent_flows: usize,
    /// Bytes that crossed each resource (for utilization reports).
    pub resource_bytes: Vec<f64>,
    /// Capacity of each resource (bytes/s), aligned with `resource_bytes`.
    pub resource_capacity: Vec<f64>,
    /// Labels of the resources, aligned with `resource_bytes`.
    pub resource_labels: Vec<String>,
}

impl SimResult {
    /// Makespan in microseconds — the unit the paper reports.
    pub fn latency_us(&self) -> f64 {
        self.makespan * 1e6
    }

    /// Utilization (0..=1) of each resource over the makespan.
    pub fn utilization(&self) -> Vec<f64> {
        self.resource_bytes
            .iter()
            .zip(&self.resource_capacity)
            .map(|(b, c)| {
                if self.makespan > 0.0 {
                    b / (c * self.makespan)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The busiest resource and its utilization.
    pub fn bottleneck(&self) -> Option<(String, f64)> {
        let util = self.utilization();
        let (i, u) = util.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((self.resource_labels[i].clone(), *u))
    }
}

/// A flow's `(resource, weight)` list, stored inline. Every flow kind the
/// engine emits uses at most 3 entries (tx+rx rail pair, or
/// cpu+mem+optional xsocket), so the list lives in the `Flow` record
/// itself — the recompute hot loops walk flow resources three times per
/// event, and a `Vec`'s heap indirection there is a guaranteed cache miss
/// per flow.
#[derive(Debug, Clone)]
struct ResList {
    arr: [(ResourceId, f64); 4],
    len: u8,
}

impl ResList {
    fn new() -> Self {
        ResList {
            arr: [(ResourceId(0), 0.0); 4],
            len: 0,
        }
    }
    fn clear(&mut self) {
        self.len = 0;
    }
    fn push(&mut self, e: (ResourceId, f64)) {
        self.arr[self.len as usize] = e;
        self.len += 1;
    }
    fn extend_from_slice(&mut self, s: &[(ResourceId, f64)]) {
        self.arr[self.len as usize..self.len as usize + s.len()].copy_from_slice(s);
        self.len += s.len() as u8;
    }
}

impl std::ops::Deref for ResList {
    type Target = [(ResourceId, f64)];
    fn deref(&self) -> &Self::Target {
        &self.arr[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a ResList {
    type Item = &'a (ResourceId, f64);
    type IntoIter = std::slice::Iter<'a, (ResourceId, f64)>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

#[derive(Debug)]
struct Flow {
    op: u32,
    /// `(resource, weight)` pairs: the flow consumes `weight · rate` of
    /// each resource while active.
    resources: ResList,
    cap: f64,
    remaining: f64,
    rate: f64,
    last_update: f64,
    /// Completion prediction computed at the last rate change
    /// (`now + remaining / rate` at that instant). The incremental
    /// scheduler reuses this stored value verbatim when re-queueing an
    /// unchanged flow, so prediction times never drift from what the
    /// push-per-change baseline would have queued.
    t_fin: f64,
    /// Sequence number reserved for the current prediction at the last
    /// rate change — the seq the push-per-change baseline would have
    /// stamped on its `Finish` event. The argmin scheduler queues under
    /// this original `(t_fin, pred_seq)` key, so same-instant events pop
    /// in exactly the baseline's order (bit-identity by construction).
    pred_seq: u64,
    version: u64,
    alive: bool,
    /// Starved by a fault (rate 0 on a down rail); a Retry event is pending.
    stalled: bool,
    /// Consecutive failed retries (drives exponential backoff).
    retries: u32,
    /// Rail routing coordinates, for fault-time re-issue. `None` for flows
    /// that never touch a rail (CMA, copies, reductions, compute).
    route: Option<RailRoute>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// Op's startup latency elapsed: materialize its flows.
    Start { op: u32 },
    /// A flow predicted to drain at this time (stale if version mismatches).
    Finish { flow: u32, version: u64 },
    /// A fault-timeline boundary: rescale rail capacities and re-waterfill.
    Fault { idx: u32 },
    /// A stalled flow's retry timeout elapsed: re-issue on a surviving rail
    /// (stale if version mismatches or the flow already woke up).
    Retry { flow: u32, version: u64 },
}

/// A heap entry for the scratch-mode event queue: min-order on
/// `(time, seq)`, exactly the pre-overhaul engine's ordering. The
/// incremental engine uses the [`CalendarQueue`] instead; keeping the
/// original `BinaryHeap` alive for scratch mode makes the
/// incremental-vs-scratch equivalence oracle compare two *independent*
/// queue mechanisms, and makes benchmark ratios against scratch mode an
/// honest new-engine-vs-old-engine measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEv {
    time: f64,
    seq: u64,
    ev: Ev,
}

impl Eq for HeapEv {}

impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Relative tolerance when deciding whether a flow's rate changed enough to
/// reschedule its completion event.
const RATE_EPS: f64 = 1e-12;

/// The documented cap on retry exponential backoff: the wait multiplier
/// saturates at `2^MAX_BACKOFF_SHIFT` × the retry timeout.
const MAX_BACKOFF_SHIFT: u32 = 10;

/// Mutable simulation state, boxed into one struct so helper methods can
/// borrow it wholesale.
#[derive(Debug, Default)]
struct EngineState {
    flows: Vec<Flow>,
    free_flows: Vec<u32>,
    res_flows: Vec<Vec<u32>>,
    resource_bytes: Vec<f64>,
    res_stamp: Vec<u64>,
    flow_stamp: Vec<u64>,
    epoch: u64,
    /// Incremental-mode event queue (keyed cancellation, O(1) ops).
    cal: CalendarQueue<Ev>,
    /// Scratch-mode event queue: the pre-overhaul `BinaryHeap`, kept as
    /// the faithful baseline. Exactly one of the two queues is in use per
    /// run, chosen by [`EngineState::incremental`] at reset.
    heap: std::collections::BinaryHeap<HeapEv>,
    seq: u64,
    /// Pending `Finish` prediction per flow slot, as its `(time, seq)`
    /// calendar key (`seq == 0` = none; live seqs start at 1). Lets a
    /// rescheduling recompute *delete* the superseded event instead of
    /// leaving it to pop as a stale no-op — the dominant cost of the old
    /// engine (>90% of pops on contended rings were stale).
    finish_ev: Vec<(f64, u64)>,
    /// Pending `Retry` per flow slot, same convention. A live flow holds at
    /// most one of the two: running ⇒ one `Finish`, stalled ⇒ one `Retry`.
    retry_ev: Vec<(f64, u64)>,
    /// Resolved [`incremental_enabled`] for this run: gates both keyed
    /// event cancellation and the memo cache. Off = the faithful
    /// recompute-from-scratch baseline (stale events pop and are
    /// version-checked away, every component is re-solved).
    incremental: bool,
    filler: IncrementalFiller,
    rates: Vec<f64>,
    active_flows: usize,
    max_active: usize,
    /// Per-resource fault scaling of nominal capacity (all 1.0 without
    /// faults; multiplying by 1.0 is bit-exact, so fault-free runs are
    /// unchanged).
    cap_scale: Vec<f64>,
    /// Whether a fault timeline is active (enables the stall/retry path).
    faults_active: bool,
    /// Seconds a stalled flow waits before re-issuing.
    retry_timeout: f64,
    /// Connected-component scratch for [`EngineState::recompute`].
    comp: Vec<u32>,
    /// DFS stack scratch for [`EngineState::recompute`].
    dfs: Vec<ResourceId>,
    /// Resources stamped by the current recompute's DFS, in stamp order.
    comp_res: Vec<ResourceId>,
    /// Component-local index of each stamped resource (parallel to
    /// `res_stamp`; only valid for resources stamped in the current epoch).
    res_lidx: Vec<u32>,
    /// Union-find parents over `comp_res`, grouping the component into
    /// connected sub-groups for argmin prediction scheduling.
    uf: Vec<u32>,
    /// Canonical component descriptor assembled during the DFS (incremental
    /// mode): `[n, per comp flow (cap bits, degree, (res_lidx, w bits)…),
    /// per comp_res effective-capacity bits]` — the
    /// [`IncrementalFiller::fill_keyed`] memo key.
    key: Vec<u64>,
    /// Per-group earliest predicted finisher: `((t_fin bits ‖ pred_seq),
    /// flow)`, indexed by union-find root. `u128::MAX` = no runnable member.
    group_best: Vec<(u128, u32)>,
    /// Unchanged flows whose queued prediction survived the rate loop —
    /// the only candidates the argmin pass may still have to cancel.
    keeps: Vec<u32>,
}

impl EngineState {
    /// Rewinds the state to what a freshly-constructed engine would hold
    /// for a cluster with `n_res` resources, keeping every allocation —
    /// the flow table (including each flow's inner resource vector), the
    /// per-resource registries, the event heap and the water-fill scratch.
    ///
    /// Flow slots are reset to version 0 and `free_flows` is primed in
    /// descending order, so a warm run pops slots 0, 1, 2, … — exactly the
    /// indices a cold run assigns by pushing. Every field an event can
    /// observe is therefore bit-identical between cold and warm runs.
    fn reset(&mut self, n_res: usize, faults_active: bool, retry_timeout: f64) {
        for f in &mut self.flows {
            f.resources.clear();
            f.cap = 1.0;
            f.remaining = 0.0;
            f.rate = 0.0;
            f.last_update = 0.0;
            f.t_fin = 0.0;
            f.pred_seq = 0;
            f.version = 0;
            f.alive = false;
            f.stalled = false;
            f.retries = 0;
            f.route = None;
        }
        self.free_flows.clear();
        self.free_flows.extend((0..self.flows.len() as u32).rev());
        self.res_flows.resize_with(n_res, Vec::new);
        for v in &mut self.res_flows {
            v.clear();
        }
        self.resource_bytes.clear();
        self.resource_bytes.resize(n_res, 0.0);
        self.res_stamp.clear();
        self.res_stamp.resize(n_res, 0);
        self.res_lidx.clear();
        self.res_lidx.resize(n_res, 0);
        self.flow_stamp.clear();
        self.flow_stamp.resize(self.flows.len(), 0);
        self.epoch = 0;
        self.cal.clear();
        self.heap.clear();
        self.finish_ev.clear();
        self.finish_ev.resize(self.flows.len(), (0.0, 0));
        self.retry_ev.clear();
        self.retry_ev.resize(self.flows.len(), (0.0, 0));
        self.incremental = incremental_enabled();
        self.filler.reset(n_res);
        self.seq = 0;
        self.active_flows = 0;
        self.max_active = 0;
        self.cap_scale.clear();
        self.cap_scale.resize(n_res, 1.0);
        self.faults_active = faults_active;
        self.retry_timeout = retry_timeout;
    }

    fn push_event(&mut self, time: f64, ev: Ev) {
        self.seq += 1;
        if self.incremental {
            self.cal.push(time, self.seq, ev);
        } else {
            self.heap.push(HeapEv {
                time,
                seq: self.seq,
                ev,
            });
        }
    }

    /// Removes and returns the earliest pending event from whichever
    /// queue this run uses.
    fn pop_event(&mut self) -> Option<(f64, u64, Ev)> {
        if self.incremental {
            self.cal.pop()
        } else {
            self.heap.pop().map(|h| (h.time, h.seq, h.ev))
        }
    }

    /// Schedules flow `fi`'s completion prediction, remembering its
    /// calendar key so a later reschedule can cancel it.
    fn push_finish(&mut self, time: f64, fi: u32, version: u64) {
        self.seq += 1;
        if self.incremental {
            self.finish_ev[fi as usize] = (time, self.seq);
            self.cal
                .push(time, self.seq, Ev::Finish { flow: fi, version });
        } else {
            let ev = Ev::Finish { flow: fi, version };
            self.heap.push(HeapEv {
                time,
                seq: self.seq,
                ev,
            });
        }
    }

    /// Re-queues flow `fi`'s stored prediction under its reserved key,
    /// burning no new sequence number — the seq was reserved when the rate
    /// changed, so pop order matches the push-per-change baseline exactly.
    fn push_finish_keyed(&mut self, time: f64, seq: u64, fi: u32, version: u64) {
        debug_assert!(self.incremental);
        self.finish_ev[fi as usize] = (time, seq);
        self.cal.push(time, seq, Ev::Finish { flow: fi, version });
    }

    /// Deletes flow `fi`'s pending `Finish`, if any. No-op in scratch mode
    /// (the version check catches the stale pop instead).
    fn cancel_finish(&mut self, fi: u32) {
        if self.incremental {
            let (t, s) = self.finish_ev[fi as usize];
            if s != 0 {
                let found = self.cal.remove(t, s);
                debug_assert!(found, "finish slot pointed at a missing event");
                self.finish_ev[fi as usize] = (0.0, 0);
            }
        }
    }

    /// Schedules flow `fi`'s retry timeout, remembering its calendar key.
    fn push_retry(&mut self, time: f64, fi: u32, version: u64) {
        self.seq += 1;
        if self.incremental {
            self.retry_ev[fi as usize] = (time, self.seq);
            self.cal
                .push(time, self.seq, Ev::Retry { flow: fi, version });
        } else {
            let ev = Ev::Retry { flow: fi, version };
            self.heap.push(HeapEv {
                time,
                seq: self.seq,
                ev,
            });
        }
    }

    /// Recomputes max-min rates over the connected component reachable from
    /// `seed_resources`, settling byte accounting at `now` and rescheduling
    /// completion predictions for flows whose rate changed.
    fn recompute<P: Probe + ?Sized>(
        &mut self,
        now: f64,
        seed_resources: &[ResourceId],
        rmap: &ResourceMap,
        probe: &mut P,
    ) -> Result<(), SimError> {
        self.epoch += 1;
        let e = self.epoch;
        let inc = self.incremental;
        // Scratch vectors live in the state (allocation-free after warm-up)
        // but are taken out so the traversal below can borrow `self` freely.
        let mut comp = std::mem::take(&mut self.comp);
        comp.clear();
        let mut stack = std::mem::take(&mut self.dfs);
        stack.clear();
        let mut uf = std::mem::take(&mut self.uf);
        self.comp_res.clear();
        if inc {
            uf.clear();
            self.key.clear();
            self.key.push(0); // patched to comp.len() after the DFS
        }
        for &r in seed_resources {
            if self.res_stamp[r.index()] != e {
                self.res_stamp[r.index()] = e;
                self.res_lidx[r.index()] = self.comp_res.len() as u32;
                if inc {
                    uf.push(self.comp_res.len() as u32);
                }
                self.comp_res.push(r);
                stack.push(r);
            }
        }
        // DFS over the flow/resource bipartite graph. The visit fuses three
        // extra jobs into the traversal while the flow is already in cache:
        // settling byte accounting up to `now` (`comp` is built in this same
        // visit order, so per-resource accumulation order — and hence every
        // rounded sum — is unchanged), and in incremental mode the canonical
        // memo key for the filler plus a union-find over the component's
        // resources, grouping it into the connected sub-groups the argmin
        // scheduler below works per.
        while let Some(r) = stack.pop() {
            for &fi in &self.res_flows[r.index()] {
                if self.flow_stamp[fi as usize] == e {
                    continue;
                }
                self.flow_stamp[fi as usize] = e;
                comp.push(fi);
                let f = &mut self.flows[fi as usize];
                let dt = now - f.last_update;
                let moved = if dt > 0.0 && f.rate > 0.0 {
                    (f.rate * dt).min(f.remaining)
                } else {
                    0.0
                };
                f.remaining -= moved;
                f.last_update = now;
                let f = &self.flows[fi as usize];
                if inc {
                    self.key.push(f.cap.to_bits());
                    self.key.push(f.resources.len() as u64);
                }
                let mut root = u32::MAX;
                for &(r2, w) in &f.resources {
                    if moved > 0.0 {
                        self.resource_bytes[r2.index()] += moved * w;
                    }
                    if self.res_stamp[r2.index()] != e {
                        self.res_stamp[r2.index()] = e;
                        self.res_lidx[r2.index()] = self.comp_res.len() as u32;
                        if inc {
                            uf.push(self.comp_res.len() as u32);
                        }
                        self.comp_res.push(r2);
                        stack.push(r2);
                    }
                    if inc {
                        let li = self.res_lidx[r2.index()];
                        self.key.push(u64::from(li));
                        self.key.push(w.to_bits());
                        if root == u32::MAX {
                            root = Self::uf_find(&mut uf, li);
                        } else {
                            let b = Self::uf_find(&mut uf, li);
                            if b != root {
                                uf[b as usize] = root;
                            }
                        }
                    }
                }
            }
        }
        if comp.is_empty() {
            self.comp = comp;
            self.dfs = stack;
            self.uf = uf;
            return Ok(());
        }
        if inc {
            self.key[0] = comp.len() as u64;
            for &r in &self.comp_res {
                self.key
                    .push((rmap.capacity(r) * self.cap_scale[r.index()]).to_bits());
            }
        }

        // Water-fill the component, handing the filler a view straight into
        // the flow table — no per-call spec vector. Incremental mode probes
        // the filler's memo with the key assembled during the DFS (recurring
        // component shapes — every step of a ring, every symmetric node —
        // replay a stored solution bit-identically); scratch mode re-solves
        // from scratch every time.
        let filled = {
            let flows = &self.flows;
            let cap_scale = &self.cap_scale;
            let flow_view = |k: usize| {
                let f = &flows[comp[k] as usize];
                FlowSpec {
                    cap: f.cap,
                    resources: &f.resources,
                }
            };
            let capacity = |r: ResourceId| rmap.capacity(r) * cap_scale[r.index()];
            if inc {
                let res_lidx = &self.res_lidx;
                let comp_res = &self.comp_res;
                self.filler.fill_keyed(
                    &self.key,
                    comp.len(),
                    flow_view,
                    capacity,
                    |r| res_lidx[r.index()],
                    |li| comp_res[li as usize],
                    &mut self.rates,
                )
            } else {
                self.filler
                    .fill_view(comp.len(), flow_view, capacity, &mut self.rates, false)
            }
        };
        let touched = match filled {
            Ok(t) => t,
            Err(err) => {
                let op = self.flows[comp[err.flow()] as usize].op;
                self.comp = comp;
                self.dfs = stack;
                self.uf = uf;
                return Err(SimError::InvalidFlow { op, source: err });
            }
        };
        probe.waterfill(now, comp.len(), touched);

        // Rate updates, fused with the argmin accumulation: incremental
        // mode queues ONE prediction per connected sub-group — its argmin
        // stored `(t_fin, pred_seq)`. Any valid `Finish` pop recomputes over
        // the popped flow's whole sub-group, so predictions for later
        // finishers are recreated then — queueing them all now would only
        // produce events that get cancelled or superseded first. This turns
        // queue traffic from O(rate changes) per recompute (≈ the component
        // size on contended rings) into O(sub-groups) (usually 1). Stored
        // `(t_fin, pred_seq)` keys are reused verbatim, so the event a
        // prediction eventually fires as is bit-identical — time, order
        // among same-instant events, everything — to push-per-change.
        let mut best = std::mem::take(&mut self.group_best);
        let mut keeps = std::mem::take(&mut self.keeps);
        if inc {
            best.clear();
            best.resize(self.comp_res.len(), (u128::MAX, u32::MAX));
            keeps.clear();
        }
        for (k, &fi) in comp.iter().enumerate() {
            let new_rate = self.rates[k];
            let f = &mut self.flows[fi as usize];
            if self.faults_active && new_rate <= 0.0 {
                // Starved by a down rail: stall and schedule a retry. The
                // stalled flow stays registered on its resources so a
                // link-up recompute wakes it.
                if !f.stalled {
                    f.stalled = true;
                    f.version += 1; // invalidate any pending Finish
                    f.rate = 0.0;
                    let (flow, version, op) = (fi, f.version, f.op);
                    probe.flow_rate(op, flow, 0.0, now);
                    let t = now + self.retry_timeout;
                    self.cancel_finish(flow);
                    self.push_retry(t, flow, version);
                }
                continue;
            }
            let was_stalled = f.stalled;
            let changed = was_stalled || (new_rate - f.rate).abs() > RATE_EPS * f.cap;
            f.rate = new_rate;
            f.stalled = false;
            f.retries = 0;
            // Queue bookkeeping stays inline under the single `f` borrow
            // (`seq`, `finish_ev`, `cal`, `heap` are all disjoint fields) —
            // re-indexing the flow table or bouncing through `&mut self`
            // helpers costs real time at ~7 changed flows per event.
            if changed {
                f.version += 1;
                assert!(new_rate > 0.0, "flow starved by water-filling");
                let t_fin = now + f.remaining / new_rate;
                f.t_fin = t_fin;
                probe.flow_rate(f.op, fi, new_rate, now);
                if inc {
                    if was_stalled {
                        let slot = &mut self.retry_ev[fi as usize];
                        if slot.1 != 0 {
                            let (t, s) = *slot;
                            *slot = (0.0, 0);
                            let found = self.cal.remove(t, s);
                            debug_assert!(found, "retry slot pointed at a missing event");
                        }
                    }
                    // Queueing is deferred to the argmin pass below. Burn
                    // the sequence number the baseline would have stamped
                    // on this prediction and reserve it for the (possible)
                    // later push, then drop the superseded event — a
                    // surviving slot always means "time, seq and version
                    // unchanged since push".
                    self.seq += 1;
                    f.pred_seq = self.seq;
                    let slot = &mut self.finish_ev[fi as usize];
                    if slot.1 != 0 {
                        let (t, s) = *slot;
                        *slot = (0.0, 0);
                        let found = self.cal.remove(t, s);
                        debug_assert!(found, "finish slot pointed at a missing event");
                    }
                } else {
                    self.seq += 1;
                    let ev = Ev::Finish {
                        flow: fi,
                        version: f.version,
                    };
                    self.heap.push(HeapEv {
                        time: t_fin,
                        seq: self.seq,
                        ev,
                    });
                }
            } else if inc && self.finish_ev[fi as usize].1 != 0 {
                // Unchanged flow with a live queued prediction: it keeps
                // its event (and queue position) unless the pass below
                // finds its sub-group's argmin moved elsewhere. Stalled
                // and changed flows never land here — their slots were
                // just cancelled.
                keeps.push(fi);
            }
            if inc {
                if let Some(&(r0, _)) = f.resources.first() {
                    let g = Self::uf_find(&mut uf, self.res_lidx[r0.index()]) as usize;
                    // `t_fin` is non-negative, so the bit pattern orders
                    // like the float. Exact time ties MUST break by the
                    // reserved sequence number — that is the order the
                    // baseline pops same-instant predictions in.
                    let cand = (u128::from(f.t_fin.to_bits()) << 64) | u128::from(f.pred_seq);
                    if (cand, fi) < best[g] {
                        best[g] = (cand, fi);
                    }
                }
            }
        }
        if inc {
            // Queue each sub-group's argmin (push order across groups is
            // irrelevant — the queue sorts by key) and drop the queued
            // prediction of any unchanged flow the argmin moved away from.
            for &(_, fi) in &best {
                if fi != u32::MAX && self.finish_ev[fi as usize].1 == 0 {
                    let f = &self.flows[fi as usize];
                    let (t_fin, seq, version) = (f.t_fin, f.pred_seq, f.version);
                    self.push_finish_keyed(t_fin, seq, fi, version);
                }
            }
            for &fi in &keeps {
                let f = &self.flows[fi as usize];
                let Some(&(r0, _)) = f.resources.first() else {
                    continue;
                };
                let g = Self::uf_find(&mut uf, self.res_lidx[r0.index()]) as usize;
                if best[g].1 != fi {
                    self.cancel_finish(fi);
                }
            }
        }
        self.keeps = keeps;
        self.group_best = best;
        self.uf = uf;
        self.comp = comp;
        self.dfs = stack;
        Ok(())
    }

    /// Union-find lookup with path halving over the scratch parent table.
    fn uf_find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            let p = uf[x as usize];
            uf[x as usize] = uf[p as usize];
            x = uf[p as usize];
        }
        x
    }
}

/// Reusable engine memory: the event heap, flow table (with each flow's
/// inner resource vector), per-resource flow registries, readiness driver,
/// water-fill scratch, flow-spec emission buffers and the resource map.
///
/// Repeated [`Simulator::run_in`] calls through one arena allocate nothing
/// in the engine after the first (warm-up) run on a given schedule shape —
/// only the returned [`SimResult`] is built fresh. Results are bit-identical
/// to [`Simulator::run`]: every observable field is reset to its
/// cold-start value and flow slots are recycled in cold-run index order.
///
/// An arena is not tied to one simulator or schedule; it revalidates its
/// cached resource map against the run's `(grid, spec)` and rebuilds it on
/// mismatch.
#[derive(Debug, Default)]
pub struct EngineArena {
    st: EngineState,
    ready: Option<ReadySet>,
    op_flows_left: Vec<u32>,
    rr_next_rail: Vec<u8>,
    fault_events: Vec<FaultEvent>,
    specs: Vec<SpecTmp>,
    spec_res: Vec<(ResourceId, f64)>,
    rails: Vec<u8>,
    seeds: Vec<ResourceId>,
    finish_res: Vec<(ResourceId, f64)>,
    rmap: Option<RmapCache>,
}

/// The arena's cached resource layout, revalidated per run.
#[derive(Debug)]
struct RmapCache {
    grid: ProcGrid,
    spec: ClusterSpec,
    rmap: ResourceMap,
    labels: Vec<String>,
}

impl EngineArena {
    /// An empty arena; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        EngineArena::default()
    }
}

/// Programmatic override of check mode: 0 = none (fall back to the cached
/// `MHA_CHECK` read), 1 = forced off, 2 = forced on.
static CHECK_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Whether invariant-check mode is on.
///
/// Resolution order: the thread-safe programmatic override
/// ([`set_check_enabled`]) wins; otherwise the `MHA_CHECK` environment
/// variable (set to anything other than empty or `0`), read **once** per
/// process and cached — later `set_var`/`remove_var` calls have no effect,
/// which keeps the answer stable under the parallel test harness. The
/// `fig*` binaries enable it via `--check` before constructing any
/// [`Simulator`].
pub fn check_enabled() -> bool {
    match CHECK_OVERRIDE.load(std::sync::atomic::Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => {
            static CHECK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            *CHECK
                .get_or_init(|| std::env::var("MHA_CHECK").is_ok_and(|v| !v.is_empty() && v != "0"))
        }
    }
}

/// Forces check mode on (`Some(true)`), off (`Some(false)`), or back to the
/// cached `MHA_CHECK` environment read (`None`). Thread-safe; tests and the
/// bench harness use this instead of racing on `std::env::set_var`.
pub fn set_check_enabled(v: Option<bool>) {
    let code = match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    CHECK_OVERRIDE.store(code, std::sync::atomic::Ordering::SeqCst);
}

/// Programmatic override of the incremental allocator: 0 = none (fall back
/// to the cached `MHA_SCRATCH_FILL` read), 1 = forced scratch, 2 = forced
/// incremental.
static INCR_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Whether the incremental max-min allocator (memoized component replay +
/// keyed stale-event cancellation) is on. It is on by default and
/// **behavior-invisible**: every simulation result is bit-identical either
/// way — only speed changes. The scratch path exists as the
/// differential-testing reference (the conformance `waterfill` oracle runs
/// both and compares bits).
///
/// Resolution order mirrors [`check_enabled`]: the programmatic override
/// ([`set_incremental_enabled`]) wins; otherwise incremental unless the
/// `MHA_SCRATCH_FILL` environment variable is set (to anything other than
/// empty or `0`), read once per process and cached.
pub fn incremental_enabled() -> bool {
    match INCR_OVERRIDE.load(std::sync::atomic::Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => {
            static SCRATCH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            !*SCRATCH.get_or_init(|| {
                std::env::var("MHA_SCRATCH_FILL").is_ok_and(|v| !v.is_empty() && v != "0")
            })
        }
    }
}

/// Forces the incremental allocator on (`Some(true)`), off — i.e. scratch
/// mode — (`Some(false)`), or back to the cached `MHA_SCRATCH_FILL`
/// environment read (`None`). Thread-safe; the mode is sampled once per
/// run, and both modes produce bit-identical results, so flipping this
/// concurrently with other runs only affects their speed.
pub fn set_incremental_enabled(v: Option<bool>) {
    let code = match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    INCR_OVERRIDE.store(code, std::sync::atomic::Ordering::SeqCst);
}

/// A discrete-event simulator for one cluster specification.
#[derive(Debug, Clone)]
pub struct Simulator {
    spec: ClusterSpec,
    faults: Option<FaultSpec>,
}

impl Simulator {
    /// Creates a simulator, validating the spec.
    pub fn new(spec: ClusterSpec) -> Result<Self, SimError> {
        spec.validate().map_err(SimError::InvalidSpec)?;
        Ok(Simulator { spec, faults: None })
    }

    /// Creates a simulator with a fault timeline (see [`FaultSpec`]). Rail
    /// indices are validated here; node indices are validated against the
    /// grid on each run.
    pub fn with_faults(spec: ClusterSpec, faults: FaultSpec) -> Result<Self, SimError> {
        let mut sim = Simulator::new(spec)?;
        faults
            .validate(sim.spec.rails, u32::MAX)
            .map_err(SimError::InvalidSpec)?;
        sim.faults = Some(faults);
        Ok(sim)
    }

    /// The cluster being simulated.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fault timeline, if any.
    pub fn faults(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// Whether this simulator has a non-empty fault timeline. A
    /// [`FaultSpec`] with zero events is treated exactly like no spec at
    /// all: the engine skips the stall/retry machinery and the
    /// surviving-rail scans, taking the same zero-overhead path as a
    /// fault-free simulator.
    pub fn faults_active(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| !f.events.is_empty())
    }

    /// Simulates `sch` with default options; returns virtual-time results.
    pub fn run(&self, sch: &FrozenSchedule) -> Result<SimResult, SimError> {
        self.run_probed(sch, &mut NullProbe)
    }

    /// Simulates `sch` reusing `arena`'s allocations; bit-identical to
    /// [`Simulator::run`] (see [`EngineArena`]). This is the hot path the
    /// campaign runner replays cached schedules through.
    pub fn run_in(
        &self,
        sch: &FrozenSchedule,
        arena: &mut EngineArena,
    ) -> Result<SimResult, SimError> {
        self.run_probed_in(sch, &mut NullProbe, arena)
    }

    /// Simulates `sch` with explicit options.
    pub fn run_with(&self, sch: &FrozenSchedule, config: SimConfig) -> Result<SimResult, SimError> {
        if config.trace {
            let mut tb = TraceBuilder::new();
            let mut r = self.run_probed(sch, &mut tb)?;
            r.trace = Some(tb.finish(sch));
            Ok(r)
        } else {
            self.run_probed(sch, &mut NullProbe)
        }
    }

    /// Simulates `sch`, narrating the run through `probe` (see
    /// [`mha_sched::probe`] for the available sinks). The returned result
    /// never carries a [`Trace`]; use [`Simulator::run_with`] for that.
    ///
    /// When check mode is on (the `MHA_CHECK` environment variable is set
    /// to anything but `0`/empty — e.g. via a `fig*` binary's `--check`
    /// flag), every run is additionally audited by an
    /// [`mha_sched::InvariantProbe`] teed alongside `probe`, and any
    /// causality/capacity/conservation violation panics with a report.
    pub fn run_probed<P: Probe + ?Sized>(
        &self,
        sch: &FrozenSchedule,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        self.run_probed_in(sch, probe, &mut EngineArena::new())
    }

    /// [`Simulator::run_probed`] through a reusable [`EngineArena`].
    ///
    /// Generic over the probe so the no-probe path ([`Simulator::run_in`],
    /// the campaign hot loop) monomorphizes with [`NullProbe`] and every
    /// per-rate-change callback inlines to nothing — the event loop makes
    /// hundreds of thousands of probe calls per run, and a virtual dispatch
    /// on each is measurable. `&mut dyn Probe` still works (`dyn Probe`
    /// implements `Probe`).
    pub fn run_probed_in<P: Probe + ?Sized>(
        &self,
        sch: &FrozenSchedule,
        probe: &mut P,
        arena: &mut EngineArena,
    ) -> Result<SimResult, SimError> {
        if check_enabled() {
            let mut audit = mha_sched::InvariantProbe::new();
            let r = self.run_probed_inner(sch, &mut mha_sched::Tee(probe, &mut audit), arena)?;
            audit.assert_clean();
            Ok(r)
        } else {
            self.run_probed_inner(sch, probe, arena)
        }
    }

    fn run_probed_inner<P: Probe + ?Sized>(
        &self,
        sch: &FrozenSchedule,
        probe: &mut P,
        arena: &mut EngineArena,
    ) -> Result<SimResult, SimError> {
        sch.validate_for(Some(self.spec.rails))?;
        let grid = *sch.grid();
        if grid.ppn() > self.spec.cores_per_node {
            return Err(SimError::PpnExceedsCores {
                ppn: grid.ppn(),
                cores: self.spec.cores_per_node,
            });
        }
        if let Some(faults) = &self.faults {
            faults
                .validate(self.spec.rails, grid.nodes())
                .map_err(SimError::InvalidSpec)?;
        }
        let rmap_fresh = !arena
            .rmap
            .as_ref()
            .is_some_and(|c| c.grid == grid && c.spec == self.spec);
        if rmap_fresh {
            let rmap = ResourceMap::new(&grid, &self.spec);
            let labels = (0..rmap.len())
                .map(|i| rmap.label(ResourceId(i as u32)))
                .collect();
            arena.rmap = Some(RmapCache {
                grid,
                spec: self.spec.clone(),
                rmap,
                labels,
            });
        }
        let EngineArena {
            st,
            ready,
            op_flows_left,
            rr_next_rail,
            fault_events,
            specs,
            spec_res,
            rails,
            seeds,
            finish_res,
            rmap: rmap_cache,
        } = arena;
        let cache = rmap_cache.as_ref().expect("resource map cached above");
        let rmap = &cache.rmap;

        let n_ops = sch.n_ops();
        probe.begin_run(sch, "simnet");
        let narrate_flows = probe.wants_flows();
        if narrate_flows {
            for (i, label) in cache.labels.iter().enumerate() {
                probe.resource_decl(i as u32, label, rmap.capacity(ResourceId(i as u32)));
            }
        }

        match ready {
            Some(r) => r.reset(sch),
            None => *ready = Some(ReadySet::new(sch)),
        }
        let ready = ready.as_mut().expect("readiness driver installed above");

        let mut op_end = vec![f64::NAN; n_ops];
        op_flows_left.clear();
        op_flows_left.resize(n_ops, 0);
        rr_next_rail.clear();
        rr_next_rail.resize(grid.nodes() as usize, 0);

        let faults_active = self.faults_active();
        st.reset(
            rmap.len(),
            faults_active,
            self.faults.as_ref().map_or(0.0, |f| f.retry_timeout),
        );

        // Fault boundaries enter the heap before the roots so a fault at
        // t=0 rescales capacities before any same-instant op start. Without
        // a fault timeline no events are pushed and the heap order is
        // byte-identical to the fault-free engine.
        fault_events.clear();
        if let Some(faults) = &self.faults {
            fault_events.extend_from_slice(&faults.events);
            fault_events.sort_by(|a, b| a.time.total_cmp(&b.time));
            for (i, ev) in fault_events.iter().enumerate() {
                st.push_event(ev.time, Ev::Fault { idx: i as u32 });
            }
        }

        for &i in sch.roots() {
            probe.op_ready(i, 0.0);
            let alpha = self.op_alpha(sch, i as usize);
            // Release delays (job arrival / think times from the traffic
            // layer) hold the start back; the guard keeps release-free
            // schedules on the exact `alpha` the engine always used.
            let rel = sch.release_of(mha_sched::OpId(i));
            let start = if rel > 0.0 { alpha + rel } else { alpha };
            st.push_event(start, Ev::Start { op: i });
        }

        let mut events = 0u64;
        let mut makespan = 0.0f64;

        // `events` counts *processed* events: pops that survive their
        // staleness checks. (Incremental mode deletes superseded events
        // instead of popping them, so counting raw pops would make the
        // diagnostic depend on the allocator mode.)
        while let Some((time, seq, ev)) = st.pop_event() {
            match ev {
                Ev::Start { op } => {
                    events += 1;
                    let oi = op as usize;
                    probe.op_start(op, time);
                    self.emit_op_flows(
                        sch,
                        oi,
                        rmap,
                        &grid,
                        rr_next_rail,
                        &st.cap_scale,
                        specs,
                        spec_res,
                        rails,
                    );
                    seeds.clear();
                    let mut created = 0u32;
                    for &sp in specs.iter() {
                        if sp.bytes <= 0.0 {
                            continue;
                        }
                        created += 1;
                        let fi = if let Some(fi) = st.free_flows.pop() {
                            fi as usize
                        } else {
                            st.flows.push(Flow {
                                op,
                                resources: ResList::new(),
                                cap: 1.0,
                                remaining: 0.0,
                                rate: 0.0,
                                last_update: 0.0,
                                t_fin: 0.0,
                                pred_seq: 0,
                                version: 0,
                                alive: false,
                                stalled: false,
                                retries: 0,
                                route: None,
                            });
                            st.flow_stamp.push(0);
                            st.finish_ev.push((0.0, 0));
                            st.retry_ev.push((0.0, 0));
                            st.flows.len() - 1
                        };
                        {
                            // Field-wise refill keeps the slot's inner
                            // resource vector allocation alive.
                            let f = &mut st.flows[fi];
                            f.op = op;
                            f.resources.clear();
                            f.resources.extend_from_slice(
                                &spec_res[sp.res_lo as usize..sp.res_hi as usize],
                            );
                            f.cap = sp.cap;
                            f.remaining = sp.bytes;
                            f.rate = 0.0;
                            f.last_update = time;
                            f.t_fin = 0.0;
                            f.pred_seq = 0;
                            f.version += 1;
                            f.alive = true;
                            f.stalled = false;
                            f.retries = 0;
                            f.route = sp.route;
                        }
                        let no_resources = sp.res_lo == sp.res_hi;
                        for &(r, _) in &spec_res[sp.res_lo as usize..sp.res_hi as usize] {
                            st.res_flows[r.index()].push(fi as u32);
                            seeds.push(r);
                        }
                        if narrate_flows {
                            let f = &st.flows[fi];
                            let res: Vec<(u32, f64)> =
                                f.resources.iter().map(|&(r, w)| (r.0, w)).collect();
                            probe.flow_begin(op, fi as u32, &res, f.cap, f.remaining, time);
                        }
                        if no_resources {
                            // Pure compute never contends: run at cap now.
                            let f = &mut st.flows[fi];
                            f.rate = f.cap;
                            let t_fin = time + f.remaining / f.rate;
                            let (version, rate) = (f.version, f.rate);
                            probe.flow_rate(op, fi as u32, rate, time);
                            st.push_finish(t_fin, fi as u32, version);
                        }
                        st.active_flows += 1;
                    }
                    st.max_active = st.max_active.max(st.active_flows);
                    if created == 0 {
                        // Latency-only op (e.g. Compute { flops: 0 }).
                        op_end[oi] = time;
                        probe.op_end(op, time);
                        makespan = makespan.max(time);
                        self.enqueue_ready(sch, op, time, ready, probe, st);
                        continue;
                    }
                    op_flows_left[oi] = created;
                    if !seeds.is_empty() {
                        st.recompute(time, seeds, rmap, probe)?;
                    }
                }
                Ev::Finish { flow, version } => {
                    let fi = flow as usize;
                    if st.finish_ev[fi].1 == seq {
                        st.finish_ev[fi] = (0.0, 0);
                    }
                    if !st.flows[fi].alive || st.flows[fi].version != version {
                        continue; // stale prediction
                    }
                    events += 1;
                    let flow_op: u32;
                    let moved: f64;
                    {
                        let f = &mut st.flows[fi];
                        let dt = time - f.last_update;
                        moved = (f.rate * dt).min(f.remaining);
                        f.remaining -= moved;
                        f.last_update = time;
                        debug_assert!(
                            f.remaining < 1.0,
                            "flow finished with {} bytes left",
                            f.remaining
                        );
                        f.alive = false;
                        f.version += 1;
                        flow_op = f.op;
                        // Copy-out instead of `mem::take` keeps the flow
                        // slot's resource allocation for the next user.
                        finish_res.clear();
                        finish_res.extend_from_slice(&f.resources);
                        f.resources.clear();
                    }
                    for &(r, w) in finish_res.iter() {
                        st.resource_bytes[r.index()] += moved * w;
                    }
                    if narrate_flows {
                        probe.flow_end(flow_op, flow, time);
                    }
                    seeds.clear();
                    seeds.extend(finish_res.iter().map(|&(r, _)| r));
                    for &r in seeds.iter() {
                        let list = &mut st.res_flows[r.index()];
                        if let Some(pos) = list.iter().position(|&x| x == flow) {
                            list.swap_remove(pos);
                        }
                    }
                    st.free_flows.push(flow);
                    st.active_flows -= 1;

                    let oi = flow_op as usize;
                    op_flows_left[oi] -= 1;
                    if op_flows_left[oi] == 0 {
                        op_end[oi] = time;
                        probe.op_end(flow_op, time);
                        makespan = makespan.max(time);
                        self.enqueue_ready(sch, flow_op, time, ready, probe, st);
                    }
                    if !seeds.is_empty() {
                        st.recompute(time, seeds, rmap, probe)?;
                    }
                }
                Ev::Fault { idx } => {
                    events += 1;
                    let fe = fault_events[idx as usize];
                    seeds.clear();
                    if matches!(fe.kind, FaultKind::NodeDown | FaultKind::NodeUp) {
                        // Whole-node crash/restart: every resource the node
                        // owns — CPUs, memory ports, the cross-socket link,
                        // and all rails of its HCAs — goes to 0 (or back to
                        // nominal). Stalled rail flows back off until the
                        // restart; CPU/mem flows wake on the recompute the
                        // NodeUp seeds.
                        let scale = if matches!(fe.kind, FaultKind::NodeDown) {
                            0.0
                        } else {
                            1.0
                        };
                        let n = NodeId(fe.node.expect("validated: node faults carry a node"));
                        for rank in grid.ranks_of(n) {
                            seeds.push(rmap.cpu(rank));
                        }
                        for s in 0..self.spec.sockets() {
                            seeds.push(rmap.mem(n, s));
                        }
                        for h in 0..self.spec.rails {
                            seeds.push(rmap.tx(n, h));
                            seeds.push(rmap.rx(n, h));
                        }
                        if self.spec.sockets() > 1 {
                            seeds.push(rmap.xsocket(n));
                        }
                        for &r in seeds.iter() {
                            st.cap_scale[r.index()] = scale;
                            probe.resource_capacity(r.0, rmap.capacity(r) * scale, time);
                        }
                    } else {
                        let scale = match fe.kind {
                            FaultKind::Derate(f) => f,
                            FaultKind::Down => 0.0,
                            FaultKind::Up => 1.0,
                            FaultKind::NodeDown | FaultKind::NodeUp => unreachable!(),
                        };
                        let (n_lo, n_hi) = match fe.node {
                            Some(n) => (n, n + 1),
                            None => (0, grid.nodes()),
                        };
                        for n in (n_lo..n_hi).map(NodeId) {
                            for r in [rmap.tx(n, fe.rail), rmap.rx(n, fe.rail)] {
                                st.cap_scale[r.index()] = scale;
                                probe.resource_capacity(r.0, rmap.capacity(r) * scale, time);
                                seeds.push(r);
                            }
                        }
                    }
                    st.recompute(time, seeds, rmap, probe)?;
                }
                Ev::Retry { flow, version } => {
                    let fi = flow as usize;
                    if st.retry_ev[fi].1 == seq {
                        st.retry_ev[fi] = (0.0, 0);
                    }
                    if !st.flows[fi].alive
                        || st.flows[fi].version != version
                        || !st.flows[fi].stalled
                    {
                        continue; // the flow finished or already woke up
                    }
                    events += 1;
                    let Some((sn, dn, cur)) = st.flows[fi].route else {
                        continue; // non-rail flows never stall on a fault
                    };
                    // First surviving rail, scanning round-robin from the
                    // rail after the one we stalled on.
                    let mut next: Option<u8> = None;
                    for off in 1..=self.spec.rails {
                        let h =
                            ((u16::from(cur) + u16::from(off)) % u16::from(self.spec.rails)) as u8;
                        if st.cap_scale[rmap.tx(sn, h).index()] > 0.0
                            && st.cap_scale[rmap.rx(dn, h).index()] > 0.0
                        {
                            next = Some(h);
                            break;
                        }
                    }
                    match next {
                        Some(h) => {
                            // Re-issue: move the flow onto the surviving
                            // rail, keeping identity and remaining bytes.
                            // `seeds` doubles as the old-resource scratch —
                            // the recompute below must seed both the rails
                            // the flow left and the ones it joined.
                            seeds.clear();
                            seeds.extend(st.flows[fi].resources.iter().map(|&(r, _)| r));
                            for &r in seeds.iter() {
                                let list = &mut st.res_flows[r.index()];
                                if let Some(pos) = list.iter().position(|&x| x == flow) {
                                    list.swap_remove(pos);
                                }
                            }
                            let (txr, rxr) = (rmap.tx(sn, h), rmap.rx(dn, h));
                            {
                                let f = &mut st.flows[fi];
                                f.resources.clear();
                                f.resources.push((txr, 1.0));
                                f.resources.push((rxr, 1.0));
                                f.route = Some((sn, dn, h));
                                f.retries = 0;
                            }
                            st.res_flows[txr.index()].push(flow);
                            st.res_flows[rxr.index()].push(flow);
                            if narrate_flows {
                                let res: Vec<(u32, f64)> = st.flows[fi]
                                    .resources
                                    .iter()
                                    .map(|&(r, w)| (r.0, w))
                                    .collect();
                                probe.flow_resources(st.flows[fi].op, flow, &res, time);
                            }
                            seeds.push(txr);
                            seeds.push(rxr);
                            st.recompute(time, seeds, rmap, probe)?;
                        }
                        None => {
                            // No rail survives: back off exponentially
                            // (saturating at the documented 2^10 cap — the
                            // counter itself must not wrap past it) and try
                            // again. If every rail stays down forever the
                            // run ends at the deadlock assertion below.
                            let f = &mut st.flows[fi];
                            f.retries = f.retries.saturating_add(1);
                            let backoff = (1u64 << f.retries.min(MAX_BACKOFF_SHIFT)) as f64;
                            let t = time + st.retry_timeout * backoff;
                            st.push_retry(t, flow, version);
                        }
                    }
                }
            }
        }

        assert!(
            ready.is_done(),
            "simulation deadlocked: {} of {n_ops} ops incomplete",
            ready.remaining()
        );

        for (i, label) in cache.labels.iter().enumerate() {
            probe.resource_sample(label, st.resource_bytes[i], rmap.capacities()[i]);
        }
        probe.end_run(makespan);

        Ok(SimResult {
            makespan,
            op_end,
            trace: None,
            events,
            max_concurrent_flows: st.max_active,
            resource_bytes: st.resource_bytes.clone(),
            resource_capacity: rmap.capacities().to_vec(),
            resource_labels: cache.labels.clone(),
        })
    }

    /// Releases successors of completed op `op` through the shared readiness
    /// driver and schedules their starts after their startup latencies.
    fn enqueue_ready<P: Probe + ?Sized>(
        &self,
        sch: &FrozenSchedule,
        op: u32,
        time: f64,
        ready: &mut ReadySet,
        probe: &mut P,
        st: &mut EngineState,
    ) {
        ready.complete(sch, op, |s| {
            probe.op_ready(s, time);
            let alpha = self.op_alpha(sch, s as usize);
            let rel = sch.release_of(mha_sched::OpId(s));
            let start = if rel > 0.0 {
                time + alpha + rel
            } else {
                time + alpha
            };
            st.push_event(start, Ev::Start { op: s });
        });
    }

    /// Whether any of `locs` lives in a node-shared buffer whose home
    /// socket differs from `actor_socket`.
    fn touches_remote_home(sch: &Schedule, locs: &[mha_sched::Loc], actor_socket: u32) -> bool {
        locs.iter().any(|loc| {
            sch.buffer(loc.buf)
                .home_socket
                .is_some_and(|h| h != actor_socket)
        })
    }

    /// Startup latency of op `oi`.
    fn op_alpha(&self, sch: &Schedule, oi: usize) -> f64 {
        match &sch.ops()[oi].kind {
            OpKind::Transfer {
                src_rank,
                dst_rank,
                len,
                channel,
                ..
            } => match channel {
                Channel::Cma => {
                    let grid = sch.grid();
                    let xs = self
                        .spec
                        .numa
                        .as_ref()
                        .filter(|n| n.cross_socket(grid, *src_rank, *dst_rank))
                        .map_or(0.0, |n| n.xsocket_alpha);
                    self.spec.cma_alpha + xs
                }
                Channel::Rail(_) | Channel::AllRails => self.spec.rail_startup(*len),
            },
            OpKind::Copy { .. } | OpKind::Reduce { .. } => self.spec.copy_alpha,
            OpKind::Compute { .. } => 0.0,
        }
    }

    /// Expands op `oi` into flow specs, emitting `(cap, bytes, route)`
    /// rows into `out` and the flows' `(resource, weight)` pairs into the
    /// flat scratch `res` — no per-op allocation once the scratch buffers
    /// are warm. The round-robin rail for small `AllRails` messages is
    /// chosen here — i.e. when the transfer actually starts, matching an
    /// MPI pt2pt layer choosing the rail as the message hits the wire.
    /// Under an active (non-empty) fault timeline, `AllRails` resolves
    /// against the rails currently up for this src/dst pair
    /// (`cap_scale > 0`), re-tiling the stripe over the survivors.
    #[allow(clippy::too_many_arguments)]
    fn emit_op_flows(
        &self,
        sch: &Schedule,
        oi: usize,
        rmap: &ResourceMap,
        grid: &ProcGrid,
        rr_next_rail: &mut [u8],
        cap_scale: &[f64],
        out: &mut Vec<SpecTmp>,
        res: &mut Vec<(ResourceId, f64)>,
        rails: &mut Vec<u8>,
    ) {
        out.clear();
        res.clear();
        let spec = &self.spec;
        let faults_active = self.faults_active();
        // Seals the resources pushed since `lo` into one spec row.
        fn seal(
            out: &mut Vec<SpecTmp>,
            res: &[(ResourceId, f64)],
            lo: usize,
            cap: f64,
            bytes: f64,
            route: Option<RailRoute>,
        ) {
            out.push(SpecTmp {
                cap,
                bytes,
                route,
                res_lo: lo as u32,
                res_hi: res.len() as u32,
            });
        }
        match &sch.ops()[oi].kind {
            OpKind::Transfer {
                src_rank,
                dst_rank,
                len,
                channel,
                ..
            } => {
                let sn = grid.node_of(*src_rank);
                let dn = grid.node_of(*dst_rank);
                match channel {
                    Channel::Cma => {
                        let sck = socket_of(spec, grid, *dst_rank);
                        let lo = res.len();
                        res.push((rmap.cpu(*dst_rank), 1.0));
                        res.push((rmap.mem(dn, sck), spec.cma_mem_weight));
                        if let Some(numa) = &spec.numa {
                            if numa.cross_socket(grid, *src_rank, *dst_rank) {
                                res.push((rmap.xsocket(dn), 1.0));
                            }
                        }
                        seal(out, res, lo, spec.cma_bw, *len as f64, None);
                    }
                    Channel::Rail(h) => {
                        let lo = res.len();
                        res.push((rmap.tx(sn, *h), 1.0));
                        res.push((rmap.rx(dn, *h), 1.0));
                        seal(out, res, lo, spec.rail_bw, *len as f64, Some((sn, dn, *h)));
                    }
                    Channel::AllRails => {
                        let rail_up = |r: u8| {
                            cap_scale[rmap.tx(sn, r).index()] > 0.0
                                && cap_scale[rmap.rx(dn, r).index()] > 0.0
                        };
                        if spec.stripes(*len) {
                            // Resolve against the surviving-rail set. Only
                            // consulted under a fault timeline; otherwise
                            // every rail is up and the tiling is identical
                            // to the fault-free engine. If every rail is
                            // down, issue on the full set and let the
                            // stall/retry machinery wait out the outage.
                            rails.clear();
                            if faults_active {
                                rails.extend((0..spec.rails).filter(|&r| rail_up(r)));
                                if rails.is_empty() {
                                    rails.extend(0..spec.rails);
                                }
                            } else {
                                rails.extend(0..spec.rails);
                            }
                            let k = rails.len();
                            let base = *len / k;
                            let rem = *len % k;
                            for (i, &r) in rails.iter().enumerate() {
                                let bytes = base + usize::from(i < rem);
                                if bytes == 0 {
                                    continue;
                                }
                                let lo = res.len();
                                res.push((rmap.tx(sn, r), 1.0));
                                res.push((rmap.rx(dn, r), 1.0));
                                seal(out, res, lo, spec.rail_bw, bytes as f64, Some((sn, dn, r)));
                            }
                        } else {
                            let mut h = rr_next_rail[sn.index()];
                            if faults_active {
                                // Skip dead rails; if all are down, keep
                                // the scheduled one and stall.
                                for _ in 0..spec.rails {
                                    if rail_up(h) {
                                        break;
                                    }
                                    h = (h + 1) % spec.rails;
                                }
                            }
                            rr_next_rail[sn.index()] = (h + 1) % spec.rails;
                            let lo = res.len();
                            res.push((rmap.tx(sn, h), 1.0));
                            res.push((rmap.rx(dn, h), 1.0));
                            seal(out, res, lo, spec.rail_bw, *len as f64, Some((sn, dn, h)));
                        }
                    }
                }
            }
            OpKind::Copy {
                actor,
                src,
                dst,
                len,
            } => {
                let node = grid.node_of(*actor);
                let sck = socket_of(spec, grid, *actor);
                let lo = res.len();
                res.push((rmap.cpu(*actor), 1.0));
                res.push((rmap.mem(node, sck), 1.0));
                // First-touch shm pages on another socket route the copy
                // through the cross-socket interconnect.
                if spec.numa.is_some() && Self::touches_remote_home(sch, &[*src, *dst], sck) {
                    res.push((rmap.xsocket(node), 1.0));
                }
                seal(out, res, lo, spec.copy_bw, *len as f64, None);
            }
            OpKind::Reduce {
                actor,
                acc,
                operand,
                len,
                ..
            } => {
                let node = grid.node_of(*actor);
                let sck = socket_of(spec, grid, *actor);
                let lo = res.len();
                res.push((rmap.cpu(*actor), 1.0));
                res.push((rmap.mem(node, sck), spec.reduce_mem_weight));
                if spec.numa.is_some() && Self::touches_remote_home(sch, &[*acc, *operand], sck) {
                    res.push((rmap.xsocket(node), 1.0));
                }
                seal(out, res, lo, spec.reduce_bw(), *len as f64, None);
            }
            OpKind::Compute { actor, flops } => {
                // Convert FLOPs to CPU byte-equivalents so compute and copy
                // contend for the same core in one unit system.
                let bytes = *flops as f64 * spec.copy_bw / spec.flops_rate;
                let lo = res.len();
                res.push((rmap.cpu(*actor), 1.0));
                seal(out, res, lo, spec.copy_bw, bytes, None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{Loc, RankId, ScheduleBuilder};

    fn sim() -> Simulator {
        Simulator::new(ClusterSpec::thor()).unwrap()
    }

    fn rel_close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-30)
    }

    #[test]
    fn single_cma_transfer_matches_alpha_beta() {
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "cma1");
        let len = 1 << 20;
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::Cma,
            &[],
            0,
        );
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.cma_alpha + len as f64 / spec.cma_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn single_rail_transfer_includes_rendezvous() {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "rail1");
        let len = 1 << 20;
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::Rail(0),
            &[],
            0,
        );
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_alpha + spec.rndv_extra + len as f64 / spec.rail_bw;
        assert!(rel_close(r.makespan, expect, 1e-9));
    }

    #[test]
    fn striped_transfer_is_about_twice_as_fast() {
        let grid = ProcGrid::new(2, 1);
        let len = 4 << 20;
        let build = |ch| {
            let mut b = ScheduleBuilder::new(grid, "t");
            let s = b.private_buf(RankId(0), len, "s");
            let d = b.private_buf(RankId(1), len, "d");
            b.transfer(
                RankId(0),
                RankId(1),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                ch,
                &[],
                0,
            );
            b.finish().freeze()
        };
        let one = sim().run(&build(Channel::Rail(0))).unwrap().makespan;
        let both = sim().run(&build(Channel::AllRails)).unwrap().makespan;
        let ratio = one / both;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio = {ratio}");
    }

    #[test]
    fn small_allrails_messages_round_robin_across_rails() {
        // Two small concurrent messages from the same node should land on
        // different rails and overlap almost perfectly.
        let grid = ProcGrid::new(2, 2);
        let len = 4096;
        let mut b = ScheduleBuilder::new(grid, "rr");
        for r in 0..2u32 {
            let s = b.private_buf(RankId(r), len, "s");
            let d = b.private_buf(RankId(r + 2), len, "d");
            b.transfer(
                RankId(r),
                RankId(r + 2),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::AllRails,
                &[],
                0,
            );
        }
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let single = spec.rail_alpha + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, single, 1e-6),
            "round-robin should overlap: {} vs {single}",
            r.makespan
        );
    }

    #[test]
    fn two_cma_transfers_to_one_rank_share_its_cpu() {
        let grid = ProcGrid::single_node(3);
        let len = 1 << 20;
        let mut b = ScheduleBuilder::new(grid, "share");
        let d = b.private_buf(RankId(2), 2 * len, "d");
        for r in 0..2u32 {
            let s = b.private_buf(RankId(r), len, "s");
            b.transfer(
                RankId(r),
                RankId(2),
                Loc::new(s, 0),
                Loc::new(d, (r as usize) * len),
                len,
                Channel::Cma,
                &[],
                0,
            );
        }
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        // Both CMA flows cross cpu(r2) with capacity copy_bw: each gets
        // copy_bw / 2 (their own cap cma_bw is not binding at that point).
        let expect = spec.cma_alpha + len as f64 / (spec.copy_bw / 2.0);
        assert!(
            rel_close(r.makespan, expect, 1e-6),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn memory_congestion_emerges_with_many_copies() {
        let spec = ClusterSpec::thor();
        let l = 8u32;
        let grid = ProcGrid::single_node(l);
        let len = 1 << 20;
        let mut b = ScheduleBuilder::new(grid, "mem");
        let shm = b.shared_buf(mha_sched::NodeId(0), len, "shm");
        for r in 0..l {
            let d = b.private_buf(RankId(r), len, "d");
            b.copy(RankId(r), Loc::new(shm, 0), Loc::new(d, 0), len, &[], 0);
        }
        let r = sim().run(&b.finish().freeze()).unwrap();
        // 8 copies share mem_bw = 42 GB/s → 5.25 GB/s each, well under the
        // 13 GB/s per-core cap.
        let expect = spec.copy_alpha + len as f64 / (spec.mem_bw / l as f64);
        assert!(
            rel_close(r.makespan, expect, 1e-6),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn dependency_chain_adds_latencies() {
        let grid = ProcGrid::single_node(2);
        let len = 64 * 1024;
        let mut b = ScheduleBuilder::new(grid, "chain");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        let e = b.private_buf(RankId(1), len, "e");
        let t1 = b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::Cma,
            &[],
            0,
        );
        b.copy(RankId(1), Loc::new(d, 0), Loc::new(e, 0), len, &[t1], 1);
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.t_c(len) + spec.t_l(len);
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn compute_duration_is_flops_over_rate() {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "comp");
        b.compute(RankId(0), 5_000_000, &[], 0);
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let expect = 5.0e6 / spec.flops_rate;
        assert!(rel_close(r.makespan, expect, 1e-9));
    }

    #[test]
    fn zero_flop_compute_completes_instantly() {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "zero");
        let c = b.compute(RankId(0), 0, &[], 0);
        b.compute(RankId(0), 1000, &[c], 1);
        let r = sim().run(&b.finish().freeze()).unwrap();
        assert!(r.makespan > 0.0);
        assert_eq!(r.op_end.len(), 2);
        assert!(r.op_end[0] <= r.op_end[1]);
    }

    #[test]
    fn op_end_respects_dependencies() {
        let grid = ProcGrid::single_node(4);
        let mut b = ScheduleBuilder::new(grid, "deps");
        let mut prev = None;
        for i in 0..10u32 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.compute(RankId(i % 4), 1000, &deps, i));
        }
        let sch = b.finish().freeze();
        let r = sim().run(&sch).unwrap();
        for op in sch.ops() {
            for &d in &op.deps {
                assert!(r.op_end[d.index()] <= r.op_end[op.id.index()]);
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let grid = ProcGrid::new(2, 4);
        let mut b = ScheduleBuilder::new(grid, "det");
        for r in 0..4u32 {
            let len = 10_000 * (r as usize + 1);
            let s = b.private_buf(RankId(r), len, "s");
            let d = b.private_buf(RankId(r + 4), len, "d");
            b.transfer(
                RankId(r),
                RankId(r + 4),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::AllRails,
                &[],
                0,
            );
        }
        let sch = b.finish().freeze();
        let a = sim().run(&sch).unwrap();
        let b2 = sim().run(&sch).unwrap();
        assert_eq!(a.makespan, b2.makespan);
        assert_eq!(a.op_end, b2.op_end);
        assert_eq!(a.events, b2.events);
    }

    #[test]
    fn ppn_over_cores_is_rejected() {
        let grid = ProcGrid::single_node(64);
        let mut b = ScheduleBuilder::new(grid, "big");
        b.compute(RankId(0), 1, &[], 0);
        let err = sim().run(&b.finish().freeze()).unwrap_err();
        assert!(matches!(
            err,
            SimError::PpnExceedsCores { ppn: 64, cores: 32 }
        ));
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "bad");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(1), 8, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Rail(7),
            &[],
            0,
        );
        assert!(matches!(
            sim().run(&b.finish().freeze()).unwrap_err(),
            SimError::InvalidSchedule(_)
        ));
    }

    #[test]
    fn utilization_is_bounded_and_bottleneck_sane() {
        let grid = ProcGrid::new(2, 1);
        let len = 1 << 22;
        let mut b = ScheduleBuilder::new(grid, "util");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::Rail(0),
            &[],
            0,
        );
        let r = sim().run(&b.finish().freeze()).unwrap();
        for u in r.utilization() {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        let (label, util) = r.bottleneck().unwrap();
        assert!(
            label.starts_with("tx") || label.starts_with("rx"),
            "{label}"
        );
        assert!(util > 0.9, "rail should be nearly saturated: {util}");
    }

    #[test]
    fn striping_handles_non_divisible_lengths() {
        // An odd length splits into base/base+1 subflows; all bytes must
        // arrive and the makespan matches the larger stripe.
        let grid = ProcGrid::new(2, 1);
        let len = (1 << 20) + 1; // odd, above stripe threshold
        let mut b = ScheduleBuilder::new(grid, "odd");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::AllRails,
            &[],
            0,
        );
        let r = sim().run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_startup(len) + len.div_ceil(2) as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
        // Both rails carried traffic.
        let tx_bytes: f64 = r
            .resource_labels
            .iter()
            .zip(&r.resource_bytes)
            .filter(|(l, _)| l.starts_with("tx(n0"))
            .map(|(_, b)| *b)
            .sum();
        assert!((tx_bytes - len as f64).abs() < 1.0);
    }

    #[test]
    fn single_rail_cluster_never_stripes() {
        let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
        let grid = ProcGrid::new(2, 1);
        let len = 1 << 20;
        let mut b = ScheduleBuilder::new(grid, "one-rail");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::AllRails,
            &[],
            0,
        );
        let r = one.run(&b.finish().freeze()).unwrap();
        let spec = ClusterSpec::thor_single_rail();
        let expect = spec.rail_startup(len) + len as f64 / spec.rail_bw;
        assert!(rel_close(r.makespan, expect, 1e-9));
        assert_eq!(r.max_concurrent_flows, 1);
    }

    #[test]
    fn event_count_is_linear_in_ops_for_chain_schedules() {
        // A dependency chain produces O(1) events per op (no rate-change
        // amplification when components are singletons).
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "chain");
        let n = 200u32;
        let buf = b.private_buf(RankId(0), 64, "p");
        let buf2 = b.private_buf(RankId(0), 64, "q");
        let mut prev = None;
        for i in 0..n {
            let deps: Vec<_> = prev.into_iter().collect();
            let (s, d) = if i % 2 == 0 { (buf, buf2) } else { (buf2, buf) };
            prev = Some(b.copy(RankId(0), Loc::new(s, 0), Loc::new(d, 0), 64, &deps, i));
        }
        let r = sim().run(&b.finish().freeze()).unwrap();
        assert!(r.events <= 3 * u64::from(n), "events {}", r.events);
    }

    #[test]
    fn numa_cross_socket_cma_pays_the_interconnect() {
        let spec = ClusterSpec::thor_numa();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::single_node(8); // sockets: ranks 0-3 / 4-7
        let len = 1 << 20;
        let build = |src: u32, dst: u32| {
            let mut b = ScheduleBuilder::new(grid, "numa");
            let s = b.private_buf(RankId(src), len, "s");
            let d = b.private_buf(RankId(dst), len, "d");
            b.transfer(
                RankId(src),
                RankId(dst),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::Cma,
                &[],
                0,
            );
            b.finish().freeze()
        };
        let same = sim.run(&build(0, 1)).unwrap().makespan;
        let cross = sim.run(&build(0, 5)).unwrap().makespan;
        // Even one cross-socket stream runs at the interconnect's
        // effective rate rather than the local controller's…
        assert!(cross > same * 1.3, "cross {cross} vs same {same}");
        // …and concurrent cross-socket streams share it.
        let mut b = ScheduleBuilder::new(grid, "numa-congested");
        for i in 0..4u32 {
            let s = b.private_buf(RankId(i), len, "s");
            let d = b.private_buf(RankId(i + 4), len, "d");
            b.transfer(
                RankId(i),
                RankId(i + 4),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::Cma,
                &[],
                0,
            );
        }
        let congested = sim.run(&b.finish().freeze()).unwrap().makespan;
        let numa = spec.numa.as_ref().unwrap();
        let expect = spec.cma_alpha + numa.xsocket_alpha + len as f64 / (numa.xsocket_bw / 4.0);
        assert!(
            (congested - expect).abs() < 0.05 * expect,
            "congested {congested} vs expected {expect}"
        );
    }

    #[test]
    fn numa_same_socket_traffic_is_unaffected() {
        // Same-socket transfers on the NUMA spec behave like the uniform
        // model with a per-socket memory controller.
        let numa = Simulator::new(ClusterSpec::thor_numa()).unwrap();
        let grid = ProcGrid::single_node(4); // all on socket 0
        let len = 256 * 1024;
        let mut b = ScheduleBuilder::new(grid, "same-socket");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::Cma,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let spec = ClusterSpec::thor_numa();
        let t = numa.run(&sch).unwrap().makespan;
        // One CMA stream on one socket: bounded by the per-socket memory
        // controller (mem_bw/2 at weight 2 = 10.5 GB/s), not the 11 GB/s
        // CMA cap.
        let per_socket = spec.mem_bw / 2.0 / spec.cma_mem_weight;
        let expect = spec.cma_alpha + len as f64 / per_socket.min(spec.cma_bw);
        assert!(
            (t - expect).abs() < 1e-9 * expect.max(1.0),
            "{t} vs {expect}"
        );
    }

    #[test]
    fn invariant_probe_passes_on_contended_schedules() {
        // Heavy sharing: many CMA transfers into one rank, plus striped
        // rail traffic — the hardest case for the capacity/conservation
        // audit, since rates change repeatedly mid-flight.
        let grid = ProcGrid::new(2, 4);
        let len = 1 << 20;
        let mut b = ScheduleBuilder::new(grid, "audit");
        let d = b.private_buf(RankId(3), 3 * len, "d");
        for r in 0..3u32 {
            let s = b.private_buf(RankId(r), len, "s");
            b.transfer(
                RankId(r),
                RankId(3),
                Loc::new(s, 0),
                Loc::new(d, (r as usize) * len),
                len,
                Channel::Cma,
                &[],
                0,
            );
        }
        for r in 0..4u32 {
            let s = b.private_buf(RankId(r), len, "rs");
            let rd = b.private_buf(RankId(r + 4), len, "rd");
            b.transfer(
                RankId(r),
                RankId(r + 4),
                Loc::new(s, 0),
                Loc::new(rd, 0),
                len,
                Channel::AllRails,
                &[],
                1,
            );
        }
        let sch = b.finish().freeze();
        let mut audit = mha_sched::InvariantProbe::new();
        sim().run_probed(&sch, &mut audit).unwrap();
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn trace_records_spans_when_enabled() {
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "tr");
        let s = b.private_buf(RankId(0), 1024, "s");
        let d = b.private_buf(RankId(1), 1024, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            1024,
            Channel::Cma,
            &[],
            0,
        );
        let sch = b.finish().freeze();
        let r = sim().run_with(&sch, SimConfig { trace: true }).unwrap();
        let t = r.trace.unwrap();
        assert_eq!(t.spans().len(), 1);
        let sp = t.spans()[0];
        assert_eq!(sp.ready, 0.0);
        assert!(sp.start > sp.ready);
        assert!(sp.end > sp.start);
        let no_trace = sim().run(&sch).unwrap();
        assert!(no_trace.trace.is_none());
    }

    /// One inter-node transfer on the given channel, for fault tests.
    fn rail_sch(len: usize, ch: Channel) -> FrozenSchedule {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "fault");
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            ch,
            &[],
            0,
        );
        b.finish().freeze()
    }

    fn bytes_on(r: &SimResult, prefix: &str) -> f64 {
        r.resource_labels
            .iter()
            .zip(&r.resource_bytes)
            .filter(|(l, _)| l.starts_with(prefix))
            .map(|(_, b)| *b)
            .sum()
    }

    #[test]
    fn fault_timeline_past_the_makespan_leaves_results_bit_identical() {
        let sch = rail_sch(1 << 20, Channel::AllRails);
        let plain = sim().run(&sch).unwrap();
        let faults = FaultSpec::derate(0, 1e9, 0.5); // long after completion
        let faulty = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        assert_eq!(plain.makespan.to_bits(), faulty.makespan.to_bits());
        assert_eq!(plain.op_end.len(), faulty.op_end.len());
        for (a, b) in plain.op_end.iter().zip(&faulty.op_end) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn derated_rail_slows_the_transfer_proportionally() {
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::Rail(0));
        let faults = FaultSpec::derate(0, 0.0, 0.5);
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_startup(len) + len as f64 / (0.5 * spec.rail_bw);
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn striping_avoids_a_down_rail() {
        // Rail 0 dead from t=0: a striped AllRails transfer re-tiles the
        // whole message onto rail 1 and never touches rail 0.
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::AllRails);
        let faults = FaultSpec::rail_down_at(0, 0.0);
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_startup(len) + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
        assert_eq!(bytes_on(&r, "tx(n0,h0"), 0.0);
        assert!((bytes_on(&r, "tx(n0,h1") - len as f64).abs() < 1.0);
    }

    #[test]
    fn stalled_flow_retries_onto_the_surviving_rail() {
        // A pinned Rail(0) flow can't re-stripe at issue time; it stalls,
        // waits out the retry timeout, and re-issues on rail 1.
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::Rail(0));
        let timeout = 50e-6;
        let mut faults = FaultSpec::rail_down_at(0, 0.0);
        faults.retry_timeout = timeout;
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_startup(len) + timeout + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
        assert_eq!(bytes_on(&r, "tx(n0,h0"), 0.0);
        assert!((bytes_on(&r, "tx(n0,h1") - len as f64).abs() < 1.0);
    }

    #[test]
    fn link_flap_pauses_and_resumes_the_flow() {
        // Rail 0 flaps mid-flight; with a retry timeout longer than the
        // outage, the flow waits in place and resumes on the same rail.
        let len = 4 << 20;
        let sch = rail_sch(len, Channel::Rail(0));
        let spec = ClusterSpec::thor();
        let alpha = spec.rail_startup(len);
        let full = len as f64 / spec.rail_bw;
        let t_down = alpha + 0.25 * full;
        let t_up = t_down + 3.0 * full;
        let mut faults = FaultSpec::flap(0, t_down, t_up);
        faults.retry_timeout = 100.0; // never retries within this run
        let r = Simulator::with_faults(spec.clone(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let expect = t_up + 0.75 * full;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
        assert_eq!(bytes_on(&r, "tx(n0,h1"), 0.0);
    }

    #[test]
    fn down_rail_run_passes_the_invariant_audit() {
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::AllRails);
        let faults = FaultSpec::rail_down_at(0, 0.0);
        let sim = Simulator::with_faults(ClusterSpec::thor(), faults).unwrap();
        let mut audit = mha_sched::InvariantProbe::new();
        sim.run_probed(&sch, &mut audit).unwrap();
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn per_node_fault_only_affects_that_node_and_is_grid_checked() {
        // A node index outside the grid is caught at run time.
        let sch = rail_sch(1 << 20, Channel::Rail(0));
        let faults = FaultSpec::new(1e-4).with_event(FaultEvent {
            time: 0.0,
            rail: 0,
            node: Some(7),
            kind: FaultKind::Down,
        });
        let sim = Simulator::with_faults(ClusterSpec::thor(), faults).unwrap();
        assert!(matches!(
            sim.run(&sch).unwrap_err(),
            SimError::InvalidSpec(_)
        ));

        // A fault pinned to the destination node still kills the path
        // (its rx side is down), so the stall/retry machinery engages.
        let len = 1 << 20;
        let timeout = 50e-6;
        let mut faults = FaultSpec::new(timeout).with_event(FaultEvent {
            time: 0.0,
            rail: 0,
            node: Some(1),
            kind: FaultKind::Down,
        });
        faults.retry_timeout = timeout;
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&rail_sch(len, Channel::Rail(0)))
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = spec.rail_startup(len) + timeout + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn check_override_wins_over_the_env_cache() {
        set_check_enabled(Some(true));
        assert!(check_enabled());
        set_check_enabled(Some(false));
        assert!(!check_enabled());
        set_check_enabled(None);
    }

    /// A striped + round-robin + CMA mix, enough to exercise flow-slot
    /// recycling and the water-fill component logic.
    fn mixed_sched() -> FrozenSchedule {
        let grid = ProcGrid::new(2, 2);
        let mut b = ScheduleBuilder::new(grid, "mix");
        let big = 256 * 1024;
        let small = 4096;
        for r in 0..2u32 {
            let s = b.private_buf(RankId(r), big, "s");
            let d = b.private_buf(RankId(r + 2), big, "d");
            let t1 = b.transfer(
                RankId(r),
                RankId(r + 2),
                Loc::new(s, 0),
                Loc::new(d, 0),
                big,
                Channel::AllRails,
                &[],
                0,
            );
            let s2 = b.private_buf(RankId(r), small, "s2");
            let d2 = b.private_buf(RankId(r + 2), small, "d2");
            b.transfer(
                RankId(r),
                RankId(r + 2),
                Loc::new(s2, 0),
                Loc::new(d2, 0),
                small,
                Channel::AllRails,
                &[t1],
                1,
            );
        }
        let s3 = b.private_buf(RankId(0), big, "s3");
        let d3 = b.private_buf(RankId(1), big, "d3");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s3, 0),
            Loc::new(d3, 0),
            big,
            Channel::Cma,
            &[],
            0,
        );
        b.finish().freeze()
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_runs() {
        let sch = mixed_sched();
        let sim = sim();
        let cold = sim.run(&sch).unwrap();
        let mut arena = EngineArena::new();
        for rep in 0..5 {
            let warm = sim.run_in(&sch, &mut arena).unwrap();
            assert_eq!(
                warm.makespan.to_bits(),
                cold.makespan.to_bits(),
                "rep {rep}: warm makespan diverged"
            );
            assert_eq!(warm.events, cold.events);
            assert_eq!(warm.max_concurrent_flows, cold.max_concurrent_flows);
            for (a, b) in warm.op_end.iter().zip(&cold.op_end) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in warm.resource_bytes.iter().zip(&cold.resource_bytes) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn arena_revalidates_its_resource_map_across_grids_and_specs() {
        let mut arena = EngineArena::new();
        let a = mixed_sched();
        let sim2 = sim();
        let want_a = sim2.run(&a).unwrap().makespan;
        assert_eq!(sim2.run_in(&a, &mut arena).unwrap().makespan, want_a);

        // Different grid through the same arena.
        let grid = ProcGrid::new(4, 1);
        let mut b = ScheduleBuilder::new(grid, "other");
        let len = 64 * 1024;
        let s = b.private_buf(RankId(0), len, "s");
        let d = b.private_buf(RankId(3), len, "d");
        b.transfer(
            RankId(0),
            RankId(3),
            Loc::new(s, 0),
            Loc::new(d, 0),
            len,
            Channel::AllRails,
            &[],
            0,
        );
        let other = b.finish().freeze();
        let want_b = sim2.run(&other).unwrap().makespan;
        assert_eq!(sim2.run_in(&other, &mut arena).unwrap().makespan, want_b);

        // Different cluster spec (single rail) through the same arena.
        let single = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
        let want_c = single.run(&other).unwrap().makespan;
        assert_eq!(single.run_in(&other, &mut arena).unwrap().makespan, want_c);

        // And back to the first shape again.
        assert_eq!(sim2.run_in(&a, &mut arena).unwrap().makespan, want_a);
    }

    #[test]
    fn empty_fault_spec_takes_the_fault_free_path() {
        let empty = Simulator::with_faults(
            ClusterSpec::thor(),
            FaultSpec::new(crate::fault::DEFAULT_RETRY_TIMEOUT),
        )
        .unwrap();
        assert!(
            !empty.faults_active(),
            "a zero-event FaultSpec must not arm the fault machinery"
        );
        assert!(Simulator::new(ClusterSpec::thor())
            .unwrap()
            .faults()
            .is_none());
        let armed =
            Simulator::with_faults(ClusterSpec::thor(), FaultSpec::rail_down_at(0, 1.0)).unwrap();
        assert!(armed.faults_active());

        // And the gated run is bit-identical to the fault-free simulator.
        let sch = mixed_sched();
        let plain = sim().run(&sch).unwrap();
        let gated = empty.run(&sch).unwrap();
        assert_eq!(plain.makespan.to_bits(), gated.makespan.to_bits());
        assert_eq!(plain.events, gated.events);
    }

    fn assert_bits_eq(a: &SimResult, b: &SimResult, what: &str) {
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "{what}: makespan"
        );
        assert_eq!(a.events, b.events, "{what}: event count");
        assert_eq!(a.op_end.len(), b.op_end.len(), "{what}: op count");
        for (i, (x, y)) in a.op_end.iter().zip(&b.op_end).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: op_end[{i}]");
        }
        for (i, (x, y)) in a.resource_bytes.iter().zip(&b.resource_bytes).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: resource_bytes[{i}]");
        }
    }

    /// Every rail down from t=0: the flow must make zero-capacity forward
    /// progress via the stall/retry machinery (no spin, no deadlock) and
    /// resume the instant the fabric comes back.
    #[test]
    fn all_rails_down_at_t0_recover_without_spinning() {
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::Rail(0));
        let timeout = 10e-6;
        let t_up = 500e-6;
        let mut faults = FaultSpec::new(timeout);
        for rail in 0..2u8 {
            faults = faults
                .with_event(FaultEvent {
                    time: 0.0,
                    rail,
                    node: None,
                    kind: FaultKind::Down,
                })
                .with_event(FaultEvent {
                    time: t_up,
                    rail,
                    node: None,
                    kind: FaultKind::Up,
                });
        }
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = t_up + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    /// A no-survivor flap long enough to force hundreds of consecutive
    /// retries: the exponential backoff multiplier must saturate at
    /// `2^MAX_BACKOFF_SHIFT` (an unsaturated shift overflows u64 well
    /// before the fabric recovers) and the flow must still resume.
    #[test]
    fn retry_backoff_saturates_under_a_long_no_survivor_flap() {
        let len = 1 << 20;
        let sch = rail_sch(len, Channel::Rail(0));
        let timeout = 1e-9; // waits saturate at ~1 µs → hundreds of retries
        let t_up = 1e-3;
        let mut faults = FaultSpec::new(timeout);
        for rail in 0..2u8 {
            faults = faults
                .with_event(FaultEvent {
                    time: 0.0,
                    rail,
                    node: None,
                    kind: FaultKind::Down,
                })
                .with_event(FaultEvent {
                    time: t_up,
                    rail,
                    node: None,
                    kind: FaultKind::Up,
                });
        }
        let r = Simulator::with_faults(ClusterSpec::thor(), faults)
            .unwrap()
            .run(&sch)
            .unwrap();
        let spec = ClusterSpec::thor();
        let expect = t_up + len as f64 / spec.rail_bw;
        assert!(
            rel_close(r.makespan, expect, 1e-9),
            "{} vs {expect}",
            r.makespan
        );
    }

    /// A malformed per-flow cap that slips past spec validation surfaces
    /// as a typed `SimError::InvalidFlow` naming the op — not a
    /// debug-only assertion that release builds would sail past.
    #[test]
    fn bad_flow_cap_is_a_typed_error_naming_the_op() {
        let mut s = sim();
        s.spec.cma_bw = f64::NAN; // smuggled past `Simulator::new` validation
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "badcap");
        let len = 1 << 16;
        let src = b.private_buf(RankId(0), len, "s");
        let dst = b.private_buf(RankId(1), len, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(src, 0),
            Loc::new(dst, 0),
            len,
            Channel::Cma,
            &[],
            0,
        );
        let err = s.run(&b.finish().freeze()).unwrap_err();
        match err {
            SimError::InvalidFlow { op, source } => {
                assert_eq!(op, 0, "the failing op id is reported");
                assert!(matches!(source, crate::FillError::BadCap { .. }));
            }
            other => panic!("expected InvalidFlow, got {other:?}"),
        }
    }

    /// The incremental engine (calendar queue + keyed memo + argmin
    /// rescheduling) and the scratch engine (binary heap, re-solve every
    /// component) must agree bit-for-bit on every observable — on a mixed
    /// striped/CMA schedule and on a faulty one exercising stall/retry.
    #[test]
    fn incremental_and_scratch_engines_agree_bit_for_bit() {
        let run_both = |f: &dyn Fn() -> SimResult, what: &str| {
            set_incremental_enabled(Some(true));
            let inc = f();
            set_incremental_enabled(Some(false));
            let scr = f();
            set_incremental_enabled(None);
            assert_bits_eq(&inc, &scr, what);
        };
        let sch = mixed_sched();
        let s = sim();
        run_both(&|| s.run(&sch).unwrap(), "mixed schedule");

        let fsch = rail_sch(1 << 20, Channel::AllRails);
        let mut faults = FaultSpec::flap(0, 50e-6, 120e-6);
        faults.retry_timeout = 10e-6;
        let fs = Simulator::with_faults(ClusterSpec::thor(), faults).unwrap();
        run_both(&|| fs.run(&fsch).unwrap(), "flapping rail");

        // And through a shared warm arena, where slot recycling and the
        // calendar's learned geometry persist across runs.
        let mut arena = EngineArena::new();
        set_incremental_enabled(Some(true));
        let inc = s.run_in(&sch, &mut arena).unwrap();
        set_incremental_enabled(Some(false));
        let scr = s.run_in(&sch, &mut arena).unwrap();
        set_incremental_enabled(None);
        assert_bits_eq(&inc, &scr, "warm arena");
    }
}
