//! # mha-model — the paper's analytic cost models (Section 4)
//!
//! * [`ModelParams`] — the Table 1 parameter set, obtainable from a cluster
//!   spec ([`ModelParams::from_spec`]) or by empirical measurement on the
//!   simulator ([`calibrate`], mirroring Section 4.3's procedure).
//! * [`optimal_offload`] / [`mha_intra_latency`] — Eqs. 1–2 (MHA-intra).
//! * [`phase2_rd`] / [`phase2_ring`] / [`intra_bcast`] /
//!   [`mha_inter_latency`] — Eqs. 3–7 (MHA-inter).
//! * [`composed_latency`] — the per-level generalization for
//!   composer-built hierarchical trees (leaf gather + import rounds +
//!   outer exchange), priced from the topology's own link parameters.
//! * [`validate_intra`] / [`validate_inter`] — the Figure 9/10
//!   predicted-vs-actual sweeps against `mha-simnet`.

#![warn(missing_docs)]

mod calibrate;
mod hier;
mod inter;
mod intra;
mod params;
mod validate;

pub use calibrate::calibrate;
pub use hier::composed_latency;
pub use inter::{
    intra_bcast, mha_inter_latency, mha_inter_latency_tuned, phase2_rd, phase2_ring, Phase2,
};
pub use intra::{
    direct_spread_latency, mha_intra_latency, mha_intra_latency_auto, optimal_offload,
};
pub use params::ModelParams;
pub use validate::{mean_rel_error, validate_inter, validate_intra, ModelError, ValidationPoint};
