//! Quickstart: build the paper's hierarchical multi-HCA aware Allgather,
//! prove it correct on real bytes, and price it on the simulated Thor
//! cluster next to the library baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mha::collectives::mha::{build_mha_inter, MhaInterConfig};
use mha::collectives::Library;
use mha::exec::{verify_allgather, Mode};
use mha::sched::ProcGrid;
use mha::simnet::{ClusterSpec, Simulator};

fn main() {
    // A slice of the Thor cluster: 4 nodes x 8 processes, 64 KB per rank.
    let grid = ProcGrid::new(4, 8);
    let msg = 64 * 1024;
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).expect("valid cluster spec");

    // 1. Compile the collective to a schedule.
    let mha = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec)
        .expect("buildable configuration");
    println!(
        "built `{}`: {} ops, {} buffers",
        mha.sched.name(),
        mha.sched.ops().len(),
        mha.sched.buffers().len()
    );

    // 2. Structural checks: bounds/locality plus race-freedom — the
    //    overlapped chunk pipeline is deterministic by construction.
    mha::sched::validate(&mha.sched, Some(spec.rails)).expect("structurally valid");
    assert!(mha::sched::check_races(&mha.sched).is_empty());

    // 3. Execute with real bytes on a thread pool and check MPI_Allgather
    //    semantics.
    verify_allgather(&mha.sched, &mha.send, &mha.recv, msg, Mode::Threaded(8))
        .expect("correct Allgather semantics");
    println!("threaded execution verified MPI_Allgather semantics");

    // 4. Price it on the simulated cluster, next to the baselines.
    let t_mha = sim.run(&mha.sched).unwrap().latency_us();
    for lib in [Library::HpcX, Library::Mvapich2X] {
        let built = lib.build_allgather(grid, msg, &spec).unwrap();
        let t = sim.run(&built.sched).unwrap().latency_us();
        println!(
            "{:>11}: {:>10.1} us  (algorithm: {})",
            lib.name(),
            t,
            built.sched.name()
        );
    }
    println!("{:>11}: {t_mha:>10.1} us", "MHA");
}
