//! Ring Allreduce (Patarasuk & Yuan \[27\]) with a pluggable Allgather phase.
//!
//! Reduce-scatter runs `R − 1` ring steps, leaving rank `r` with the fully
//! reduced chunk `r`; the Allgather phase then distributes the chunks. The
//! paper's Section 5.4 accelerates Allreduce purely by swapping that second
//! phase for the hierarchical MHA Allgather — reproduced here by
//! [`AllgatherPhase`].

use mha_sched::{DType, Loc, ProcGrid, RankId, RedOp};
use mha_simnet::ClusterSpec;

use crate::ctx::{BuildError, Built, Ctx};
use crate::flat::emit_ring;
use crate::mha::{emit_mha_inter, MhaInterConfig};

/// Which Allgather implements the second phase of Ring-Allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherPhase {
    /// Flat ring — what the library baselines do.
    FlatRing,
    /// The paper's hierarchical multi-HCA aware Allgather.
    MhaInter(MhaInterConfig),
}

/// Builds a Ring-Allreduce (MPI_SUM over f32) of `elems` elements.
///
/// `Built::send`/`Built::recv` hold the full input/output vectors
/// (`elems * 4` bytes); `Built::msg` is the per-rank chunk size in bytes.
///
/// # Errors
///
/// [`BuildError::IndivisibleVector`] unless `elems` divides evenly by the
/// rank count (callers pad, as DL frameworks do with fusion buffers);
/// plus any error from the chosen Allgather phase.
pub fn build_ring_allreduce(
    grid: ProcGrid,
    elems: usize,
    phase_b: AllgatherPhase,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let r = grid.nranks();
    if !elems.is_multiple_of(r as usize) {
        return Err(BuildError::IndivisibleVector { elems, ranks: r });
    }
    let chunk_elems = elems / r as usize;
    let chunk = chunk_elems * 4;
    let name = match phase_b {
        AllgatherPhase::FlatRing => "ring-allreduce(flat)",
        AllgatherPhase::MhaInter(_) => "ring-allreduce(mha)",
    };
    let mut ctx = Ctx::for_allreduce(grid, chunk, name);
    if ctx.is_degenerate() {
        // Allreduce over zero elements is a no-op — every rank's (empty)
        // vector is already "reduced".
        return Ok(ctx.finish_degenerate());
    }
    let grid = ctx.grid();

    // Working state lives in recv: start with recv = send.
    let total = r as usize * chunk;
    for rank in grid.ranks() {
        let op = ctx.b.copy(
            rank,
            Loc::new(ctx.send[rank.index()], 0),
            Loc::new(ctx.recv[rank.index()], 0),
            total,
            &[],
            0,
        );
        ctx.cur.advance(rank, op);
    }

    // ---- Reduce-scatter: R − 1 ring steps. ------------------------------
    // Ranks behave like standard ring-reduce-scatter shifted by one, so
    // rank r ends owning chunk r (which the Allgather phase then treats as
    // its contribution at block r).
    if r > 1 {
        // Per-rank staging buffer for the incoming chunk of each step.
        let tmp: Vec<_> = grid
            .ranks()
            .map(|rank| ctx.b.private_buf(rank, chunk, format!("rs-tmp/{rank}")))
            .collect();
        // arrival[rank]: op after which the chunk `rank` sends next is
        // up to date (previous step's reduce, or the initial copy).
        let mut arrival: Vec<mha_sched::OpId> =
            grid.ranks().map(|rk| ctx.cur.last(rk).unwrap()).collect();
        for s in 0..r - 1 {
            let mut this_step = Vec::with_capacity(r as usize);
            for dst in 0..r {
                let src = (dst + r - 1) % r;
                // Chunk travelling into `dst` this step (shifted scheme).
                let chunk_idx = (src + 2 * r - 1 - s) % r;
                let (src_r, dst_r) = (RankId(src), RankId(dst));
                let ch = ctx.channel_between(src_r, dst_r);
                let mut deps = vec![arrival[src as usize]];
                deps.extend(ctx.cur.deps_of(dst_r));
                let t = ctx.b.transfer(
                    src_r,
                    dst_r,
                    Loc::new(ctx.recv[src as usize], chunk_idx as usize * chunk),
                    Loc::new(tmp[dst as usize], 0),
                    chunk,
                    ch,
                    &deps,
                    1 + s,
                );
                let red = ctx.b.reduce(
                    dst_r,
                    Loc::new(ctx.recv[dst as usize], chunk_idx as usize * chunk),
                    Loc::new(tmp[dst as usize], 0),
                    chunk,
                    DType::F32,
                    RedOp::Sum,
                    &[t],
                    1 + s,
                );
                this_step.push((dst, red));
            }
            for (dst, red) in this_step {
                ctx.cur.advance(RankId(dst), red);
                arrival[dst as usize] = red;
            }
        }
        // Mark each rank's owned chunk as its Allgather contribution.
        for rank in grid.ranks() {
            ctx.set_ready(rank, arrival[rank.index()]);
        }
    }

    // ---- Allgather phase. ------------------------------------------------
    match phase_b {
        AllgatherPhase::FlatRing => emit_ring(&mut ctx),
        AllgatherPhase::MhaInter(cfg) => emit_mha_inter(&mut ctx, cfg, spec)?,
    }
    Ok(ctx.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_exec::{verify_allreduce_sum_f32, Mode};
    use mha_simnet::Simulator;

    fn thor() -> ClusterSpec {
        ClusterSpec::thor()
    }

    fn assert_allreduce_correct(built: &Built, elems: usize) {
        mha_sched::validate(&built.sched, Some(2)).unwrap();
        let races = mha_sched::check_races(&built.sched);
        assert!(races.is_empty(), "races: {races:?}");
        verify_allreduce_sum_f32(&built.sched, &built.send, &built.recv, elems, Mode::Single)
            .unwrap();
        verify_allreduce_sum_f32(
            &built.sched,
            &built.send,
            &built.recv,
            elems,
            Mode::Threaded(4),
        )
        .unwrap();
    }

    #[test]
    fn flat_ring_allreduce_is_correct() {
        for (nodes, ppn) in [(1, 1), (1, 2), (1, 4), (2, 2), (3, 2), (2, 4)] {
            let r = (nodes * ppn) as usize;
            let elems = r * 12;
            let built = build_ring_allreduce(
                ProcGrid::new(nodes, ppn),
                elems,
                AllgatherPhase::FlatRing,
                &thor(),
            )
            .unwrap();
            assert_allreduce_correct(&built, elems);
        }
    }

    #[test]
    fn mha_allreduce_is_correct() {
        for (nodes, ppn) in [(2, 2), (4, 2), (2, 4), (3, 2)] {
            let r = (nodes * ppn) as usize;
            let elems = r * 8;
            let built = build_ring_allreduce(
                ProcGrid::new(nodes, ppn),
                elems,
                AllgatherPhase::MhaInter(MhaInterConfig::default()),
                &thor(),
            )
            .unwrap();
            assert_allreduce_correct(&built, elems);
        }
    }

    #[test]
    fn indivisible_vector_rejected() {
        let err = build_ring_allreduce(ProcGrid::new(2, 2), 10, AllgatherPhase::FlatRing, &thor())
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::IndivisibleVector {
                elems: 10,
                ranks: 4
            }
        );
    }

    #[test]
    fn mha_phase_beats_flat_ring_at_scale() {
        // Section 5.4: swapping the Allgather phase improves Allreduce.
        let spec = thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(8, 8);
        let elems = (grid.nranks() as usize) * 16 * 1024; // 4 MB vector
        let flat = build_ring_allreduce(grid, elems, AllgatherPhase::FlatRing, &spec).unwrap();
        let mha = build_ring_allreduce(
            grid,
            elems,
            AllgatherPhase::MhaInter(MhaInterConfig::default()),
            &spec,
        )
        .unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(t_mha < t_flat, "mha {t_mha} vs flat {t_flat}");
    }

    #[test]
    fn zero_element_allreduce_is_a_valid_no_op() {
        for phase in [
            AllgatherPhase::FlatRing,
            AllgatherPhase::MhaInter(MhaInterConfig::default()),
        ] {
            let built = build_ring_allreduce(ProcGrid::new(2, 2), 0, phase, &thor()).unwrap();
            assert_allreduce_correct(&built, 0);
        }
    }

    #[test]
    fn single_rank_allreduce_is_identity_copy() {
        let built = build_ring_allreduce(ProcGrid::new(1, 1), 8, AllgatherPhase::FlatRing, &thor())
            .unwrap();
        assert_allreduce_correct(&built, 8);
    }
}
