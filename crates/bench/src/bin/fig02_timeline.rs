//! Figure 2: timeline view of a flat Ring Allgather on 2 nodes × 2 PPN —
//! the motivation trace showing intra-node hops throttling the ring.
//! The traced run is one campaign point (see `mha_bench::campaign`) whose
//! rendered artifact rides in the row's note.

use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, SimConfig, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(2, 2);
    let msg = 1 << 20;
    let built = AllgatherAlgo::Ring.build(grid, msg, &spec).unwrap();

    let spec2 = spec.clone();
    let points = vec![CampaignPoint::custom("timeline", move |_seed| {
        let sim = Simulator::new(spec2.clone()).map_err(|e| e.to_string())?;
        let built = AllgatherAlgo::Ring
            .build(grid, msg, &spec2)
            .map_err(|e| format!("{e:?}"))?;
        let res = sim
            .run_with(&built.sched, SimConfig { trace: true })
            .map_err(|e| e.to_string())?;
        let trace = res.trace.ok_or("trace missing")?;
        let mut out = String::new();
        out.push_str("Figure 2: flat Ring Allgather, 2 nodes x 2 PPN, 1 MB per rank\n");
        out.push_str("(c = CMA transfer by receiver CPU, r = rail transfer, o = copy)\n\n");
        out.push_str(&trace.render_ascii(100));
        out.push_str("\nPer-op CSV:\n");
        out.push_str(&trace.to_csv());
        Ok(vec![Row::note("timeline", out)])
    })];
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let out = report.rows_for(0)[0].note.clone().unwrap();
    mha_bench::emit_text(&out, "fig02_timeline");
    mha_bench::emit_run_summary(&sim, &built.sched, "fig02_timeline");
}
