//! Flat Ring Allgather.
//!
//! In step `s`, rank `r` sends the block it received in step `s−1` to its
//! right neighbor and receives from its left neighbor; `N − 1` steps total
//! (Section 2.2). With multiple processes per node, some hops are intra-node
//! — the bottleneck the paper's Figure 2 visualizes.

use mha_sched::{ProcGrid, RankId};

use crate::ctx::{Built, Ctx};

/// Builds a flat Ring Allgather for `grid` with per-rank contribution `msg`.
pub fn build_ring(grid: ProcGrid, msg: usize) -> Built {
    let mut ctx = Ctx::new(grid, msg, "flat-ring");
    if ctx.is_degenerate() {
        return ctx.finish_degenerate();
    }
    emit_ring(&mut ctx);
    ctx.finish()
}

/// Emits the ring exchange into an existing context (also used as the
/// Allgather phase of baseline Ring-Allreduce).
pub(crate) fn emit_ring(ctx: &mut Ctx) {
    let grid = ctx.grid();
    let r = grid.nranks();
    let msg = ctx.msg;
    let self_copies = ctx.self_copies_all(0);
    if r == 1 {
        return;
    }

    // arrival[rank] = op that delivered the most recent block to `rank`.
    let mut arrival: Vec<mha_sched::OpId> = self_copies;
    for s in 0..r - 1 {
        let mut next_arrival = arrival.clone();
        for dst in 0..r {
            let src = (dst + r - 1) % r;
            // Block travelling to `dst` this step originated at src − s.
            let block = (src + r - s) % r;
            let (src_r, dst_r) = (RankId(src), RankId(dst));
            let ch = ctx.channel_between(src_r, dst_r);
            // Data availability at the sender plus both ranks' step loop
            // (MPI sendrecv blocks sender and receiver alike).
            let mut deps = vec![arrival[src as usize]];
            deps.extend(ctx.cur.deps_of(dst_r));
            deps.extend(ctx.cur.deps_of(src_r));
            let t = ctx.b.transfer(
                src_r,
                dst_r,
                ctx.recv_block(src_r, block),
                ctx.recv_block(dst_r, block),
                msg,
                ch,
                &deps,
                s + 1,
            );
            next_arrival[dst as usize] = t;
        }
        // Advance every rank's cursor to its receive of this step.
        for dst in 0..r {
            ctx.cur.advance(RankId(dst), next_arrival[dst as usize]);
        }
        arrival = next_arrival;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn ring_is_correct_across_layouts() {
        for (nodes, ppn) in [(1, 2), (1, 5), (2, 2), (3, 4), (4, 1), (2, 16)] {
            let built = build_ring(ProcGrid::new(nodes, ppn), 24);
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn ring_takes_n_minus_one_steps() {
        let built = build_ring(ProcGrid::new(2, 3), 8);
        let stats = built.sched.stats();
        assert_eq!(stats.steps, 6); // step 0 self-copy + 5 transfer steps
                                    // 6 ranks × 5 steps transfers + 6 self copies.
        assert_eq!(stats.ops, 6 * 5 + 6);
    }

    #[test]
    fn ring_single_rank_is_just_self_copy() {
        let built = build_ring(ProcGrid::new(1, 1), 8);
        assert_eq!(built.sched.ops().len(), 1);
        assert_allgather_correct(&built);
    }

    #[test]
    fn ring_uses_cma_within_node_and_rails_across() {
        let built = build_ring(ProcGrid::new(2, 2), 8);
        let stats = built.sched.stats();
        // 4 ranks × 3 steps = 12 transfers; each step has 2 intra hops
        // (0→1, 2→3) and 2 inter hops (1→2, 3→0).
        assert_eq!(stats.cma_transfers, 6);
        assert_eq!(stats.rail_transfers, 6);
    }

    #[test]
    fn ring_critical_path_scales_with_ranks() {
        let small = build_ring(ProcGrid::new(1, 4), 8)
            .sched
            .stats()
            .critical_path;
        let large = build_ring(ProcGrid::new(1, 8), 8)
            .sched
            .stats()
            .critical_path;
        assert!(large > small);
    }
}
