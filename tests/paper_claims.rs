//! The paper's headline claims, asserted against the reproduction stack.
//! Each test names the figure/section it covers; EXPERIMENTS.md records the
//! quantitative comparison.

use mha::apps::Contestant;
use mha::collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha::collectives::{select_inter_algo, Library};
use mha::sched::ProcGrid;
use mha::simnet::{pt2pt_bandwidth_mbps, pt2pt_latency_us, ClusterSpec, Placement, Simulator};

fn thor() -> ClusterSpec {
    ClusterSpec::thor()
}

/// Figure 1: one HCA ≈ intra-node bandwidth; two HCAs double it.
#[test]
fn fig1_second_hca_doubles_inter_node_bandwidth() {
    let two = Simulator::new(thor()).unwrap();
    let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let m = 4 << 20;
    let intra = pt2pt_bandwidth_mbps(&two, Placement::IntraNode, m, 64).unwrap();
    let inter1 = pt2pt_bandwidth_mbps(&one, Placement::InterNode, m, 64).unwrap();
    let inter2 = pt2pt_bandwidth_mbps(&two, Placement::InterNode, m, 64).unwrap();
    assert!(
        (intra / inter1 - 1.0).abs() < 0.2,
        "intra {intra} vs 1HCA {inter1}"
    );
    assert!(inter2 / inter1 > 1.85, "2HCA {inter2} vs 1HCA {inter1}");
}

/// Figure 3: striping halves large-message latency.
#[test]
fn fig3_striping_halves_large_message_latency() {
    let two = Simulator::new(thor()).unwrap();
    let one = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
    let m = 4 << 20;
    let ratio = pt2pt_latency_us(&one, Placement::InterNode, m).unwrap()
        / pt2pt_latency_us(&two, Placement::InterNode, m).unwrap();
    assert!(ratio > 1.8, "ratio {ratio}");
}

/// Section 5.2 / Figure 11: MHA-intra beats both library surrogates, and
/// the benefit decreases as processes grow (fixed HCA capacity).
#[test]
fn fig11_intra_gains_beat_libraries_and_decay() {
    let spec = thor();
    let msg = 4 << 20;
    let mut prev_gain = f64::INFINITY;
    for ppn in [2u32, 4, 8, 16] {
        let grid = ProcGrid::single_node(ppn);
        let hpcx = Contestant::Library(Library::HpcX)
            .allgather_latency_us(grid, msg, &spec)
            .unwrap();
        let mva = Contestant::Library(Library::Mvapich2X)
            .allgather_latency_us(grid, msg, &spec)
            .unwrap();
        let mha = Contestant::MhaTuned
            .allgather_latency_us(grid, msg, &spec)
            .unwrap();
        assert!(mha < hpcx && mha < mva, "ppn={ppn}");
        let gain = 1.0 - mha / hpcx.min(mva);
        assert!(
            gain <= prev_gain + 0.02,
            "gain should not grow with ppn: {gain} after {prev_gain}"
        );
        prev_gain = gain;
    }
}

/// Section 5.3 / Figures 12–14: MHA wins inter-node at every size, and the
/// margin versus HPC-X grows with node count.
#[test]
fn fig12_14_inter_gains_grow_with_scale() {
    let spec = thor();
    let msg = 16 * 1024;
    let mut prev_gain = 0.0;
    for nodes in [2u32, 4, 8] {
        let grid = ProcGrid::new(nodes, 8);
        let hpcx = Contestant::Library(Library::HpcX)
            .allgather_latency_us(grid, msg, &spec)
            .unwrap();
        let mha = Contestant::MhaTuned
            .allgather_latency_us(grid, msg, &spec)
            .unwrap();
        assert!(mha < hpcx, "nodes={nodes}");
        let gain = 1.0 - mha / hpcx;
        assert!(
            gain >= prev_gain - 0.05,
            "gain should grow with nodes: {gain} after {prev_gain}"
        );
        prev_gain = gain;
    }
    assert!(
        prev_gain > 0.25,
        "headline-scale gain too small: {prev_gain}"
    );
}

/// Figure 8: RD wins phase 2 for small messages, Ring for large; the tuner
/// finds the crossover.
#[test]
fn fig8_ring_rd_crossover_exists() {
    let spec = thor();
    let grid = ProcGrid::new(8, 8);
    let small = select_inter_algo(grid, 64, Offload::Auto, &spec).unwrap();
    assert_eq!(small.algo, InterAlgo::RecursiveDoubling);
    let large = select_inter_algo(grid, 512 * 1024, Offload::Auto, &spec).unwrap();
    assert_eq!(large.algo, InterAlgo::Ring);
}

/// Section 3.2 / Figure 6: overlapping phases 2 and 3 beats running them
/// sequentially (the Kandalla-style behaviour).
#[test]
fn fig6_overlap_beats_sequential_phases() {
    let spec = thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 8);
    let msg = 128 * 1024;
    let overlapped = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
    let sequential = build_mha_inter(
        grid,
        msg,
        MhaInterConfig {
            overlap: false,
            ..MhaInterConfig::default()
        },
        &spec,
    )
    .unwrap();
    let t_o = sim.run(&overlapped.sched).unwrap().latency_us();
    let t_s = sim.run(&sequential.sched).unwrap().latency_us();
    assert!(t_o < t_s * 0.95, "overlap {t_o} vs sequential {t_s}");
}

/// Section 5.4 / Figure 15: the MHA Allgather phase accelerates
/// Ring-Allreduce.
#[test]
fn fig15_allreduce_improves_with_mha_phase() {
    let spec = thor();
    let grid = ProcGrid::new(8, 8);
    let elems = grid.nranks() as usize * 16 * 1024;
    let flat = Contestant::Library(Library::HpcX)
        .allreduce_latency_us(grid, elems, &spec)
        .unwrap();
    let mha = Contestant::MhaTuned
        .allreduce_latency_us(grid, elems, &spec)
        .unwrap();
    assert!(mha < flat, "mha {mha} vs flat {flat}");
}

/// Section 5.5 / Figure 16: matvec GFLOP/s improves under MHA, more so at
/// scale (strong scaling).
#[test]
fn fig16_matvec_speedup_at_scale() {
    use mha::apps::matvec::{run_matvec, MatvecConfig};
    let spec = thor();
    let cfg = MatvecConfig::strong_scaling(ProcGrid::new(8, 32));
    let mha = run_matvec(cfg, Contestant::MhaTuned, &spec).unwrap();
    let hpcx = run_matvec(cfg, Contestant::Library(Library::HpcX), &spec).unwrap();
    let speedup = mha.gflops / hpcx.gflops;
    assert!(speedup > 1.2, "speedup {speedup}");
}

/// Section 5.6 / Figure 17: training throughput improves by a modest
/// percentage that persists across model sizes.
#[test]
fn fig17_dl_improvement_direction() {
    use mha::apps::deep_learning::{run_training_step, DlConfig, RESNET152, RESNET50};
    let spec = thor();
    let grid = ProcGrid::new(8, 16);
    for model in [RESNET50, RESNET152] {
        let cfg = DlConfig {
            grid,
            model,
            batch: 16,
        };
        let mva = run_training_step(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
        let mha = run_training_step(cfg, Contestant::MhaTuned, &spec).unwrap();
        assert!(mha.images_per_sec > mva.images_per_sec, "{}", model.name);
    }
}

/// Section 4.3 / Figures 9–10: the analytic models track the simulator.
#[test]
fn fig9_10_models_track_measurements() {
    let spec = thor();
    let p = mha::model::calibrate(&spec).unwrap();
    let sizes = mha::simnet::size_sweep(256 * 1024, 4 << 20);
    let intra = mha::model::validate_intra(&spec, &p, 4, &sizes).unwrap();
    assert!(mha::model::mean_rel_error(&intra) < 0.25);
    let sizes = mha::simnet::size_sweep(4096, 256 * 1024);
    let inter = mha::model::validate_inter(&spec, &p, 8, 8, &sizes).unwrap();
    assert!(mha::model::mean_rel_error(&inter) < 0.5);
}
