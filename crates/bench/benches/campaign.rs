//! Campaign runner overhead: `campaign_cold` (cache disabled — every job
//! rebuilds and refreezes its schedule) vs `campaign_warm` (shared
//! pre-warmed [`ScheduleCache`] — workers replay `Arc`-shared frozen
//! schedules through reused engine arenas) over the fig02 grid.
//!
//! Besides the Criterion console report, the measured medians are written
//! to `results/BENCH_campaign.json` (honoring `MHA_RESULTS_DIR`) so the
//! cold/warm gap is recorded alongside the figure CSVs.

use std::time::Instant;

use criterion::{black_box, Criterion};
use mha_bench::campaign::{
    run_campaign_with, CampaignConfig, CampaignPoint, ConfigKey, ScheduleCache,
};
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

const SIZES: [usize; 5] = [256 * 1024, 512 * 1024, 1 << 20, 2 << 20, 4 << 20];

/// The fig02 workload family: flat Ring Allgather on 2 nodes × 2 PPN,
/// one point per message size.
fn fig02_points(spec: &ClusterSpec) -> Vec<CampaignPoint> {
    let grid = ProcGrid::new(2, 2);
    SIZES
        .iter()
        .map(|&msg| {
            let spec2 = spec.clone();
            CampaignPoint::sim(
                format!("ring_2x2_{msg}"),
                ConfigKey::new("allgather/ring", grid, msg, spec),
                spec.clone(),
                move || {
                    AllgatherAlgo::Ring
                        .build(grid, msg, &spec2)
                        .map(|b| b.sched)
                        .map_err(|e| format!("{e:?}"))
                },
            )
        })
        .collect()
}

/// Median wall-clock nanoseconds of `samples` runs of `f`.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(f64::total_cmp);
    ns[ns.len() / 2]
}

fn main() {
    let spec = ClusterSpec::thor();
    let points = fig02_points(&spec);
    let cfg = CampaignConfig {
        reps: 4, // amplifies build amortization: 20 jobs, 5 schedules
        cache: true,
        ..CampaignConfig::default()
    };
    let warm_cache = ScheduleCache::new(true);
    run_campaign_with(&points, &cfg, &warm_cache).unwrap(); // pre-warm

    let mut c = Criterion::default();
    let mut g = c.benchmark_group("campaign");
    g.bench_function("campaign_cold", |b| {
        b.iter(|| {
            let cache = ScheduleCache::new(false);
            black_box(
                run_campaign_with(&points, &cfg, &cache)
                    .unwrap()
                    .results
                    .len(),
            )
        })
    });
    g.bench_function("campaign_warm", |b| {
        b.iter(|| {
            black_box(
                run_campaign_with(&points, &cfg, &warm_cache)
                    .unwrap()
                    .results
                    .len(),
            )
        })
    });
    g.finish();

    // Manual medians for the JSON record (the Criterion shim prints to
    // stdout only).
    let cold_ns = median_ns(15, || {
        let cache = ScheduleCache::new(false);
        black_box(
            run_campaign_with(&points, &cfg, &cache)
                .unwrap()
                .results
                .len(),
        );
    });
    let warm_ns = median_ns(15, || {
        black_box(
            run_campaign_with(&points, &cfg, &warm_cache)
                .unwrap()
                .results
                .len(),
        );
    });

    let dir = std::env::var("MHA_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).unwrap();
    let path = format!("{dir}/BENCH_campaign.json");
    let json = format!(
        "{{\n  \"bench\": \"campaign_cold_vs_warm\",\n  \"grid\": \"fig02 flat ring 2x2\",\n  \
         \"sizes\": {SIZES:?},\n  \"points\": {},\n  \"reps\": {},\n  \"workers\": {},\n  \
         \"cold_ms_per_campaign\": {:.3},\n  \"warm_ms_per_campaign\": {:.3},\n  \
         \"warm_speedup\": {:.2}\n}}\n",
        points.len(),
        cfg.reps,
        cfg.workers,
        cold_ns / 1e6,
        warm_ns / 1e6,
        cold_ns / warm_ns
    );
    std::fs::write(&path, &json).unwrap();
    println!("campaign cold/warm medians written to {path}");
    print!("{json}");
}
