//! The cost-model parameter set — the paper's Table 1.
//!
//! | symbol | field | description |
//! |---|---|---|
//! | `N` | (argument) | number of nodes |
//! | `L` | (argument) | processes per node |
//! | `M` | (argument) | message size |
//! | `H` | [`ModelParams::h`] | number of adapters |
//! | `α_C` | [`ModelParams::alpha_c`] | startup per intra-node transfer |
//! | `BW_C` | [`ModelParams::bw_c`] | bandwidth of an intra-node transfer |
//! | `α_H` | [`ModelParams::alpha_h`] | startup per inter-node transfer |
//! | `BW_H` | [`ModelParams::bw_h`] | bandwidth of one rail |
//! | `α_L` | [`ModelParams::alpha_l`] | startup per local memcpy |
//! | `BW_L` | [`ModelParams::bw_l`] | bandwidth of a local memcpy |
//! | `b` | [`ModelParams::b_factor`] | CMA memory-congestion multiplier |
//! | `cg(M,k)` | [`ModelParams::cg`] | copy-out congestion factor |
//!
//! `T_C`, `T_H` and `T_L` (Table 1's time helpers) are methods.

use mha_simnet::ClusterSpec;

/// Calibrated cost-model parameters (all times in seconds, bandwidths in
/// bytes/second).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Startup time per intra-node (CMA) transfer — `α_C`.
    pub alpha_c: f64,
    /// Bandwidth of one uncontended intra-node transfer — `BW_C`.
    pub bw_c: f64,
    /// Startup time per inter-node transfer — `α_H` (small messages).
    pub alpha_h: f64,
    /// Additional startup for rendezvous-sized messages.
    pub alpha_h_rndv: f64,
    /// Rendezvous threshold in bytes.
    pub rndv_threshold: usize,
    /// Bandwidth of one rail — `BW_H`.
    pub bw_h: f64,
    /// Number of adapters — `H`.
    pub h: u32,
    /// Startup cost per local memory copy — `α_L`.
    pub alpha_l: f64,
    /// Bandwidth of one uncontended local memory copy — `BW_L`.
    pub bw_l: f64,
    /// Aggregate per-node memory bandwidth (drives `b` and `cg`).
    pub mem_bw: f64,
    /// Memory load of one CMA byte relative to a memcpy byte.
    pub cma_mem_weight: f64,
}

impl ModelParams {
    /// Parameters taken directly from a cluster specification (the
    /// "datasheet" calibration; [`crate::calibrate`] measures them from
    /// the simulator instead).
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        ModelParams {
            alpha_c: spec.cma_alpha,
            bw_c: spec.cma_bw,
            alpha_h: spec.rail_alpha,
            alpha_h_rndv: spec.rndv_extra,
            rndv_threshold: spec.rndv_threshold,
            bw_h: spec.rail_bw,
            h: u32::from(spec.rails),
            alpha_l: spec.copy_alpha,
            bw_l: spec.copy_bw,
            mem_bw: spec.mem_bw,
            cma_mem_weight: spec.cma_mem_weight,
        }
    }

    /// Startup of an inter-node message of `m` bytes.
    pub fn rail_startup(&self, m: usize) -> f64 {
        if m >= self.rndv_threshold {
            self.alpha_h + self.alpha_h_rndv
        } else {
            self.alpha_h
        }
    }

    /// `T_H(M) = α_H + M / (BW_H · H)` — a transfer striped over all rails.
    pub fn t_h(&self, m: usize) -> f64 {
        self.rail_startup(m) + m as f64 / (self.bw_h * f64::from(self.h))
    }

    /// Congestion multiplier `b` for `l` concurrent CMA streams on one node
    /// (Table 1: "number of concurrent accesses to memory" once the memory
    /// is saturated; 1 for small concurrency).
    pub fn b_factor(&self, l: u32) -> f64 {
        let demand = f64::from(l) * self.cma_mem_weight * self.bw_c;
        (demand / self.mem_bw).max(1.0)
    }

    /// `T_C(M) = α_C + (M / BW_C) · b` with `b` for `l` concurrent streams.
    pub fn t_c(&self, m: usize, l: u32) -> f64 {
        self.alpha_c + m as f64 / self.bw_c * self.b_factor(l)
    }

    /// Uncontended `T_C` (b = 1) — what Eq. 1 uses.
    pub fn t_c1(&self, m: usize) -> f64 {
        self.t_c(m, 1)
    }

    /// `T_L(M) = α_L + M / BW_L` — one local memory copy.
    pub fn t_l(&self, m: usize) -> f64 {
        self.alpha_l + m as f64 / self.bw_l
    }

    /// Copy-out congestion factor `cg(M, k)`: the slowdown when `k`
    /// processes concurrently copy out of a shared region. Empirically a
    /// function of how far `k` copy streams oversubscribe the memory
    /// system (independent of `M` in the fluid model once `M` is large).
    pub fn cg(&self, _m: usize, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        (f64::from(k) * self.bw_l / self.mem_bw).max(1.0)
    }

    /// Sanity check.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("bw_c", self.bw_c),
            ("bw_h", self.bw_h),
            ("bw_l", self.bw_l),
            ("mem_bw", self.mem_bw),
            ("cma_mem_weight", self.cma_mem_weight),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.h == 0 {
            return Err("h must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::from_spec(&ClusterSpec::thor())
    }

    #[test]
    fn from_spec_is_valid_and_mirrors_table1() {
        let p = p();
        p.validate().unwrap();
        assert_eq!(p.h, 2);
        assert!(p.bw_h > 0.0 && p.bw_c > 0.0 && p.bw_l > p.bw_c * 0.5);
    }

    #[test]
    fn t_h_scales_with_rail_count() {
        let spec1 = ClusterSpec::thor_single_rail();
        let spec2 = ClusterSpec::thor();
        let m = 4 << 20;
        let ratio = ModelParams::from_spec(&spec1).t_h(m) / ModelParams::from_spec(&spec2).t_h(m);
        assert!(ratio > 1.8 && ratio < 2.1);
    }

    #[test]
    fn b_factor_kicks_in_with_concurrency() {
        let p = p();
        assert_eq!(p.b_factor(1), 1.0);
        // 8 CMA streams at weight 2 oversubscribe 42 GB/s.
        assert!(p.b_factor(8) > 3.0);
        assert!(p.b_factor(16) > p.b_factor(8));
    }

    #[test]
    fn cg_grows_with_concurrent_readers() {
        let p = p();
        assert_eq!(p.cg(1 << 20, 0), 1.0);
        assert_eq!(p.cg(1 << 20, 1), 1.0);
        assert!(p.cg(1 << 20, 31) > 5.0);
    }

    #[test]
    fn rendezvous_raises_large_message_startup() {
        let p = p();
        assert!(p.rail_startup(64 * 1024) > p.rail_startup(1024));
    }

    #[test]
    fn rendezvous_cutoff_matches_the_simulator_at_the_boundary() {
        // The model must flip to rendezvous at exactly len == threshold,
        // like ClusterSpec::rail_startup, or predictions drift right at
        // the boundary.
        let p = p();
        assert_eq!(p.rail_startup(p.rndv_threshold - 1), p.alpha_h);
        assert_eq!(p.rail_startup(p.rndv_threshold), p.alpha_h + p.alpha_h_rndv);
        assert_eq!(
            p.rail_startup(p.rndv_threshold + 1),
            p.alpha_h + p.alpha_h_rndv
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let mut bad = p();
        bad.h = 0;
        assert!(bad.validate().is_err());
        let mut bad = p();
        bad.bw_l = -1.0;
        assert!(bad.validate().is_err());
    }
}
