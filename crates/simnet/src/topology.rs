//! Cluster models: bandwidths, latencies and policies of the simulated
//! machine.
//!
//! The default [`ClusterSpec::thor`] preset is calibrated to the envelope the
//! paper measures on the HPC Advisory Council *Thor* cluster (Section 5.1 and
//! Figures 1/3): dual-socket 32-core Broadwell nodes, 2 × ConnectX-6 HDR100
//! rails, CMA intra-node copies whose bandwidth roughly equals one rail, and
//! a memory subsystem that congests when many ranks copy concurrently.

/// Static description of the simulated cluster hardware.
///
/// All bandwidths are in bytes/second, all latencies in seconds. The fields
/// map onto the paper's Table 1 notation where one exists.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// HCAs per node (`H`). Thor: 2.
    pub rails: u8,
    /// Peak bandwidth of one rail in one direction (`BW_H`).
    /// HDR100 ≈ 100 Gb/s ≈ 12.5 GB/s raw; ~12 GB/s at MPI level (Fig. 1).
    pub rail_bw: f64,
    /// Startup time of an inter-node transfer (`α_H`).
    pub rail_alpha: f64,
    /// Extra startup charged to rail messages at or above
    /// [`ClusterSpec::rndv_threshold`] — the rendezvous handshake
    /// (Section 2.3 mentions the protocol overheads this models).
    pub rndv_extra: f64,
    /// Message size (bytes) at which the rendezvous protocol kicks in.
    pub rndv_threshold: usize,
    /// Message size (bytes) at which the point-to-point layer stripes one
    /// message across all rails instead of placing it on one rail
    /// round-robin (Section 2.1: a rail saturates at 16 KB).
    pub stripe_threshold: usize,
    /// Bandwidth of a kernel-assisted single-copy intra-node transfer
    /// (`BW_C`). Approximately one rail's bandwidth on Thor (Fig. 1).
    pub cma_bw: f64,
    /// Startup time of a CMA transfer (`α_C`) — includes the syscall.
    pub cma_alpha: f64,
    /// Bandwidth of a plain local memcpy by one core (`BW_L`).
    pub copy_bw: f64,
    /// Startup cost of a local memcpy (`α_L`).
    pub copy_alpha: f64,
    /// Aggregate memory bandwidth of one node available to copy engines.
    /// When concurrent copies exceed `mem_bw / copy_bw` streams, each gets a
    /// fair share — this is what produces the paper's congestion factor
    /// `cg(M, L-1)` and the `b` factor in `T_C`.
    pub mem_bw: f64,
    /// Sustained floating-point rate of one core (used by `Compute` ops;
    /// matvec is memory-bound so this is a streaming-FLOP rate, not peak).
    pub flops_rate: f64,
    /// CPU cores per node; `ppn` may not exceed this.
    pub cores_per_node: u32,
    /// How hard one CMA payload byte loads the node memory system relative
    /// to one streaming shm-memcpy byte. Kernel-assisted copies
    /// (`process_vm_readv`) walk and touch both processes' pages through
    /// kernel mappings without non-temporal stores, so under concurrency
    /// they saturate DRAM roughly twice as fast per payload byte as a
    /// tuned shared-memory memcpy — this is the mechanism behind the
    /// paper's observation that the flat algorithms are "bottlenecked by
    /// the slowest links — intra-node transfers" (Section 1.1) while the
    /// shm-pipeline designs are not.
    pub cma_mem_weight: f64,
    /// Memory load of one reduction byte relative to a memcpy byte
    /// (read + read + write ≈ 1.5 × a copy's read + write).
    pub reduce_mem_weight: f64,
    /// Optional NUMA layout. `None` (the paper-reproduction default) models
    /// each node's memory as one uniform resource; `Some` splits it across
    /// sockets and adds a cross-socket interconnect — the substrate for the
    /// paper's future-work 3-level design (Section 7).
    pub numa: Option<crate::numa::NumaSpec>,
}

impl ClusterSpec {
    /// The Thor-like preset used for every paper experiment.
    pub fn thor() -> Self {
        ClusterSpec {
            rails: 2,
            rail_bw: 12.0e9,
            rail_alpha: 1.6e-6,
            rndv_extra: 2.0e-6,
            rndv_threshold: 16 * 1024,
            stripe_threshold: 16 * 1024,
            cma_bw: 11.0e9,
            cma_alpha: 0.8e-6,
            copy_bw: 13.0e9,
            copy_alpha: 0.3e-6,
            mem_bw: 42.0e9,
            flops_rate: 5.0e9,
            cores_per_node: 32,
            cma_mem_weight: 2.0,
            reduce_mem_weight: 1.5,
            numa: None,
        }
    }

    /// The Thor preset with its dual-socket Broadwell NUMA layout made
    /// visible (per-socket memory controllers + UPI link). Used by the
    /// future-work 3-level experiments; the paper-reproduction figures use
    /// the NUMA-blind [`ClusterSpec::thor`].
    pub fn thor_numa() -> Self {
        ClusterSpec {
            numa: Some(crate::numa::NumaSpec::broadwell_2s()),
            ..Self::thor()
        }
    }

    /// Sockets per node (1 when NUMA modeling is off).
    pub fn sockets(&self) -> u32 {
        self.numa.as_ref().map_or(1, |n| n.sockets)
    }

    /// A single-rail variant of [`ClusterSpec::thor`] — the "1 HCA" series
    /// of Figures 1 and 3.
    pub fn thor_single_rail() -> Self {
        ClusterSpec {
            rails: 1,
            ..Self::thor()
        }
    }

    /// A Thor-like cluster with `rails` HCAs per node (the ThetaGPU
    /// motivation: up to 8 rails).
    pub fn thor_with_rails(rails: u8) -> Self {
        assert!(rails > 0, "a cluster needs at least one rail");
        ClusterSpec {
            rails,
            ..Self::thor()
        }
    }

    /// Effective per-flow cap of a `Reduce` op's CPU stream: a reduction
    /// reads two streams and writes one, so it moves roughly twice the bytes
    /// of a plain copy per output byte.
    pub fn reduce_bw(&self) -> f64 {
        self.copy_bw / 2.0
    }

    /// Startup latency charged to a rail message of `len` bytes.
    pub fn rail_startup(&self, len: usize) -> f64 {
        if len >= self.rndv_threshold {
            self.rail_alpha + self.rndv_extra
        } else {
            self.rail_alpha
        }
    }

    /// Whether the point-to-point layer stripes a message of `len` bytes.
    pub fn stripes(&self, len: usize) -> bool {
        self.rails > 1 && len >= self.stripe_threshold
    }

    /// Ideal time for a message of `len` bytes over all rails combined —
    /// the `T_H(M) = α_H + M / (BW_H · H)` of the paper's Table 1.
    pub fn t_h(&self, len: usize) -> f64 {
        self.rail_startup(len) + len as f64 / (self.rail_bw * f64::from(self.rails))
    }

    /// Ideal time of an uncontended CMA transfer — Table 1's
    /// `T_C(M) = α_C + M / BW_C` with `b = 1`.
    pub fn t_c(&self, len: usize) -> f64 {
        self.cma_alpha + len as f64 / self.cma_bw
    }

    /// Ideal time of an uncontended local memcpy — Table 1's
    /// `T_L(M) = α_L + M / BW_L`.
    pub fn t_l(&self, len: usize) -> f64 {
        self.copy_alpha + len as f64 / self.copy_bw
    }

    /// The [`mha_sched::Topology`] this spec induces on `grid`, with each
    /// level carrying its real link parameters: the node level gets the
    /// rail fabric, the (optional) socket level the NUMA interconnect, and
    /// the rank level the CMA path. The socket level appears only when the
    /// spec models NUMA with more than one socket *and* the socket count
    /// divides the ppn — otherwise the tree degrades to the classic
    /// two-level (node × rank) shape, so callers can thread the result
    /// straight into the composer or a cache key without special-casing.
    pub fn topology_of(&self, grid: &mha_sched::ProcGrid) -> mha_sched::Topology {
        use mha_sched::TopoLevel;
        let node =
            TopoLevel::new(grid.nodes()).with_link(self.rails, self.rail_bw, self.rail_alpha);
        match &self.numa {
            Some(n) if n.sockets > 1 && grid.ppn().is_multiple_of(n.sockets) => {
                mha_sched::Topology::new(vec![
                    node,
                    TopoLevel::new(n.sockets).with_link(1, n.xsocket_bw, n.xsocket_alpha),
                    TopoLevel::new(grid.ppn() / n.sockets).with_link(
                        1,
                        self.cma_bw,
                        self.cma_alpha,
                    ),
                ])
            }
            _ => mha_sched::Topology::new(vec![
                node,
                TopoLevel::new(grid.ppn()).with_link(1, self.cma_bw, self.cma_alpha),
            ]),
        }
    }

    /// A stable structural digest of everything that affects simulated
    /// timing (see [`mha_sched::Fingerprinter`] for the guarantees). Two
    /// specs with equal digests price any schedule identically; the
    /// campaign runner folds this into its schedule-cache key.
    pub fn digest(&self) -> u64 {
        let mut fp = mha_sched::Fingerprinter::new();
        fp.push_u8(self.rails)
            .push_f64(self.rail_bw)
            .push_f64(self.rail_alpha)
            .push_f64(self.rndv_extra)
            .push_usize(self.rndv_threshold)
            .push_usize(self.stripe_threshold)
            .push_f64(self.cma_bw)
            .push_f64(self.cma_alpha)
            .push_f64(self.copy_bw)
            .push_f64(self.copy_alpha)
            .push_f64(self.mem_bw)
            .push_f64(self.flops_rate)
            .push_u32(self.cores_per_node)
            .push_f64(self.cma_mem_weight)
            .push_f64(self.reduce_mem_weight);
        match &self.numa {
            None => {
                fp.push_bool(false);
            }
            Some(n) => {
                fp.push_bool(true)
                    .push_u32(n.sockets)
                    .push_f64(n.xsocket_bw)
                    .push_f64(n.xsocket_alpha);
            }
        }
        fp.finish().0
    }

    /// Sanity-checks the physical plausibility of the spec.
    pub fn validate(&self) -> Result<(), String> {
        let pos = [
            ("rail_bw", self.rail_bw),
            ("cma_bw", self.cma_bw),
            ("copy_bw", self.copy_bw),
            ("mem_bw", self.mem_bw),
            ("flops_rate", self.flops_rate),
        ];
        for (name, v) in pos {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        let weights = [
            ("cma_mem_weight", self.cma_mem_weight),
            ("reduce_mem_weight", self.reduce_mem_weight),
        ];
        for (name, v) in weights {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        let nonneg = [
            ("rail_alpha", self.rail_alpha),
            ("rndv_extra", self.rndv_extra),
            ("cma_alpha", self.cma_alpha),
            ("copy_alpha", self.copy_alpha),
        ];
        for (name, v) in nonneg {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.rails == 0 {
            return Err("rails must be at least 1".into());
        }
        if self.cores_per_node == 0 {
            return Err("cores_per_node must be at least 1".into());
        }
        if let Some(numa) = &self.numa {
            numa.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thor_preset_is_valid_and_matches_paper_envelope() {
        let t = ClusterSpec::thor();
        t.validate().unwrap();
        assert_eq!(t.rails, 2);
        // Inter-node with 2 rails roughly doubles one rail (Fig. 1).
        assert!((t.rail_bw * 2.0) > 1.9 * t.cma_bw);
        // Intra-node CMA ≈ one rail (Fig. 1: "approximately equal").
        assert!((t.cma_bw / t.rail_bw - 1.0).abs() < 0.2);
        // Striping threshold is the 16 KB saturation point of Section 2.1.
        assert_eq!(t.stripe_threshold, 16 * 1024);
    }

    #[test]
    fn rail_startup_includes_rendezvous_above_threshold() {
        let t = ClusterSpec::thor();
        assert!(t.rail_startup(1024) < t.rail_startup(64 * 1024));
        assert_eq!(t.rail_startup(1024), t.rail_alpha);
        assert_eq!(
            t.rail_startup(t.rndv_threshold),
            t.rail_alpha + t.rndv_extra
        );
    }

    #[test]
    fn striping_requires_multiple_rails_and_large_messages() {
        let t = ClusterSpec::thor();
        assert!(!t.stripes(1024));
        assert!(t.stripes(64 * 1024));
        let single = ClusterSpec::thor_single_rail();
        assert!(!single.stripes(64 * 1024));
    }

    #[test]
    fn stripe_cutoff_is_at_or_above_the_threshold() {
        // "At or above": len == threshold stripes, len == threshold − 1
        // does not. Guards the classic off-by-one in the cutoff compare.
        let t = ClusterSpec::thor();
        assert!(!t.stripes(t.stripe_threshold - 1));
        assert!(t.stripes(t.stripe_threshold));
        assert!(t.stripes(t.stripe_threshold + 1));
    }

    #[test]
    fn rendezvous_cutoff_is_at_or_above_the_threshold() {
        let t = ClusterSpec::thor();
        assert_eq!(t.rail_startup(t.rndv_threshold - 1), t.rail_alpha);
        assert_eq!(
            t.rail_startup(t.rndv_threshold),
            t.rail_alpha + t.rndv_extra
        );
        assert_eq!(
            t.rail_startup(t.rndv_threshold + 1),
            t.rail_alpha + t.rndv_extra
        );
    }

    #[test]
    fn table1_time_helpers_are_affine_in_len() {
        let t = ClusterSpec::thor();
        let m = 1 << 20;
        assert!(t.t_h(2 * m) > t.t_h(m));
        assert!(t.t_c(2 * m) - t.t_c(m) > 0.9 * (m as f64 / t.cma_bw));
        assert!(t.t_l(m) < t.t_c(m)); // memcpy beats CMA (no syscall)
    }

    #[test]
    fn two_rails_transfer_large_messages_about_twice_as_fast() {
        let two = ClusterSpec::thor();
        let one = ClusterSpec::thor_single_rail();
        let m = 4 << 20;
        let ratio = one.t_h(m) / two.t_h(m);
        assert!(ratio > 1.8 && ratio < 2.1, "ratio = {ratio}");
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut t = ClusterSpec::thor();
        t.rail_bw = 0.0;
        assert!(t.validate().is_err());
        let mut t = ClusterSpec::thor();
        t.cma_alpha = -1.0;
        assert!(t.validate().is_err());
        let mut t = ClusterSpec::thor();
        t.rails = 0;
        assert!(t.validate().is_err());
        let mut t = ClusterSpec::thor();
        t.cores_per_node = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one rail")]
    fn zero_rail_constructor_panics() {
        ClusterSpec::thor_with_rails(0);
    }

    #[test]
    fn topology_of_matches_grid_and_carries_link_params() {
        use mha_sched::ProcGrid;
        let grid = ProcGrid::new(4, 16);

        let flat = ClusterSpec::thor().topology_of(&grid);
        assert_eq!(flat.depth(), 2);
        assert!(flat.matches(&grid));
        assert_eq!(flat.level(0).rails, 2);
        assert_eq!(flat.level(0).bw, ClusterSpec::thor().rail_bw);
        assert_eq!(flat.level(1).bw, ClusterSpec::thor().cma_bw);

        let numa = ClusterSpec::thor_numa().topology_of(&grid);
        assert_eq!(numa.depth(), 3);
        assert!(numa.matches(&grid));
        assert_eq!(numa.fanout(1), 2);
        assert_eq!(numa.fanout(2), 8);
        let link = numa.level(1);
        let spec = ClusterSpec::thor_numa();
        let ns = spec.numa.as_ref().unwrap();
        assert_eq!(link.bw, ns.xsocket_bw);
        assert_eq!(link.alpha, ns.xsocket_alpha);
        numa.validate().unwrap();
    }

    #[test]
    fn topology_of_degrades_to_two_levels_when_sockets_do_not_divide() {
        use mha_sched::ProcGrid;
        // 2 sockets cannot split 5 ranks per node evenly: stay 2-level.
        let t = ClusterSpec::thor_numa().topology_of(&ProcGrid::new(2, 5));
        assert_eq!(t.depth(), 2);
        assert!(t.matches(&ProcGrid::new(2, 5)));
    }

    #[test]
    fn topology_digest_separates_numa_from_flat_specs() {
        use mha_sched::ProcGrid;
        let grid = ProcGrid::new(2, 16);
        let flat = ClusterSpec::thor().topology_of(&grid);
        let numa = ClusterSpec::thor_numa().topology_of(&grid);
        assert_ne!(flat.digest(), numa.digest());
    }
}
