//! The fuzzer acceptance bar: every seeded mutant killed, killed mutants
//! shrink to verdict-preserving minimal reproductions, and survivors of
//! random fuzzing are genuinely correct schedules.

use mha_collectives::mha::MhaInterConfig;
use mha_collectives::AllgatherAlgo;
use mha_conformance::fuzz::{apply, find_killable_edge_drop, random_mutation};
use mha_conformance::{judge, seeded_mutants, shrink, FuzzTarget, Verdict};
use mha_exec::Mode;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn targets() -> Vec<(String, FuzzTarget)> {
    let spec = ClusterSpec::thor();
    [
        (AllgatherAlgo::Ring, ProcGrid::new(2, 2)),
        (AllgatherAlgo::Bruck, ProcGrid::single_node(4)),
        (
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
            ProcGrid::new(2, 4),
        ),
    ]
    .into_iter()
    .map(|(algo, grid)| {
        let built = algo.build(grid, 64, &spec).unwrap();
        (
            format!("{} {}x{}", algo.name(), grid.nodes(), grid.ppn()),
            FuzzTarget::from_built(&built, spec.rails),
        )
    })
    .collect()
}

#[test]
fn every_seeded_mutant_is_killed() {
    for (name, target) in targets() {
        let seeded = seeded_mutants(&target.spec);
        assert!(
            seeded.len() >= 3,
            "{name}: expected several applicable mutant classes, got {seeded:?}"
        );
        for (class, m) in seeded {
            let mutant = apply(&target.spec, m).unwrap();
            let verdict = judge(&target, &mutant);
            assert!(
                verdict.killed(),
                "{name}: seeded mutant {class} survived every checker"
            );
        }
        // The orphaned-op class: some dependency edge must be load-bearing.
        let drop = find_killable_edge_drop(&target)
            .unwrap_or_else(|| panic!("{name}: every single edge drop survived"));
        let mutant = apply(&target.spec, drop).unwrap();
        assert!(judge(&target, &mutant).killed());
    }
}

#[test]
fn killed_mutants_shrink_to_minimal_reproductions() {
    let (name, target) = targets().remove(0);
    for (class, m) in seeded_mutants(&target.spec) {
        let mutant = apply(&target.spec, m).unwrap();
        if !judge(&target, &mutant).killed() {
            continue; // every_seeded_mutant_is_killed covers the bar
        }
        let minimal = shrink(&target, &mutant);
        assert!(
            minimal.n_ops() <= mutant.n_ops(),
            "{name}/{class}: shrinking grew the schedule"
        );
        assert!(
            judge(&target, &minimal).killed(),
            "{name}/{class}: shrunk mutant no longer killed"
        );
    }
}

#[test]
fn random_fuzzing_survivors_are_genuinely_correct() {
    let budget: usize = std::env::var("MHA_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let targets = targets();
    let mut rng = StdRng::seed_from_u64(0xF022);
    let (mut applied, mut killed) = (0usize, 0usize);
    for _ in 0..budget {
        let (_, target) = &targets[rng.gen_range(0..targets.len())];
        let Some(m) = random_mutation(&mut rng, &target.spec) else {
            continue;
        };
        let mutant = apply(&target.spec, m).unwrap();
        applied += 1;
        match judge(target, &mutant) {
            Verdict::Survived => {
                // A survivor claims to still be a correct allgather; hold it
                // to that in the thread-pool mode too.
                let frozen = mutant.build().freeze();
                mha_exec::verify_allgather(
                    &frozen,
                    &target.send,
                    &target.recv,
                    target.msg,
                    Mode::Threaded(4),
                )
                .unwrap_or_else(|e| panic!("survivor {m:?} fails threaded verify: {e:?}"));
            }
            _ => killed += 1,
        }
    }
    assert!(
        applied >= budget / 2,
        "mutation generator mostly inapplicable"
    );
    assert!(
        killed * 10 >= applied * 3,
        "kill rate collapsed: {killed}/{applied} — are the checkers rotting?"
    );
}
