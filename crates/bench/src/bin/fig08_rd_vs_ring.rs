//! Figure 8: Ring vs Recursive Doubling in the inter-leader exchange,
//! 16 and 32 nodes × 32 PPN. One campaign per node count (see
//! `mha_bench::campaign`): every (size, algorithm) cell is a cached-build
//! simulation point.

use mha_apps::report::fmt_bytes;
use mha_bench::campaign::{campaign_table, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let ccfg = CampaignConfig::from_env();
    for nodes in [16u32, 32] {
        let grid = ProcGrid::new(nodes, 32);
        let sizes = size_sweep(4, 1 << 20);
        let row_labels: Vec<String> = sizes.iter().map(|&m| fmt_bytes(m)).collect();
        let mut cells = Vec::new();
        for &msg in &sizes {
            for (name, algo) in [
                ("rd", InterAlgo::RecursiveDoubling),
                ("ring", InterAlgo::Ring),
            ] {
                let cfg = MhaInterConfig {
                    inter: algo,
                    offload: Offload::Auto,
                    overlap: true,
                };
                let key = ConfigKey::new(format!("mha_inter/{name}"), grid, msg, &spec);
                let spec2 = spec.clone();
                cells.push(CampaignPoint::sim(name, key, spec.clone(), move || {
                    build_mha_inter(grid, msg, cfg, &spec2)
                        .map(|b| b.sched)
                        .map_err(|e| format!("{e:?}"))
                }));
            }
        }
        let t = campaign_table(
            &format!("Figure 8: RD vs Ring in phase 2, {nodes} nodes x 32 PPN"),
            "msg_bytes",
            vec!["RD_us".into(), "Ring_us".into()],
            &row_labels,
            cells,
            &ccfg,
        )
        .unwrap();
        mha_bench::emit(&t, &format!("fig08_rd_vs_ring_{nodes}n"));
    }
    let sim = Simulator::new(spec.clone()).unwrap();
    let cfg = MhaInterConfig {
        inter: InterAlgo::RecursiveDoubling,
        offload: Offload::Auto,
        overlap: true,
    };
    let built = build_mha_inter(ProcGrid::new(16, 32), 64 * 1024, cfg, &spec).unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig08_rd_vs_ring");
}
