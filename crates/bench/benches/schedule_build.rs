//! Construction throughput of the schedule compilers: how fast collectives
//! compile to the IR across algorithms and scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_collectives::mha::MhaInterConfig;
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn bench_builds(c: &mut Criterion) {
    let spec = ClusterSpec::thor();
    let mut g = c.benchmark_group("schedule_build");
    for (nodes, ppn) in [(4u32, 8u32), (8, 32)] {
        let grid = ProcGrid::new(nodes, ppn);
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{nodes}x{ppn}")),
                &grid,
                |b, grid| {
                    b.iter(|| {
                        let built = algo.build(*grid, 4096, &spec).unwrap();
                        std::hint::black_box(built.sched.ops().len())
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(8, 32);
    let built = AllgatherAlgo::Ring.build(grid, 4096, &spec).unwrap();
    c.bench_function("validate/ring_8x32", |b| {
        b.iter(|| mha_sched::validate(std::hint::black_box(&built.sched), Some(2)).unwrap())
    });
    let small = AllgatherAlgo::MhaInter(MhaInterConfig::default())
        .build(ProcGrid::new(4, 8), 4096, &spec)
        .unwrap();
    c.bench_function("check_races/mha_4x8", |b| {
        b.iter(|| assert!(mha_sched::check_races(std::hint::black_box(&small.sched)).is_empty()))
    });
}

criterion_group!(benches, bench_builds, bench_validation);
criterion_main!(benches);
