//! Structural validation and data-race checking for schedules.
//!
//! Every algorithm in `mha-collectives` is tested through these checks: a
//! schedule that passes [`validate`] is safe for both back-ends to run, and
//! one that passes [`check_races`] is deterministic regardless of execution
//! interleaving — the property the paper's chunk-counter pipeline relies on.

use std::fmt;

use crate::buffer::{BufKind, Loc};
use crate::ids::{BufId, OpId};
use crate::op::{Channel, OpKind};
use crate::schedule::Schedule;

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum ValidateError {
    /// A `Loc` names a buffer that was never declared.
    UnknownBuffer { op: OpId, buf: BufId },
    /// A byte range runs past the end of its buffer.
    OutOfBounds {
        op: OpId,
        buf: BufId,
        offset: usize,
        len: usize,
        buf_len: usize,
    },
    /// An op moves zero bytes (always an algorithm bug).
    EmptyOp { op: OpId },
    /// A transfer endpoint rank cannot address the named buffer.
    BadEndpoint { op: OpId, buf: BufId },
    /// A CMA transfer between ranks on different nodes.
    CmaAcrossNodes { op: OpId },
    /// A transfer from a rank to itself.
    SelfTransfer { op: OpId },
    /// A copy/reduce actor cannot address one of its operands locally.
    NonLocalAccess { op: OpId, buf: BufId },
    /// A copy whose source and destination ranges overlap in one buffer.
    OverlappingCopy { op: OpId },
    /// A rail index at or above the cluster's rail count.
    RailOutOfRange { op: OpId, rail: u8, rails: u8 },
    /// A reduce whose length is not a multiple of its element size.
    MisalignedReduce { op: OpId },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownBuffer { op, buf } => {
                write!(f, "{op}: unknown buffer {buf}")
            }
            ValidateError::OutOfBounds {
                op,
                buf,
                offset,
                len,
                buf_len,
            } => write!(
                f,
                "{op}: range {offset}..{} exceeds {buf} of length {buf_len}",
                offset + len
            ),
            ValidateError::EmptyOp { op } => write!(f, "{op}: zero-length operation"),
            ValidateError::BadEndpoint { op, buf } => {
                write!(f, "{op}: endpoint rank cannot address {buf}")
            }
            ValidateError::CmaAcrossNodes { op } => {
                write!(f, "{op}: CMA transfer crosses node boundary")
            }
            ValidateError::SelfTransfer { op } => write!(f, "{op}: transfer to self"),
            ValidateError::NonLocalAccess { op, buf } => {
                write!(f, "{op}: actor cannot locally address {buf}")
            }
            ValidateError::OverlappingCopy { op } => {
                write!(f, "{op}: copy source and destination overlap")
            }
            ValidateError::RailOutOfRange { op, rail, rails } => {
                write!(f, "{op}: rail {rail} out of range (cluster has {rails})")
            }
            ValidateError::MisalignedReduce { op } => {
                write!(f, "{op}: reduce length not a multiple of element size")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

fn check_range(sch: &Schedule, op: OpId, loc: Loc, len: usize) -> Result<(), ValidateError> {
    let Some(buf) = sch.buffers().get(loc.buf.index()) else {
        return Err(ValidateError::UnknownBuffer { op, buf: loc.buf });
    };
    let end = loc
        .offset
        .checked_add(len)
        .ok_or(ValidateError::OutOfBounds {
            op,
            buf: loc.buf,
            offset: loc.offset,
            len,
            buf_len: buf.len,
        })?;
    if end > buf.len {
        return Err(ValidateError::OutOfBounds {
            op,
            buf: loc.buf,
            offset: loc.offset,
            len,
            buf_len: buf.len,
        });
    }
    Ok(())
}

/// Validates schedule structure: bounds, locality, channel legality.
///
/// `rails` is the number of HCAs per node on the target cluster; pass `None`
/// to skip rail-index checking (e.g. when the schedule is cluster-agnostic).
pub fn validate(sch: &Schedule, rails: Option<u8>) -> Result<(), ValidateError> {
    let grid = sch.grid();
    for op in sch.ops() {
        let id = op.id;
        match &op.kind {
            OpKind::Transfer {
                src_rank,
                dst_rank,
                src,
                dst,
                len,
                channel,
            } => {
                if *len == 0 {
                    return Err(ValidateError::EmptyOp { op: id });
                }
                if src_rank == dst_rank {
                    return Err(ValidateError::SelfTransfer { op: id });
                }
                check_range(sch, id, *src, *len)?;
                check_range(sch, id, *dst, *len)?;
                if !sch.buffer(src.buf).transfer_endpoint_ok(grid, *src_rank) {
                    return Err(ValidateError::BadEndpoint {
                        op: id,
                        buf: src.buf,
                    });
                }
                if !sch.buffer(dst.buf).transfer_endpoint_ok(grid, *dst_rank) {
                    return Err(ValidateError::BadEndpoint {
                        op: id,
                        buf: dst.buf,
                    });
                }
                match channel {
                    Channel::Cma => {
                        if !grid.same_node(*src_rank, *dst_rank) {
                            return Err(ValidateError::CmaAcrossNodes { op: id });
                        }
                    }
                    Channel::Rail(h) => {
                        if let Some(r) = rails {
                            if *h >= r {
                                return Err(ValidateError::RailOutOfRange {
                                    op: id,
                                    rail: *h,
                                    rails: r,
                                });
                            }
                        }
                    }
                    Channel::AllRails => {}
                }
            }
            OpKind::Copy {
                actor,
                src,
                dst,
                len,
            } => {
                if *len == 0 {
                    return Err(ValidateError::EmptyOp { op: id });
                }
                check_range(sch, id, *src, *len)?;
                check_range(sch, id, *dst, *len)?;
                for loc in [src, dst] {
                    if !sch.buffer(loc.buf).local_to(grid, *actor) {
                        return Err(ValidateError::NonLocalAccess {
                            op: id,
                            buf: loc.buf,
                        });
                    }
                }
                if src.buf == dst.buf {
                    let (a0, a1) = (src.offset, src.offset + len);
                    let (b0, b1) = (dst.offset, dst.offset + len);
                    if a0 < b1 && b0 < a1 {
                        return Err(ValidateError::OverlappingCopy { op: id });
                    }
                }
            }
            OpKind::Reduce {
                actor,
                acc,
                operand,
                len,
                dtype,
                ..
            } => {
                if *len == 0 {
                    return Err(ValidateError::EmptyOp { op: id });
                }
                if *len % dtype.size() != 0 {
                    return Err(ValidateError::MisalignedReduce { op: id });
                }
                check_range(sch, id, *acc, *len)?;
                check_range(sch, id, *operand, *len)?;
                for loc in [acc, operand] {
                    if !sch.buffer(loc.buf).local_to(grid, *actor) {
                        return Err(ValidateError::NonLocalAccess {
                            op: id,
                            buf: loc.buf,
                        });
                    }
                }
            }
            OpKind::Compute { .. } => {}
        }
    }
    Ok(())
}

/// A pair of unordered, conflicting operations found by [`check_races`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// First op (lower id).
    pub a: OpId,
    /// Second op.
    pub b: OpId,
    /// Buffer on which the conflicting access happens.
    pub buf: BufId,
}

#[derive(Clone, Copy)]
struct Access {
    op: OpId,
    start: usize,
    end: usize,
    write: bool,
}

fn accesses_of(kind: &OpKind, mut f: impl FnMut(Loc, usize, bool)) {
    match *kind {
        OpKind::Transfer { src, dst, len, .. } => {
            f(src, len, false);
            f(dst, len, true);
        }
        OpKind::Copy { src, dst, len, .. } => {
            f(src, len, false);
            f(dst, len, true);
        }
        OpKind::Reduce {
            acc, operand, len, ..
        } => {
            f(operand, len, false);
            f(acc, len, true);
        }
        OpKind::Compute { .. } => {}
    }
}

/// A dense reachability bitmap over the (topologically ordered) op DAG.
struct Reach {
    words_per_op: usize,
    bits: Vec<u64>,
}

impl Reach {
    fn build(sch: &Schedule) -> Self {
        let n = sch.ops().len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; words * n];
        for op in sch.ops() {
            let i = op.id.index();
            // Split at the current op's row to borrow ancestor rows immutably.
            let (prev, cur) = bits.split_at_mut(i * words);
            let row = &mut cur[..words];
            for &d in &op.deps {
                let j = d.index();
                row[j / 64] |= 1 << (j % 64);
                let drow = &prev[j * words..(j + 1) * words];
                for (r, d) in row.iter_mut().zip(drow) {
                    *r |= *d;
                }
            }
        }
        Reach {
            words_per_op: words,
            bits,
        }
    }

    /// True if `a` happens-before `b` (a is an ancestor of b).
    fn ordered(&self, a: OpId, b: OpId) -> bool {
        let (a, b) = (a.index(), b.index());
        let row = &self.bits[b * self.words_per_op..(b + 1) * self.words_per_op];
        row[a / 64] & (1 << (a % 64)) != 0
    }
}

/// Exhaustively checks that every pair of conflicting accesses (two accesses
/// to overlapping byte ranges of one buffer, at least one a write) is ordered
/// by the dependency DAG.
///
/// Cost is O(ops² / 64) in time and memory for the reachability bitmap plus
/// O(k²) per buffer for k accesses, so use it on test-sized schedules (it is
/// exercised up to a few thousand ops in this repo's test suite).
pub fn check_races(sch: &Schedule) -> Vec<Race> {
    let nbuf = sch.buffers().len();
    let mut per_buf: Vec<Vec<Access>> = vec![Vec::new(); nbuf];
    for op in sch.ops() {
        accesses_of(&op.kind, |loc, len, write| {
            per_buf[loc.buf.index()].push(Access {
                op: op.id,
                start: loc.offset,
                end: loc.offset + len,
                write,
            });
        });
    }
    let reach = Reach::build(sch);
    let mut races = Vec::new();
    for (bi, accesses) in per_buf.iter_mut().enumerate() {
        accesses.sort_by_key(|a| a.start);
        for i in 0..accesses.len() {
            let a = accesses[i];
            for b in accesses.iter().skip(i + 1) {
                if b.start >= a.end {
                    break; // sorted by start: nothing later can overlap `a`
                }
                if a.op == b.op || (!a.write && !b.write) {
                    continue;
                }
                if !reach.ordered(a.op, b.op) && !reach.ordered(b.op, a.op) {
                    let (lo, hi) = if a.op < b.op {
                        (a.op, b.op)
                    } else {
                        (b.op, a.op)
                    };
                    let race = Race {
                        a: lo,
                        b: hi,
                        buf: BufId::from(bi),
                    };
                    if !races.contains(&race) {
                        races.push(race);
                    }
                }
            }
        }
    }
    races
}

/// `Private` buffers involved in rail transfers would, on real hardware, need
/// memory registration; this helper reports how many distinct buffers a rail
/// ever touches (used by tests to keep registration counts sane).
pub fn rail_registered_buffers(sch: &Schedule) -> usize {
    let mut seen = vec![false; sch.buffers().len()];
    for op in sch.ops() {
        if let OpKind::Transfer {
            src,
            dst,
            channel: Channel::Rail(_) | Channel::AllRails,
            ..
        } = op.kind
        {
            seen[src.buf.index()] = true;
            seen[dst.buf.index()] = true;
        }
    }
    seen.iter()
        .zip(sch.buffers())
        .filter(|(s, b)| **s && matches!(b.kind, BufKind::Private(_)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::{NodeId, RankId};

    fn grid22() -> ProcGrid {
        ProcGrid::new(2, 2)
    }

    #[test]
    fn valid_schedule_passes() {
        let mut b = ScheduleBuilder::new(grid22(), "ok");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(2), 8, "d");
        b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Rail(1),
            &[],
            0,
        );
        let sch = b.finish();
        assert!(validate(&sch, Some(2)).is_ok());
        assert!(check_races(&sch).is_empty());
        assert_eq!(rail_registered_buffers(&sch), 2);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = ScheduleBuilder::new(grid22(), "oob");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(1), 4, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Cma,
            &[],
            0,
        );
        let err = validate(&b.finish(), None).unwrap_err();
        assert!(matches!(err, ValidateError::OutOfBounds { .. }));
    }

    #[test]
    fn cma_across_nodes_detected() {
        let mut b = ScheduleBuilder::new(grid22(), "cma");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(2), 8, "d");
        b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Cma,
            &[],
            0,
        );
        assert!(matches!(
            validate(&b.finish(), None).unwrap_err(),
            ValidateError::CmaAcrossNodes { .. }
        ));
    }

    #[test]
    fn rail_out_of_range_detected_only_with_rail_count() {
        let mut b = ScheduleBuilder::new(grid22(), "rail");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(2), 8, "d");
        b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Rail(5),
            &[],
            0,
        );
        let sch = b.finish();
        assert!(validate(&sch, None).is_ok());
        assert!(matches!(
            validate(&sch, Some(2)).unwrap_err(),
            ValidateError::RailOutOfRange {
                rail: 5,
                rails: 2,
                ..
            }
        ));
    }

    #[test]
    fn shm_access_from_other_node_detected() {
        let mut b = ScheduleBuilder::new(grid22(), "shm");
        let shm = b.shared_buf(NodeId(0), 8, "shm");
        let p = b.private_buf(RankId(2), 8, "p");
        b.copy(RankId(2), Loc::new(shm, 0), Loc::new(p, 0), 8, &[], 0);
        assert!(matches!(
            validate(&b.finish(), None).unwrap_err(),
            ValidateError::NonLocalAccess { .. }
        ));
    }

    #[test]
    fn overlapping_copy_detected() {
        let mut b = ScheduleBuilder::new(grid22(), "ovl");
        let p = b.private_buf(RankId(0), 16, "p");
        b.copy(RankId(0), Loc::new(p, 0), Loc::new(p, 4), 8, &[], 0);
        assert!(matches!(
            validate(&b.finish(), None).unwrap_err(),
            ValidateError::OverlappingCopy { .. }
        ));
    }

    #[test]
    fn self_transfer_detected() {
        let mut b = ScheduleBuilder::new(grid22(), "self");
        let s = b.private_buf(RankId(0), 8, "s");
        let d = b.private_buf(RankId(0), 8, "d");
        b.transfer(
            RankId(0),
            RankId(0),
            Loc::new(s, 0),
            Loc::new(d, 0),
            8,
            Channel::Cma,
            &[],
            0,
        );
        assert!(matches!(
            validate(&b.finish(), None).unwrap_err(),
            ValidateError::SelfTransfer { .. }
        ));
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let mut b = ScheduleBuilder::new(grid22(), "race");
        let src0 = b.private_buf(RankId(0), 8, "s0");
        let src1 = b.private_buf(RankId(1), 8, "s1");
        let dst = b.private_buf(RankId(2), 8, "d");
        // Two rail transfers write the same destination range, unordered.
        b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(src0, 0),
            Loc::new(dst, 0),
            8,
            Channel::Rail(0),
            &[],
            0,
        );
        b.transfer(
            RankId(1),
            RankId(2),
            Loc::new(src1, 0),
            Loc::new(dst, 4),
            4,
            Channel::Rail(1),
            &[],
            0,
        );
        let races = check_races(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].buf, dst);
    }

    #[test]
    fn ordered_conflict_is_not_a_race() {
        let mut b = ScheduleBuilder::new(grid22(), "ordered");
        let src0 = b.private_buf(RankId(0), 8, "s0");
        let dst = b.private_buf(RankId(2), 8, "d");
        let t1 = b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(src0, 0),
            Loc::new(dst, 0),
            8,
            Channel::Rail(0),
            &[],
            0,
        );
        b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(src0, 0),
            Loc::new(dst, 0),
            8,
            Channel::Rail(0),
            &[t1],
            1,
        );
        assert!(check_races(&b.finish()).is_empty());
    }

    #[test]
    fn transitive_ordering_suppresses_race() {
        let mut b = ScheduleBuilder::new(grid22(), "trans");
        let p = b.private_buf(RankId(0), 8, "p");
        let q = b.private_buf(RankId(0), 8, "q");
        let a = b.copy(RankId(0), Loc::new(p, 0), Loc::new(q, 0), 8, &[], 0);
        let m = b.compute(RankId(0), 1, &[a], 1);
        // c conflicts with a (writes q) but is ordered a -> m -> c.
        b.copy(RankId(0), Loc::new(p, 0), Loc::new(q, 0), 8, &[m], 2);
        assert!(check_races(&b.finish()).is_empty());
    }

    #[test]
    fn read_read_overlap_is_fine() {
        let mut b = ScheduleBuilder::new(grid22(), "rr");
        let p = b.private_buf(RankId(0), 8, "p");
        let d1 = b.private_buf(RankId(0), 8, "d1");
        let d2 = b.private_buf(RankId(0), 8, "d2");
        b.copy(RankId(0), Loc::new(p, 0), Loc::new(d1, 0), 8, &[], 0);
        b.copy(RankId(0), Loc::new(p, 0), Loc::new(d2, 0), 8, &[], 0);
        assert!(check_races(&b.finish()).is_empty());
    }
}
