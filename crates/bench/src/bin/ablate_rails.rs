//! Ablation: how the MHA designs scale with the number of HCAs per node —
//! the ThetaGPU motivation (up to 8 rails, Section 1.1). Not a paper
//! figure; quantifies the design's headroom on denser multi-rail nodes.
//! Runs as one campaign (see `mha_bench::campaign`) spanning all four
//! rail counts; each row's cells carry their own cluster spec.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, build_mha_intra, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let msg = 1 << 20;
    let rail_counts = [1u8, 2, 4, 8];
    let mut cells = Vec::new();
    for &rails in &rail_counts {
        let spec = ClusterSpec::thor_with_rails(rails);
        let grid = ProcGrid::single_node(8);
        let key = ConfigKey::new("mha_intra/no_offload", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim(
            "no_offload",
            key,
            spec.clone(),
            move || {
                build_mha_intra(grid, msg, Offload::None, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| format!("{e:?}"))
            },
        ));
        let key = ConfigKey::new("mha_intra/auto", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim(
            "mha_auto",
            key,
            spec.clone(),
            move || {
                build_mha_intra(grid, msg, Offload::Auto, &spec2)
                    .map(|b| b.sched)
                    .map_err(|e| format!("{e:?}"))
            },
        ));
        let grid = ProcGrid::new(8, 8);
        let key = ConfigKey::new("mha_inter/default", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim("inter", key, spec.clone(), move || {
            build_mha_inter(grid, msg, MhaInterConfig::default(), &spec2)
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
        }));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let mut intra = Table::new(
        "Ablation: MHA-intra latency (us) vs rail count, 8 processes, 1 MB",
        "rails",
        vec!["no_offload".into(), "mha_auto".into(), "gain_pct".into()],
    );
    let mut inter = Table::new(
        "Ablation: MHA-inter latency (us) vs rail count, 8 nodes x 8 PPN, 1 MB",
        "rails",
        vec!["latency_us".into()],
    );
    for (i, &rails) in rail_counts.iter().enumerate() {
        let t_none = report.value(3 * i);
        let t_auto = report.value(3 * i + 1);
        intra.push(
            rails.to_string(),
            vec![t_none, t_auto, (1.0 - t_auto / t_none) * 100.0],
        );
        inter.push(rails.to_string(), vec![report.value(3 * i + 2)]);
    }
    let _ = fmt_bytes(msg);
    mha_bench::emit(&intra, "ablate_rails_intra");
    mha_bench::emit(&inter, "ablate_rails_inter");
}
