//! Alltoall (personalized all-to-all exchange) — a further "other
//! collective" (Section 7 future work), built with the same hierarchical
//! recipe as MHA-inter.
//!
//! * [`build_direct_alltoall`]: the conventional flat algorithm — in step
//!   `i` each rank sends its block for rank `r + i` and receives from
//!   `r − i` (topology-blind; intra-node blocks ride CMA, the rest the
//!   rails).
//! * [`build_mha_alltoall`]: hierarchical. Members stage their blocks in
//!   node shm *grouped by destination node*; one leader per node exchanges
//!   `L²`-block chunks with every other leader, striped across all rails;
//!   members copy out their own slice of each arriving chunk, overlapped
//!   with the remaining exchange. Inter-node message count drops from
//!   `L² · N · (N−1)` to `N · (N−1)` at `L²`-fold size — the same
//!   aggregation trade the paper's Allgather design makes.

use mha_sched::{BufId, Channel, Loc, NodeId, OpId, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::ClusterSpec;

use crate::ctx::BuildError;

/// A built Alltoall: `send[r]`/`recv[r]` are rank `r`'s buffers, each
/// `nranks * msg` bytes; block `d` of `send[r]` is rank `r`'s payload for
/// rank `d`.
#[derive(Debug, Clone)]
pub struct AlltoallBuilt {
    /// The schedule.
    pub sched: mha_sched::FrozenSchedule,
    /// Per-rank send buffer.
    pub send: Vec<BufId>,
    /// Per-rank receive buffer.
    pub recv: Vec<BufId>,
    /// Per-destination block size in bytes.
    pub msg: usize,
}

fn declare(b: &mut ScheduleBuilder, grid: ProcGrid, msg: usize) -> (Vec<BufId>, Vec<BufId>) {
    let total = grid.nranks() as usize * msg;
    let send = grid
        .ranks()
        .map(|r| b.private_buf(r, total, format!("a2a-send/{r}")))
        .collect();
    let recv = grid
        .ranks()
        .map(|r| b.private_buf(r, total, format!("a2a-recv/{r}")))
        .collect();
    (send, recv)
}

/// Builds the flat shifted-direct Alltoall.
pub fn build_direct_alltoall(grid: ProcGrid, msg: usize) -> AlltoallBuilt {
    assert!(msg > 0, "message size must be positive");
    let r = grid.nranks();
    let mut b = ScheduleBuilder::new(grid, "flat-direct-alltoall");
    let (send, recv) = declare(&mut b, grid, msg);
    // Own block first.
    let mut cursor: Vec<Option<OpId>> = Vec::with_capacity(r as usize);
    for me in grid.ranks() {
        let op = b.copy(
            me,
            Loc::new(send[me.index()], me.index() * msg),
            Loc::new(recv[me.index()], me.index() * msg),
            msg,
            &[],
            0,
        );
        cursor.push(Some(op));
    }
    for i in 1..r {
        for me in grid.ranks() {
            let src = RankId((me.0 + r - i) % r);
            let ch = if grid.same_node(src, me) {
                Channel::Cma
            } else {
                Channel::AllRails
            };
            let deps: Vec<OpId> = cursor[me.index()].into_iter().collect();
            let t = b.transfer(
                src,
                me,
                Loc::new(send[src.index()], me.index() * msg),
                Loc::new(recv[me.index()], src.index() * msg),
                msg,
                ch,
                &deps,
                i,
            );
            cursor[me.index()] = Some(t);
        }
    }
    AlltoallBuilt {
        sched: b.finish().freeze(),
        send,
        recv,
        msg,
    }
}

/// Builds the hierarchical multi-HCA-aware Alltoall.
pub fn build_mha_alltoall(
    grid: ProcGrid,
    msg: usize,
    spec: &ClusterSpec,
) -> Result<AlltoallBuilt, BuildError> {
    if msg == 0 {
        return Err(BuildError::BadParameter("empty alltoall".into()));
    }
    let _ = spec;
    let n = grid.nodes();
    let l = grid.ppn() as usize;
    let r = grid.nranks() as usize;
    let mut b = ScheduleBuilder::new(grid, "mha-alltoall");
    let (send, recv) = declare(&mut b, grid, msg);
    let chunk = l * l * msg; // one node-pair's traffic

    // Staging segments per node: `out` grouped by destination node
    // (chunk layout: [dst_local][src_local]), `inn` grouped by source node.
    let out: Vec<BufId> = grid
        .node_ids()
        .map(|node| b.shared_buf(node, n as usize * chunk, format!("a2a-out/{node}")))
        .collect();
    let inn: Vec<BufId> = grid
        .node_ids()
        .map(|node| b.shared_buf(node, n as usize * chunk, format!("a2a-in/{node}")))
        .collect();

    // ---- Stage 1: members deposit blocks, grouped by destination. -------
    // staged[node]: deposit ops per node.
    let mut staged: Vec<Vec<OpId>> = Vec::with_capacity(n as usize);
    let mut cursor: Vec<Option<OpId>> = vec![None; r];
    for node in grid.node_ids() {
        let mut ops = Vec::new();
        for (s_l, me) in grid.ranks_of(node).enumerate() {
            for d in 0..r {
                let dn = d / l;
                let d_l = d % l;
                let off = dn * chunk + (d_l * l + s_l) * msg;
                let deps: Vec<OpId> = cursor[me.index()].into_iter().collect();
                let op = b.copy(
                    me,
                    Loc::new(send[me.index()], d * msg),
                    Loc::new(out[node.index()], off),
                    msg,
                    &deps,
                    0,
                );
                cursor[me.index()] = Some(op);
                ops.push(op);
            }
        }
        staged.push(ops);
    }

    // ---- Stage 2: leaders exchange node-pair chunks (rounds of shifted
    // pairing), each immediately consumable. ------------------------------
    // arrivals[node]: (src_node, op) in arrival order.
    let mut arrivals: Vec<Vec<(u32, OpId)>> = (0..n).map(|_| Vec::new()).collect();
    let mut net_cursor: Vec<Option<OpId>> = vec![None; n as usize];
    for round in 1..n {
        for dst_n in 0..n {
            let src_n = (dst_n + n - round) % n;
            let (lsrc, ldst) = (grid.leader_of(NodeId(src_n)), grid.leader_of(NodeId(dst_n)));
            let mut deps: Vec<OpId> = staged[src_n as usize].clone();
            deps.extend(net_cursor[dst_n as usize]);
            let t = b.transfer(
                lsrc,
                ldst,
                Loc::new(out[src_n as usize], dst_n as usize * chunk),
                Loc::new(inn[dst_n as usize], src_n as usize * chunk),
                chunk,
                Channel::AllRails,
                &deps,
                1000 + round,
            );
            net_cursor[dst_n as usize] = Some(t);
            arrivals[dst_n as usize].push((src_n, t));
        }
    }

    // ---- Stage 3: members copy out their slice of each chunk, overlapped.
    for node in grid.node_ids() {
        let nd = node.index();
        for (d_l, me) in grid.ranks_of(node).enumerate() {
            // Own node's traffic straight from the out-staging.
            let gate = staged[nd].clone();
            let deps: Vec<OpId> = cursor[me.index()].iter().copied().chain(gate).collect();
            let op = b.copy(
                me,
                Loc::new(out[nd], nd * chunk + d_l * l * msg),
                Loc::new(recv[me.index()], nd * l * msg),
                l * msg,
                &deps,
                2000,
            );
            cursor[me.index()] = Some(op);
        }
        for (idx, &(src_n, gate)) in arrivals[nd].iter().enumerate() {
            for (d_l, me) in grid.ranks_of(node).enumerate() {
                let deps: Vec<OpId> = cursor[me.index()].iter().copied().chain([gate]).collect();
                let op = b.copy(
                    me,
                    Loc::new(inn[nd], src_n as usize * chunk + d_l * l * msg),
                    Loc::new(recv[me.index()], src_n as usize * l * msg),
                    l * msg,
                    &deps,
                    2001 + idx as u32,
                );
                cursor[me.index()] = Some(op);
            }
        }
    }
    Ok(AlltoallBuilt {
        sched: b.finish().freeze(),
        send,
        recv,
        msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_exec::{verify_alltoall, Mode};
    use mha_simnet::Simulator;

    fn assert_a2a_correct(built: &AlltoallBuilt) {
        mha_sched::validate(&built.sched, Some(2)).unwrap();
        let races = mha_sched::check_races(&built.sched);
        assert!(races.is_empty(), "races: {races:?}");
        for mode in [Mode::Single, Mode::Threaded(4)] {
            verify_alltoall(&built.sched, &built.send, &built.recv, built.msg, mode).unwrap();
        }
    }

    #[test]
    fn direct_alltoall_is_correct() {
        for (nodes, ppn) in [(1u32, 1u32), (1, 4), (2, 2), (3, 2), (2, 4)] {
            assert_a2a_correct(&build_direct_alltoall(ProcGrid::new(nodes, ppn), 12));
        }
    }

    #[test]
    fn mha_alltoall_is_correct() {
        for (nodes, ppn) in [(1u32, 4u32), (2, 2), (3, 2), (2, 4), (4, 3)] {
            let built =
                build_mha_alltoall(ProcGrid::new(nodes, ppn), 12, &ClusterSpec::thor()).unwrap();
            assert_a2a_correct(&built);
        }
    }

    #[test]
    fn aggregation_cuts_inter_node_message_count() {
        let grid = ProcGrid::new(4, 8);
        let spec = ClusterSpec::thor();
        let flat = build_direct_alltoall(grid, 64);
        let mha = build_mha_alltoall(grid, 64, &spec).unwrap();
        let count_rail = |s: &mha_sched::Schedule| s.stats().rail_transfers;
        // Flat: every cross-node (src, dst) pair is its own message.
        assert_eq!(count_rail(&flat.sched), (32 * 24) as usize);
        // Hierarchical: one message per ordered node pair.
        assert_eq!(count_rail(&mha.sched), (4 * 3) as usize);
    }

    #[test]
    fn mha_alltoall_wins_for_small_blocks_at_scale() {
        // Aggregation amortizes per-message startup; that is the regime
        // hierarchical Alltoall targets.
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(8, 8);
        let msg = 512;
        let flat = build_direct_alltoall(grid, msg);
        let mha = build_mha_alltoall(grid, msg, &spec).unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(t_mha < t_flat, "mha {t_mha} vs flat {t_flat}");
    }

    #[test]
    fn zero_message_rejected() {
        assert!(matches!(
            build_mha_alltoall(ProcGrid::new(2, 2), 0, &ClusterSpec::thor()),
            Err(BuildError::BadParameter(_))
        ));
    }
}
