//! Property-based tests of the simulator's core invariants.

use proptest::prelude::*;

use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::{max_min_rates, ClusterSpec, FlowSpec, ResourceId, Simulator};

type ArbFlows = (Vec<f64>, Vec<Vec<(ResourceId, f64)>>, Vec<f64>);

fn arb_flows() -> impl Strategy<Value = ArbFlows> {
    // (resource capacities, per-flow resource sets, per-flow caps)
    (1usize..6, 1usize..10).prop_flat_map(|(nres, nflows)| {
        (
            proptest::collection::vec(1.0f64..100.0, nres),
            proptest::collection::vec(
                proptest::collection::btree_set(0..nres as u32, 1..=3.min(nres)).prop_flat_map(
                    |set| {
                        let v: Vec<u32> = set.into_iter().collect();
                        proptest::collection::vec(1.0f64..3.0, v.len()).prop_map(move |ws| {
                            v.iter()
                                .zip(&ws)
                                .map(|(&r, &w)| (ResourceId(r), w))
                                .collect::<Vec<_>>()
                        })
                    },
                ),
                nflows,
            ),
            proptest::collection::vec(0.5f64..50.0, nflows),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Max-min allocations are feasible and every flow is bottlenecked
    /// (either at its own cap or on a saturated resource).
    #[test]
    fn waterfill_is_feasible_and_pareto((caps, sets, flow_caps) in arb_flows()) {
        let flows: Vec<FlowSpec> = sets
            .iter()
            .zip(&flow_caps)
            .map(|(s, &cap)| FlowSpec { cap, resources: s })
            .collect();
        let rates = max_min_rates(&flows, |r| caps[r.index()]);
        prop_assert_eq!(rates.len(), flows.len());
        let mut used = vec![0.0; caps.len()];
        for (f, &rate) in flows.iter().zip(&rates) {
            prop_assert!(rate > 0.0);
            prop_assert!(rate <= f.cap * (1.0 + 1e-6));
            for &(res, w) in f.resources {
                used[res.index()] += rate * w;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c * (1.0 + 1e-6), "oversubscribed: {} > {}", u, c);
        }
        for (f, &rate) in flows.iter().zip(&rates) {
            let at_cap = (rate - f.cap).abs() < 1e-6 * f.cap.max(1.0);
            let bottlenecked = f.resources.iter().any(|&(res, _)| {
                (used[res.index()] - caps[res.index()]).abs()
                    < 1e-6 * caps[res.index()].max(1.0)
            });
            prop_assert!(at_cap || bottlenecked);
        }
    }

    /// A pair of transfers over random channels/sizes completes, respects
    /// physics (never faster than the ideal uncontended time), and is
    /// monotone when the message doubles.
    #[test]
    fn single_transfer_never_beats_ideal_time(
        len in 1usize..4_000_000,
        intra in any::<bool>(),
    ) {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let (grid, src, dst, ch) = if intra {
            (ProcGrid::single_node(2), RankId(0), RankId(1), Channel::Cma)
        } else {
            (ProcGrid::new(2, 1), RankId(0), RankId(1), Channel::AllRails)
        };
        let build = |len: usize| {
            let mut b = ScheduleBuilder::new(grid, "p");
            let s = b.private_buf(src, len, "s");
            let d = b.private_buf(dst, len, "d");
            b.transfer(src, dst, Loc::new(s, 0), Loc::new(d, 0), len, ch, &[], 0);
            b.finish().freeze()
        };
        let t = sim.run(&build(len)).unwrap().makespan;
        let ideal = if intra {
            spec.t_c(len).min(spec.cma_alpha + len as f64 / spec.copy_bw)
        } else {
            spec.t_h(len).min(spec.rail_alpha + len as f64 / (spec.rail_bw * 2.0))
        };
        prop_assert!(t >= ideal * 0.999, "{} < ideal {}", t, ideal);
        let t2 = sim.run(&build(len * 2)).unwrap().makespan;
        prop_assert!(t2 >= t * 0.999);
    }

    /// Resource accounting: total bytes through each rail never exceed
    /// capacity × makespan.
    #[test]
    fn utilization_never_exceeds_one(
        nflows in 1usize..12,
        len in 1024usize..500_000,
    ) {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(2, 12);
        let mut b = ScheduleBuilder::new(grid, "u");
        for i in 0..nflows {
            let src = RankId(i as u32);
            let dst = RankId((i + 12) as u32);
            let s = b.private_buf(src, len, "s");
            let d = b.private_buf(dst, len, "d");
            b.transfer(src, dst, Loc::new(s, 0), Loc::new(d, 0), len, Channel::AllRails, &[], 0);
        }
        let res = sim.run(&b.finish().freeze()).unwrap();
        for u in res.utilization() {
            prop_assert!(u <= 1.0 + 1e-9, "utilization {}", u);
        }
    }
}
