//! Flat Direct-Spread (dissemination) Allgather.
//!
//! In step `i`, rank `r` receives rank `(r − i) mod N`'s block *directly
//! from its origin* rather than relayed through neighbors (Section 2.2,
//! Figure 4a). No data dependencies between ranks — each rank's steps chain
//! only on its own program order — which is exactly what makes it the base
//! of the MHA-intra design: the pending transfers are independent and can be
//! handed to idle HCAs.

use mha_sched::{ProcGrid, RankId};

use crate::ctx::{Built, Ctx};

/// Builds a flat Direct-Spread Allgather.
pub fn build_direct_spread(grid: ProcGrid, msg: usize) -> Built {
    let mut ctx = Ctx::new(grid, msg, "flat-direct-spread");
    if ctx.is_degenerate() {
        return ctx.finish_degenerate();
    }
    emit_direct_spread(&mut ctx);
    ctx.finish()
}

/// Emits the dissemination exchange into an existing non-degenerate context.
pub(crate) fn emit_direct_spread(ctx: &mut Ctx) {
    let r = ctx.grid().nranks();
    let msg = ctx.msg;
    ctx.self_copies_all(0);
    for i in 1..r {
        for dst in 0..r {
            let src = (dst + r - i) % r;
            let (src_r, dst_r) = (RankId(src), RankId(dst));
            let ch = ctx.channel_between(src_r, dst_r);
            // Blocks come straight from the origin's contribution (ready at
            // t = 0 for a plain Allgather): order on the receiver's own
            // step loop, plus the origin's readiness in Allreduce phase B.
            let mut deps = ctx.cur.deps_of(dst_r);
            deps.extend(ctx.ready_deps(src_r));
            let t = ctx.b.transfer(
                src_r,
                dst_r,
                ctx.send_loc(src_r),
                ctx.recv_block(dst_r, src),
                msg,
                ch,
                &deps,
                i,
            );
            ctx.cur.advance(dst_r, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;

    #[test]
    fn direct_spread_is_correct_across_layouts() {
        for (nodes, ppn) in [(1, 2), (1, 7), (2, 3), (4, 2), (3, 1)] {
            let built = build_direct_spread(ProcGrid::new(nodes, ppn), 16);
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn direct_spread_takes_n_minus_one_steps() {
        let built = build_direct_spread(ProcGrid::new(1, 4), 8);
        assert_eq!(built.sched.stats().steps, 4); // self-copy + 3 steps
        assert_eq!(built.sched.stats().ops, 4 + 4 * 3);
    }

    #[test]
    fn no_cross_rank_dependencies() {
        // Every transfer's deps belong to the same receiving rank.
        let built = build_direct_spread(ProcGrid::new(1, 5), 8);
        for op in built.sched.ops() {
            if let mha_sched::OpKind::Transfer { dst_rank, .. } = &op.kind {
                for &d in &op.deps {
                    let dep = built.sched.op(d);
                    let actor = match &dep.kind {
                        mha_sched::OpKind::Transfer { dst_rank, .. } => *dst_rank,
                        mha_sched::OpKind::Copy { actor, .. } => *actor,
                        other => panic!("unexpected dep {other:?}"),
                    };
                    assert_eq!(actor, *dst_rank);
                }
            }
        }
    }

    #[test]
    fn single_rank_degenerates_to_self_copy() {
        let built = build_direct_spread(ProcGrid::new(1, 1), 8);
        assert_eq!(built.sched.ops().len(), 1);
        assert_allgather_correct(&built);
    }
}
