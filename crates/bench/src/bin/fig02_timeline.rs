//! Figure 2: timeline view of a flat Ring Allgather on 2 nodes × 2 PPN —
//! the motivation trace showing intra-node hops throttling the ring.

use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, SimConfig, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(2, 2);
    let msg = 1 << 20;
    let built = AllgatherAlgo::Ring.build(grid, msg, &spec).unwrap();
    let res = sim
        .run_with(&built.sched, SimConfig { trace: true })
        .unwrap();
    let trace = res.trace.unwrap();
    let mut out = String::new();
    out.push_str("Figure 2: flat Ring Allgather, 2 nodes x 2 PPN, 1 MB per rank\n");
    out.push_str("(c = CMA transfer by receiver CPU, r = rail transfer, o = copy)\n\n");
    out.push_str(&trace.render_ascii(100));
    out.push_str("\nPer-op CSV:\n");
    out.push_str(&trace.to_csv());
    mha_bench::emit_text(&out, "fig02_timeline");
    mha_bench::emit_run_summary(&sim, &built.sched, "fig02_timeline");
}
