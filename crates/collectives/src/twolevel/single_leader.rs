//! Single-leader shared-memory Allgather (Mamidala et al. \[19\]).
//!
//! One leader per node; the node's shared-memory segment is the staging area
//! for *both* intra- and inter-node traffic: members deposit their blocks
//! into shm, leaders exchange node blocks over the network (Recursive
//! Doubling in the original paper) reading from and RDMA-writing into shm
//! directly, and every rank copies arrived chunks out of shm — overlapped
//! with the ongoing exchange. The paper's critique: phase 2 supports *only*
//! Recursive Doubling, whose doubling chunk sizes erode the overlap that
//! Ring would preserve (and no HCA offload is used in phase 1).

use mha_sched::{Channel, Loc, OpId, ProcGrid};

use crate::ctx::{BuildError, Built, Ctx};

/// Builds the single-leader design with Recursive-Doubling inter-leader
/// exchange and overlapped shm distribution.
///
/// # Errors
///
/// [`BuildError::RequiresPowerOfTwo`] unless the node count is a power of
/// two (the design is RD-only).
pub fn build_single_leader(grid: ProcGrid, msg: usize) -> Result<Built, BuildError> {
    let n = grid.nodes();
    if !n.is_power_of_two() {
        return Err(BuildError::RequiresPowerOfTwo {
            what: "nodes",
            got: n,
        });
    }
    let mut ctx = Ctx::new(grid, msg, "twolevel-single-leader");
    if ctx.is_degenerate() {
        return Ok(ctx.finish_degenerate());
    }
    emit_single_leader(&mut ctx);
    Ok(ctx.finish())
}

/// Emits the single-leader phases into an existing context. The caller has
/// already checked the power-of-two node count and non-degeneracy.
pub(crate) fn emit_single_leader(ctx: &mut Ctx) {
    let grid = ctx.grid();
    let n = grid.nodes();
    let l = grid.ppn();
    let msg = ctx.msg;
    let total = grid.nranks() as usize * msg;

    // Per-node shm segment holding the full result layout.
    let shm: Vec<_> = grid
        .node_ids()
        .map(|node| ctx.b.shared_buf(node, total, format!("shm/{node}")))
        .collect();

    // ---- Phase 1: members deposit their blocks into shm. ----------------
    // node_staged[node]: the deposit ops (the node block is complete once
    // all have run).
    let mut node_staged: Vec<Vec<OpId>> = Vec::with_capacity(n as usize);
    for node in grid.node_ids() {
        let mut deposits = Vec::with_capacity(l as usize);
        for rank in grid.ranks_of(node) {
            let deps = ctx.cur.deps_of(rank);
            let src = ctx.send_loc(rank);
            let dst = Loc::new(shm[node.index()], rank.index() * msg);
            let op = ctx.b.copy(rank, src, dst, msg, &deps, 0);
            ctx.cur.advance(rank, op);
            deposits.push(op);
        }
        node_staged.push(deposits);
    }

    // ---- Phase 2: RD between leaders, shm-resident. ----------------------
    // arrivals[node]: (start_block, nblocks, op) per received chunk.
    let mut arrivals: Vec<Vec<(u32, u32, OpId)>> = (0..n).map(|_| Vec::new()).collect();
    let mut net_cur: Vec<Vec<OpId>> = node_staged.clone();
    let steps = n.trailing_zeros();
    for k in 0..steps {
        let dist = 1u32 << k;
        let mut next_cur = net_cur.clone();
        for nd in 0..n {
            let partner = nd ^ dist;
            let pbase = partner & !(dist - 1);
            let mut deps = net_cur[partner as usize].clone();
            deps.extend(net_cur[nd as usize].iter().copied());
            let lsrc = grid.leader_of(mha_sched::NodeId(partner));
            let ldst = grid.leader_of(mha_sched::NodeId(nd));
            let off = (pbase * l) as usize * msg;
            let len = (dist * l) as usize * msg;
            let t = ctx.b.transfer(
                lsrc,
                ldst,
                Loc::new(shm[partner as usize], off),
                Loc::new(shm[nd as usize], off),
                len,
                Channel::AllRails,
                &deps,
                1000 + k,
            );
            arrivals[nd as usize].push((pbase * l, dist * l, t));
            next_cur[nd as usize] = vec![t];
        }
        net_cur = next_cur;
    }

    // ---- Phase 3: every rank copies chunks out of shm (overlapped). ------
    for node in grid.node_ids() {
        let nd = node.index();
        // Own node block: available after the node's deposits.
        let own_gate = node_staged[nd].clone();
        for rank in grid.ranks_of(node) {
            let deps = ctx.cur.deps_with(rank, &own_gate);
            let off = (node.0 * l) as usize * msg;
            let op = ctx.b.copy(
                rank,
                Loc::new(shm[nd], off),
                Loc::new(ctx.recv[rank.index()], off),
                (l as usize) * msg,
                &deps,
                2000,
            );
            ctx.cur.advance(rank, op);
        }
        // Remote chunks as they arrive.
        for (idx, &(start_block, nblocks, gate)) in arrivals[nd].iter().enumerate() {
            for rank in grid.ranks_of(node) {
                let off = start_block as usize * msg;
                let len = nblocks as usize * msg;
                let deps = ctx.cur.deps_with(rank, &[gate]);
                let op = ctx.b.copy(
                    rank,
                    Loc::new(shm[nd], off),
                    Loc::new(ctx.recv[rank.index()], off),
                    len,
                    &deps,
                    2001 + idx as u32,
                );
                ctx.cur.advance(rank, op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_simnet::{ClusterSpec, Simulator};

    #[test]
    fn single_leader_is_correct() {
        for (nodes, ppn) in [(1, 3), (2, 2), (4, 4), (8, 2), (2, 1)] {
            let built = build_single_leader(ProcGrid::new(nodes, ppn), 24).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn non_power_of_two_nodes_rejected() {
        assert!(matches!(
            build_single_leader(ProcGrid::new(3, 2), 8).unwrap_err(),
            BuildError::RequiresPowerOfTwo { .. }
        ));
    }

    #[test]
    fn only_leaders_cross_nodes() {
        let built = build_single_leader(ProcGrid::new(4, 4), 16).unwrap();
        let grid = *built.sched.grid();
        for op in built.sched.ops() {
            if let mha_sched::OpKind::Transfer {
                src_rank, dst_rank, ..
            } = &op.kind
            {
                if !grid.same_node(*src_rank, *dst_rank) {
                    assert!(grid.is_leader(*src_rank) && grid.is_leader(*dst_rank));
                }
            }
        }
    }

    #[test]
    fn mha_inter_ring_beats_single_leader_in_network_bound_regime() {
        // The paper's improvement over the Mamidala-style design comes from
        // Ring's better overlap in phase 2 (Figure 7): RD's final chunk is
        // half the result and its broadcast cannot be hidden. The effect
        // shows where the network phase is the critical path — e.g. on a
        // single-rail cluster (the era of [19]); with both rails striped,
        // node-level copies become the shared bottleneck and the designs
        // converge (also consistent with the paper's Eq. 6/7 case split).
        let spec = ClusterSpec::thor_single_rail();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(16, 2);
        let msg = 2 << 20;
        let sl = build_single_leader(grid, msg).unwrap();
        let mha =
            crate::mha::build_mha_inter(grid, msg, crate::mha::MhaInterConfig::default(), &spec)
                .unwrap();
        let t_sl = sim.run(&sl.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(t_mha < t_sl * 0.9, "mha {t_mha} vs single-leader {t_sl}");
    }
}
