//! The schedule container: a validated DAG of operations over declared
//! buffers, produced by an algorithm in `mha-collectives` and consumed by
//! both the simulator (`mha-simnet`) and the executors (`mha-exec`).

use crate::buffer::{BufKind, BufferDecl};
use crate::grid::ProcGrid;
use crate::ids::{BufId, NodeId, OpId, RankId};
use crate::op::{Channel, Op, OpKind};

/// Aggregate statistics of a schedule, used by tests to assert algorithmic
/// properties (step counts, traffic volume per channel) without executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Total operations.
    pub ops: usize,
    /// Bytes moved over CMA transfers.
    pub cma_bytes: u64,
    /// Bytes moved over rail transfers (specific rail or striped).
    pub rail_bytes: u64,
    /// Bytes moved by CPU copies.
    pub copy_bytes: u64,
    /// Bytes combined by reductions.
    pub reduce_bytes: u64,
    /// Number of transfer ops on rails.
    pub rail_transfers: usize,
    /// Number of CMA transfer ops.
    pub cma_transfers: usize,
    /// Number of copy ops.
    pub copies: usize,
    /// Highest assigned step number plus one (0 if no steps assigned).
    pub steps: u32,
    /// Length (in ops) of the longest dependency chain.
    pub critical_path: usize,
}

/// A complete schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    grid: ProcGrid,
    buffers: Vec<BufferDecl>,
    ops: Vec<Op>,
    /// Human-readable name of the algorithm that produced this schedule.
    name: String,
    /// Per-op release delays in seconds (empty ⇒ all zero): op `i` may not
    /// start before `ready(i) + alpha(i) + release[i]`. The multi-tenant
    /// traffic layer uses this to model job arrival times (on the roots of
    /// an open-loop job) and client think times (on the roots of a chained
    /// closed-loop job). Virtual-time only — the real executors ignore it.
    release: Vec<f64>,
}

impl Schedule {
    /// Assembles a schedule. Called by the builder; users go through
    /// [`crate::builder::ScheduleBuilder`].
    pub(crate) fn from_parts(
        grid: ProcGrid,
        buffers: Vec<BufferDecl>,
        ops: Vec<Op>,
        name: String,
        release: Vec<f64>,
    ) -> Self {
        debug_assert!(release.is_empty() || release.len() == ops.len());
        Schedule {
            grid,
            buffers,
            ops,
            name,
            release,
        }
    }

    /// The release delay of `id` in seconds — `0.0` unless a delay was set
    /// through [`crate::builder::ScheduleBuilder::set_release`].
    #[inline]
    pub fn release_of(&self, id: OpId) -> f64 {
        self.release.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Whether any op carries a non-zero release delay.
    #[inline]
    pub fn has_releases(&self) -> bool {
        !self.release.is_empty()
    }

    /// The process layout this schedule was built for.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Algorithm name (e.g. `"mha-inter-ring"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All buffer declarations, indexed by [`BufId`].
    #[inline]
    pub fn buffers(&self) -> &[BufferDecl] {
        &self.buffers
    }

    /// All operations in creation (= topological) order.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Looks up a buffer declaration.
    #[inline]
    pub fn buffer(&self, id: BufId) -> &BufferDecl {
        &self.buffers[id.index()]
    }

    /// Looks up an operation.
    #[inline]
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// Buffers private to `rank`, in declaration order.
    pub fn private_buffers_of(&self, rank: RankId) -> impl Iterator<Item = &BufferDecl> {
        self.buffers
            .iter()
            .filter(move |b| b.kind == BufKind::Private(rank))
    }

    /// Shared buffers of `node`, in declaration order.
    pub fn shared_buffers_of(&self, node: NodeId) -> impl Iterator<Item = &BufferDecl> {
        self.buffers
            .iter()
            .filter(move |b| b.kind == BufKind::NodeShared(node))
    }

    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> ScheduleStats {
        let mut s = ScheduleStats {
            ops: self.ops.len(),
            ..Default::default()
        };
        // depth[i] = longest chain ending at op i (ops are topologically
        // ordered because deps always point backwards).
        let mut depth = vec![0usize; self.ops.len()];
        for op in &self.ops {
            let d = op.deps.iter().map(|p| depth[p.index()]).max().unwrap_or(0) + 1;
            depth[op.id.index()] = d;
            s.critical_path = s.critical_path.max(d);
            if op.has_step() {
                s.steps = s.steps.max(op.step + 1);
            }
            match &op.kind {
                OpKind::Transfer { len, channel, .. } => match channel {
                    Channel::Cma => {
                        s.cma_bytes += *len as u64;
                        s.cma_transfers += 1;
                    }
                    Channel::Rail(_) | Channel::AllRails => {
                        s.rail_bytes += *len as u64;
                        s.rail_transfers += 1;
                    }
                },
                OpKind::Copy { len, .. } => {
                    s.copy_bytes += *len as u64;
                    s.copies += 1;
                }
                OpKind::Reduce { len, .. } => s.reduce_bytes += *len as u64,
                OpKind::Compute { .. } => {}
            }
        }
        s
    }

    /// Total bytes a correctness-checking executor will move (all channels).
    pub fn total_bytes(&self) -> u64 {
        let s = self.stats();
        s.cma_bytes + s.rail_bytes + s.copy_bytes + s.reduce_bytes
    }

    /// Renders the DAG in Graphviz DOT format (for debugging small
    /// schedules; quadratic label text makes this impractical above a few
    /// hundred ops).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=LR; node [shape=box, fontsize=9];");
        for op in &self.ops {
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{} {}B s{}\"];",
                op.id.index(),
                op.label,
                op.kind.kind_name(),
                op.kind.bytes(),
                if op.has_step() { op.step as i64 } else { -1 },
            );
            for &d in &op.deps {
                let _ = writeln!(out, "  {} -> {};", d.index(), op.id.index());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Loc;
    use crate::builder::ScheduleBuilder;

    fn tiny() -> Schedule {
        let grid = ProcGrid::new(2, 2);
        let mut b = ScheduleBuilder::new(grid, "tiny");
        let s0 = b.private_buf(RankId(0), 16, "send0");
        let r1 = b.private_buf(RankId(1), 16, "recv1");
        let shm = b.shared_buf(NodeId(0), 32, "shm0");
        let t = b.push(
            OpKind::Transfer {
                src_rank: RankId(0),
                dst_rank: RankId(1),
                src: Loc::new(s0, 0),
                dst: Loc::new(r1, 0),
                len: 16,
                channel: Channel::Cma,
            },
            &[],
            0,
            "t",
        );
        b.push(
            OpKind::Copy {
                actor: RankId(1),
                src: Loc::new(r1, 0),
                dst: Loc::new(shm, 0),
                len: 16,
            },
            &[t],
            1,
            "c",
        );
        b.finish()
    }

    #[test]
    fn stats_counts_bytes_by_channel() {
        let s = tiny().stats();
        assert_eq!(s.ops, 2);
        assert_eq!(s.cma_bytes, 16);
        assert_eq!(s.copy_bytes, 16);
        assert_eq!(s.rail_bytes, 0);
        assert_eq!(s.cma_transfers, 1);
        assert_eq!(s.copies, 1);
        assert_eq!(s.steps, 2);
        assert_eq!(s.critical_path, 2);
    }

    #[test]
    fn freeze_inverts_deps() {
        // Adjacency queries moved to the frozen IR; freezing keeps the
        // schedule reachable through Deref.
        let fs = tiny().freeze();
        assert_eq!(fs.succs(0), &[1]);
        assert!(fs.succs(1).is_empty());
        assert_eq!(fs.indegrees(), &[0, 1]);
        assert_eq!(fs.ops().len(), 2);
    }

    #[test]
    fn buffer_queries_filter_by_owner() {
        let sch = tiny();
        assert_eq!(sch.private_buffers_of(RankId(0)).count(), 1);
        assert_eq!(sch.private_buffers_of(RankId(1)).count(), 1);
        assert_eq!(sch.private_buffers_of(RankId(2)).count(), 0);
        assert_eq!(sch.shared_buffers_of(NodeId(0)).count(), 1);
        assert_eq!(sch.shared_buffers_of(NodeId(1)).count(), 0);
    }

    #[test]
    fn dot_output_mentions_every_op() {
        let sch = tiny();
        let dot = sch.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("0 -> 1;"));
    }

    #[test]
    fn total_bytes_sums_channels() {
        assert_eq!(tiny().total_bytes(), 32);
    }

    #[test]
    fn unassigned_steps_do_not_count() {
        let grid = ProcGrid::single_node(1);
        let mut b = ScheduleBuilder::new(grid, "t");
        b.push(
            OpKind::Compute {
                actor: RankId(0),
                flops: 1,
            },
            &[],
            u32::MAX, // unassigned
            "x",
        );
        let stats = b.finish().stats();
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.critical_path, 1);
    }

    #[test]
    fn critical_path_tracks_longest_chain_not_op_count() {
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "t");
        // Two independent chains of depth 3 and 2.
        let mut prev = None;
        for i in 0..3u32 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.compute(RankId(0), 1, &deps, i));
        }
        let a = b.compute(RankId(1), 1, &[], 0);
        b.compute(RankId(1), 1, &[a], 1);
        let stats = b.finish().stats();
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.critical_path, 3);
    }
}
