//! Distributed Bayesian Probabilistic Matrix Factorization — one of the
//! Allgather-bound applications the paper's introduction motivates
//! (Vander Aa et al. \[39\]: "Distributed Bayesian probabilistic matrix
//! factorization", whose per-iteration communication is an Allgather of
//! the freshly sampled item factors).
//!
//! The model: factorize an `users × items` ratings matrix as `U · Vᵀ` with
//! latent dimension `k`. Items are block-partitioned across ranks; every
//! Gibbs iteration each rank samples its item block's factors (dense
//! `k × k` solves per item) and then **allgathers V** so everyone can
//! sample their user block next. Iteration time = Allgather(V) + local
//! sampling compute, which makes the collective's latency directly visible
//! in samples/second — same shape as the paper's matvec experiment, at a
//! different compute/communication ratio.

use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::osu::{AppError, Contestant};

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct BpmfConfig {
    /// Users (rows of the ratings matrix).
    pub users: usize,
    /// Items (columns).
    pub items: usize,
    /// Latent dimension.
    pub latent: usize,
    /// Observed ratings per item on average (sparsity).
    pub ratings_per_item: usize,
    /// Process layout.
    pub grid: ProcGrid,
}

impl BpmfConfig {
    /// A MovieLens-20M-scale default: 138k users × 27k items, k = 32.
    pub fn movielens(grid: ProcGrid) -> Self {
        BpmfConfig {
            users: 138_000,
            items: 27_000,
            latent: 32,
            ratings_per_item: 740,
            grid,
        }
    }

    /// Bytes of one rank's item-factor block (f64 factors, padded so every
    /// rank contributes equally).
    pub fn block_bytes(&self) -> usize {
        let r = self.grid.nranks() as usize;
        self.items.div_ceil(r) * self.latent * 8
    }

    /// FLOPs per Gibbs iteration per rank: for each local item, build and
    /// solve a `k × k` normal-equation system from its ratings
    /// (`2·n·k²` accumulate + `k³/3` Cholesky).
    pub fn flops_per_rank(&self) -> f64 {
        let r = self.grid.nranks() as usize;
        let local_items = self.items.div_ceil(r) as f64;
        let k = self.latent as f64;
        local_items * (2.0 * self.ratings_per_item as f64 * k * k + k * k * k / 3.0)
    }
}

/// Result of one simulated Gibbs iteration.
#[derive(Debug, Clone, Copy)]
pub struct BpmfResult {
    /// Gibbs samples (full sweeps) per second.
    pub samples_per_sec: f64,
    /// Allgather time (µs).
    pub comm_us: f64,
    /// Sampling compute time (µs).
    pub compute_us: f64,
    /// Fraction of the iteration spent communicating.
    pub comm_fraction: f64,
}

/// Simulates one Gibbs iteration under `contestant`'s Allgather.
pub fn run_bpmf_iteration(
    cfg: BpmfConfig,
    contestant: Contestant,
    spec: &ClusterSpec,
) -> Result<BpmfResult, AppError> {
    let comm_us = contestant.allgather_latency_us(cfg.grid, cfg.block_bytes(), spec)?;
    let compute_us = cfg.flops_per_rank() / spec.flops_rate * 1e6;
    let total_us = comm_us + compute_us;
    Ok(BpmfResult {
        samples_per_sec: 1e6 / total_us,
        comm_us,
        compute_us,
        comm_fraction: comm_us / total_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_collectives::Library;

    #[test]
    fn movielens_dimensions_are_sane() {
        let cfg = BpmfConfig::movielens(ProcGrid::new(8, 32));
        // 27000 / 256 → 106 items per rank, 32 doubles each.
        assert_eq!(cfg.block_bytes(), 106 * 32 * 8);
        assert!(cfg.flops_per_rank() > 1e8);
    }

    #[test]
    fn mha_increases_sampling_throughput() {
        let spec = ClusterSpec::thor();
        let cfg = BpmfConfig::movielens(ProcGrid::new(8, 32));
        let mva = run_bpmf_iteration(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
        let mha = run_bpmf_iteration(cfg, Contestant::MhaTuned, &spec).unwrap();
        assert!(
            mha.samples_per_sec > mva.samples_per_sec,
            "mha {} vs mvapich {}",
            mha.samples_per_sec,
            mva.samples_per_sec
        );
    }

    #[test]
    fn communication_fraction_grows_with_scale() {
        // Strong scaling: compute shrinks per rank, the Allgather does not.
        let spec = ClusterSpec::thor();
        let small = run_bpmf_iteration(
            BpmfConfig::movielens(ProcGrid::new(2, 32)),
            Contestant::MhaTuned,
            &spec,
        )
        .unwrap();
        let large = run_bpmf_iteration(
            BpmfConfig::movielens(ProcGrid::new(16, 32)),
            Contestant::MhaTuned,
            &spec,
        )
        .unwrap();
        assert!(large.comm_fraction > small.comm_fraction);
        assert!(large.samples_per_sec > small.samples_per_sec);
    }

    #[test]
    fn results_are_internally_consistent() {
        let spec = ClusterSpec::thor();
        let r = run_bpmf_iteration(
            BpmfConfig::movielens(ProcGrid::new(4, 16)),
            Contestant::MhaTuned,
            &spec,
        )
        .unwrap();
        let total = r.comm_us + r.compute_us;
        assert!((r.samples_per_sec - 1e6 / total).abs() < 1e-9 * r.samples_per_sec);
        assert!((r.comm_fraction - r.comm_us / total).abs() < 1e-12);
    }
}
