//! Property tests for the serving path: `TunedTable::lookup` is total —
//! it never panics on off-grid queries, always returns a config valid for
//! the queried grid, and that config actually dispatches through
//! `mha_collectives::build` on small grids.

use proptest::prelude::*;

use mha_collectives::mha::{InterAlgo, Offload};
use mha_sched::ProcGrid;
use mha_tune::{build, AlgoConfig, Family, TableKey, TunedTable};

/// A small but adversarial config space for stored entries: includes
/// configs that are invalid for many grids (RD on non-power-of-two node
/// counts, MultiLeader group counts that don't divide, fixed offload
/// deeper than ppn) so coercion actually has work to do.
fn arb_stored_config() -> BoxedStrategy<AlgoConfig> {
    let family = prop_oneof![
        Just(Family::MhaInter),
        Just(Family::Ring),
        Just(Family::RecursiveDoubling),
        Just(Family::Bruck),
        (2u32..6).prop_map(|g| Family::MultiLeader { groups: g }),
    ]
    .boxed();
    let offload = prop_oneof![
        Just(Offload::Auto),
        Just(Offload::None),
        (1u32..16).prop_map(Offload::Fixed),
    ]
    .boxed();
    (
        family,
        prop_oneof![Just(InterAlgo::Ring), Just(InterAlgo::RecursiveDoubling)].boxed(),
        prop_oneof![Just(true), Just(false)].boxed(),
        offload,
        prop_oneof![Just(None), (1u32..64).prop_map(Some)].boxed(),
        prop_oneof![Just(None), (1usize..1 << 20).prop_map(Some)].boxed(),
        proptest::collection::vec(0u8..4, 0..3),
    )
        .prop_map(
            |(family, inter, overlap, offload, chunk, stripe_threshold, down_rails)| AlgoConfig {
                family,
                inter,
                overlap,
                offload,
                chunk,
                stripe_threshold,
                down_rails,
            },
        )
        .boxed()
}

fn arb_key() -> BoxedStrategy<TableKey> {
    (1u32..64, 1u32..64, 0u8..24, 1u8..4)
        .prop_map(|(nodes, ppn, msg_bucket, rails_up)| TableKey {
            nodes,
            ppn,
            msg_bucket,
            rails_up,
        })
        .boxed()
}

proptest! {
    /// Lookup is total and grid-valid for arbitrary tables and arbitrary
    /// (including wildly off-grid) queries.
    #[test]
    fn lookup_never_panics_and_result_is_grid_valid(
        entries in proptest::collection::vec((arb_key(), arb_stored_config()), 0..8),
        nodes in 1u32..96,
        ppn in 1u32..96,
        msg in 0usize..(1 << 22),
        rails_up in 0u8..5,
    ) {
        let mut table = TunedTable::new(0xfeed);
        for (k, cfg) in entries {
            table.insert(k, cfg);
        }
        let grid = ProcGrid::new(nodes, ppn);
        let served = table.lookup(grid, msg, rails_up);
        prop_assert!(served.valid_for(grid), "served {served:?} invalid for {grid:?}");
        // The nearest-neighbor fallback (or the empty-table default) must
        // come back as a *grid-valid* config, which by construction also
        // round-trips the kv form.
        let kv = served.to_kv();
        prop_assert_eq!(AlgoConfig::parse_kv(&kv).unwrap(), served);
    }

    /// Whatever lookup serves actually builds: one dispatch call on the
    /// queried grid succeeds. Grids are capped small so the proptest stays
    /// fast; validity (not scale) is what coercion has to get right.
    #[test]
    fn served_configs_always_dispatch(
        entries in proptest::collection::vec((arb_key(), arb_stored_config()), 0..6),
        nodes in 1u32..9,
        ppn in 1u32..9,
        msg in 1usize..8192,
        rails_up in 1u8..3,
    ) {
        let mut table = TunedTable::new(0xfeed);
        for (k, cfg) in entries {
            table.insert(k, cfg);
        }
        let grid = ProcGrid::new(nodes, ppn);
        let served = table.lookup(grid, msg, rails_up);
        let spec = mha_simnet::ClusterSpec::thor();
        let built = build(&served, grid, msg, &spec);
        prop_assert!(built.is_ok(), "served {served:?} failed to build on {grid:?}: {built:?}");
    }
}
