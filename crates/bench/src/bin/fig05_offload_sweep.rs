//! Figure 5: latency as a function of the offload size, showing the
//! V-shaped curve and the optimum the tuning algorithm finds.

use mha_apps::report::Table;
use mha_collectives::mha::tune_offload;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    for (l, msg, tag) in [
        (4u32, 4usize << 20, "L4_4M"),
        (8, 1 << 20, "L8_1M"),
        (16, 1 << 20, "L16_1M"),
    ] {
        let (best, curve) = tune_offload(&spec, l, msg).unwrap();
        let analytic = mha_collectives::mha::optimal_offload(&spec, l, msg);
        let mut t = Table::new(
            format!(
                "Figure 5: offload size vs latency, L={l}, M={msg} \
                 (tuned optimum d={best}, Eq.1 predicts d={analytic})"
            ),
            "offload_d",
            vec!["latency_us".into()],
        );
        for pt in &curve {
            t.push(pt.d.to_string(), vec![pt.latency_us]);
        }
        mha_bench::emit(&t, &format!("fig05_offload_{tag}"));
    }
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_intra(
        mha_sched::ProcGrid::single_node(8),
        1 << 20,
        mha_collectives::mha::Offload::Auto,
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig05_offload");
}
