//! Fault-path regression pins.
//!
//! * A canonical degraded-rail run (thor, rail 0 down at t = 0, the
//!   failure-aware 4×4 build at 64 KB) is pinned **bit-exactly** — the
//!   fault machinery must stay deterministic, and fault-free golden
//!   latencies elsewhere must not absorb drift from this path. On an
//!   intentional model change, re-pin from the bits printed by the
//!   assertion failure.
//! * A property sweep: *any* single-rail-failure schedule — every algorithm
//!   layout × any failed rail — still passes validate → check_races →
//!   verify on both executors.

use proptest::prelude::*;

use mha::collectives::mha::{build_mha_inter_degraded, InterAlgo, MhaInterConfig, Offload};
use mha::exec::{verify_allgather, Mode};
use mha::sched::{InvariantProbe, ProcGrid};
use mha::simnet::{ClusterSpec, FaultSpec, Simulator};

#[test]
fn canonical_degraded_rail_run_is_bit_identical() {
    let want = f64::from_bits(0x3f244be42776a2be); // 154.849625 us
    let spec = ClusterSpec::thor();
    let built = build_mha_inter_degraded(
        ProcGrid::new(4, 4),
        64 * 1024,
        MhaInterConfig::default(),
        &spec,
        &[0],
    )
    .unwrap();
    let sim = Simulator::with_faults(spec, FaultSpec::rail_down_at(0, 0.0)).unwrap();
    let mut audit = InvariantProbe::new();
    let got = sim.run_probed(&built.sched, &mut audit).unwrap().makespan;
    assert!(audit.is_clean(), "violations: {:?}", audit.violations());
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "degraded golden drifted: got {:.9} us (0x{:016x}), golden {:.9} us (0x{:016x})",
        got * 1e6,
        got.to_bits(),
        want * 1e6,
        want.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_rail_failure_schedule_is_correct(
        (nodes, ppn) in (1u32..=4, 1u32..=4),
        msg in 1usize..100_000,
        ring in any::<bool>(),
        rails in 2u8..=8,
        down_seed in 0u8..8,
    ) {
        let spec = ClusterSpec::thor_with_rails(rails);
        let grid = ProcGrid::new(nodes, ppn);
        let down = down_seed % rails;
        let cfg = MhaInterConfig {
            // RD needs power-of-two nodes; Ring takes anything.
            inter: if ring || !nodes.is_power_of_two() {
                InterAlgo::Ring
            } else {
                InterAlgo::RecursiveDoubling
            },
            offload: Offload::Auto,
            overlap: true,
        };
        let built = build_mha_inter_degraded(grid, msg, cfg, &spec, &[down]).unwrap();
        prop_assert!(mha::sched::validate(&built.sched, Some(spec.rails)).is_ok());
        prop_assert!(mha::sched::check_races(&built.sched).is_empty());
        verify_allgather(&built.sched, &built.send, &built.recv, msg, Mode::Single).unwrap();
        verify_allgather(&built.sched, &built.send, &built.recv, msg, Mode::Threaded(3))
            .unwrap();
    }
}
