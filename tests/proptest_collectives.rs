//! Property-based tests over the whole stack: random layouts, message
//! sizes and algorithms must always produce valid, race-free, semantically
//! correct, simulatable schedules.

use proptest::prelude::*;

use mha::collectives::mha::{InterAlgo, MhaInterConfig, Offload};
use mha::collectives::{AllgatherAlgo, AllgatherPhase};
use mha::exec::{verify_allgather, verify_allreduce_sum_f32, Mode};
use mha::sched::ProcGrid;
use mha::simnet::{ClusterSpec, Simulator};

fn arb_grid() -> impl Strategy<Value = ProcGrid> {
    (1u32..=5, 1u32..=6).prop_map(|(n, l)| ProcGrid::new(n, l))
}

/// Algorithms applicable to any grid.
fn arb_universal_algo() -> impl Strategy<Value = AllgatherAlgo> {
    prop_oneof![
        Just(AllgatherAlgo::Ring),
        Just(AllgatherAlgo::Bruck),
        Just(AllgatherAlgo::DirectSpread),
        Just(AllgatherAlgo::MultiLeader { groups: 1 }),
        any::<bool>().prop_map(|ov| AllgatherAlgo::MhaInter(MhaInterConfig {
            inter: InterAlgo::Ring,
            offload: Offload::Auto,
            overlap: ov,
        })),
        (0u32..4).prop_map(|d| AllgatherAlgo::MhaInter(MhaInterConfig {
            inter: InterAlgo::Ring,
            offload: Offload::Fixed(d),
            overlap: true,
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_allgather_is_always_correct(
        grid in arb_grid(),
        algo in arb_universal_algo(),
        msg in 1usize..200,
    ) {
        let spec = ClusterSpec::thor();
        let built = algo.build(grid, msg, &spec).unwrap();
        prop_assert!(mha::sched::validate(&built.sched, Some(spec.rails)).is_ok());
        prop_assert!(mha::sched::check_races(&built.sched).is_empty());
        verify_allgather(&built.sched, &built.send, &built.recv, msg, Mode::Threaded(3))
            .unwrap();
    }

    #[test]
    fn random_allgather_simulates_with_dependency_order(
        grid in arb_grid(),
        algo in arb_universal_algo(),
        msg in 1usize..100_000,
    ) {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let built = algo.build(grid, msg, &spec).unwrap();
        let res = sim.run(&built.sched).unwrap();
        prop_assert!(res.makespan > 0.0 && res.makespan.is_finite());
        for op in built.sched.ops() {
            for &d in &op.deps {
                prop_assert!(res.op_end[d.index()] <= res.op_end[op.id.index()]);
            }
        }
        // No resource can be more than fully utilized.
        for u in res.utilization() {
            prop_assert!(u <= 1.0 + 1e-9, "utilization {u}");
        }
    }

    #[test]
    fn latency_is_monotone_in_message_size(
        grid in arb_grid(),
        base in 64usize..4096,
    ) {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let algo = AllgatherAlgo::MhaInter(MhaInterConfig::default());
        let small = algo.build(grid, base, &spec).unwrap();
        let large = algo.build(grid, base * 4, &spec).unwrap();
        let t_small = sim.run(&small.sched).unwrap().makespan;
        let t_large = sim.run(&large.sched).unwrap().makespan;
        prop_assert!(t_large >= t_small * 0.999, "{t_small} -> {t_large}");
    }

    #[test]
    fn random_allreduce_is_always_correct(
        grid in arb_grid(),
        elems_per_rank in 1usize..32,
        mha_phase in any::<bool>(),
    ) {
        let spec = ClusterSpec::thor();
        let elems = elems_per_rank * grid.nranks() as usize;
        let phase = if mha_phase {
            AllgatherPhase::MhaInter(MhaInterConfig::default())
        } else {
            AllgatherPhase::FlatRing
        };
        let built = mha::collectives::build_ring_allreduce(grid, elems, phase, &spec).unwrap();
        prop_assert!(mha::sched::check_races(&built.sched).is_empty());
        verify_allreduce_sum_f32(
            &built.sched, &built.send, &built.recv, elems, Mode::Threaded(3),
        ).unwrap();
    }

    #[test]
    fn step_counts_match_theory(
        grid in arb_grid(),
        msg in 1usize..64,
    ) {
        let spec = ClusterSpec::thor();
        let r = grid.nranks();
        // Ring and Direct Spread: N - 1 exchange steps (+ self-copy step).
        for algo in [AllgatherAlgo::Ring, AllgatherAlgo::DirectSpread] {
            let built = algo.build(grid, msg, &spec).unwrap();
            prop_assert_eq!(built.sched.stats().steps, r.max(1));
        }
        // RD: log2(N) exchange steps for powers of two.
        if r.is_power_of_two() {
            let built = AllgatherAlgo::RecursiveDoubling.build(grid, msg, &spec).unwrap();
            prop_assert_eq!(built.sched.stats().steps, r.trailing_zeros() + 1);
        }
    }

    #[test]
    fn offload_splits_preserve_transfer_counts(
        l in 2u32..8,
        d in 0u32..8,
        msg in 1usize..4096,
    ) {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::single_node(l);
        let built = mha::collectives::mha::build_mha_intra(
            grid, msg, Offload::Fixed(d), &spec,
        ).unwrap();
        let stats = built.sched.stats();
        let d_eff = d.min(l - 1);
        prop_assert_eq!(stats.rail_transfers as u32, l * d_eff);
        prop_assert_eq!(stats.cma_transfers as u32, l * (l - 1 - d_eff));
        // Total data volume is invariant in the offload split.
        prop_assert_eq!(
            stats.cma_bytes + stats.rail_bytes,
            u64::from(l) * u64::from(l - 1) * msg as u64
        );
    }

    #[test]
    fn simulation_is_deterministic_for_random_inputs(
        grid in arb_grid(),
        msg in 1usize..10_000,
    ) {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let built = AllgatherAlgo::Ring.build(grid, msg, &spec).unwrap();
        let a = sim.run(&built.sched).unwrap();
        let b = sim.run(&built.sched).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.op_end, b.op_end);
        prop_assert_eq!(a.events, b.events);
    }
}
