//! The 3-level NUMA-aware Allgather — the paper's stated future work:
//! *"We can have a 3-level design with the overlapping of intra-socket,
//! inter-socket, and inter-node communication"* (Section 7).
//!
//! Levels:
//!
//! 1. **Intra-socket** — Direct Spread over CMA among the ranks of one
//!    socket; all traffic stays on the local memory controller.
//! 2. **Inter-socket** — each socket leader imports the *other* sockets'
//!    aggregated regions in one transfer per region: across the
//!    interconnect once (instead of once per member, which is what a
//!    NUMA-blind design effectively does), or offloaded to the HCAs, whose
//!    DMA path bypasses the inter-socket link entirely. Members then pull
//!    the imported region from their own socket leader over same-socket
//!    CMA.
//! 3. **Inter-node** — the node leader runs the Ring exchange of
//!    Section 3.2 over all rails; arrived chunks are distributed through
//!    *per-socket* shared-memory segments (each homed on its socket, so
//!    copy-outs never cross the interconnect; only the socket-relay
//!    copy-in does, once per chunk) — overlapped with the exchange exactly
//!    like the 2-level design.

use mha_sched::{Channel, Loc, NodeId, OpId, ProcGrid, RankId};
use mha_simnet::ClusterSpec;

use crate::ctx::{BuildError, Built, Ctx};

/// Configuration of the 3-level design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Numa3Config {
    /// Import other-socket regions via NIC loopback (true — the
    /// multi-HCA-aware choice) or over the inter-socket link (false).
    pub offload_xsocket: bool,
}

impl Default for Numa3Config {
    fn default() -> Self {
        Numa3Config {
            offload_xsocket: true,
        }
    }
}

/// Builds the 3-level NUMA-aware Allgather.
///
/// # Errors
///
/// [`BuildError::BadParameter`] unless the cluster spec carries a NUMA
/// layout and the socket count divides the processes per node.
pub fn build_mha_numa3(
    grid: ProcGrid,
    msg: usize,
    cfg: Numa3Config,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let Some(numa) = spec.numa.as_ref() else {
        return Err(BuildError::BadParameter(
            "the 3-level design needs a cluster spec with NUMA modeling (ClusterSpec::thor_numa)"
                .into(),
        ));
    };
    let n = grid.nodes();
    let l = grid.ppn();
    let s = numa.sockets;
    if !l.is_multiple_of(s) {
        return Err(BuildError::BadParameter(format!(
            "{s} sockets do not divide {l} processes per node"
        )));
    }
    let ls = l / s; // ranks per socket
    let mut ctx = Ctx::new(grid, msg, "mha-numa3");
    if ctx.is_degenerate() {
        return Ok(ctx.finish_degenerate());
    }

    // Socket leader of (node, socket).
    let sleader = |node: NodeId, sck: u32| grid.rank_on(node, sck * ls);

    // ---- Level 1: intra-socket Direct Spread ----------------------------
    // fills[node][socket]: ops after which the *socket leader* holds the
    // socket's full region.
    let mut leader_fill: Vec<Vec<Vec<OpId>>> = Vec::with_capacity(n as usize);
    for node in grid.node_ids() {
        let mut per_socket = Vec::with_capacity(s as usize);
        for sck in 0..s {
            let ranks: Vec<RankId> = (0..ls).map(|j| grid.rank_on(node, sck * ls + j)).collect();
            let mut leader_ops = Vec::new();
            for (i, &me) in ranks.iter().enumerate() {
                let mut ops = vec![ctx.self_copy(me, 0)];
                for d in 1..ranks.len() {
                    let peer = ranks[(i + ranks.len() - d) % ranks.len()];
                    let mut deps = ctx.cur.deps_of(me);
                    deps.extend(ctx.ready_deps(peer));
                    let t = ctx.b.transfer(
                        peer,
                        me,
                        ctx.send_loc(peer),
                        ctx.recv_block(me, peer.0),
                        msg,
                        Channel::Cma,
                        &deps,
                        d as u32,
                    );
                    ctx.cur.advance(me, t);
                    ops.push(t);
                }
                if i == 0 {
                    leader_ops = ops;
                }
            }
            per_socket.push(leader_ops);
        }
        leader_fill.push(per_socket);
    }

    // ---- Level 2: inter-socket exchange (overlappable) -------------------
    // Socket leaders import every other socket's region once, then their
    // members pull it over same-socket CMA. node_done[node]: ops after
    // which the *node leader* holds the full node block.
    let region_bytes = ls as usize * msg;
    let mut node_done: Vec<Vec<OpId>> = Vec::with_capacity(n as usize);
    for node in grid.node_ids() {
        let mut done = leader_fill[node.index()][0].clone();
        for sck in 0..s {
            let me = sleader(node, sck);
            for other in 0..s {
                if other == sck {
                    continue;
                }
                let peer = sleader(node, other);
                let first_block = peer.0; // regions are rank-contiguous
                let channel = if cfg.offload_xsocket {
                    Channel::AllRails // NIC loopback: bypasses the UPI link
                } else {
                    Channel::Cma // pays the cross-socket interconnect once
                };
                let mut deps = leader_fill[node.index()][other as usize].clone();
                deps.extend(ctx.cur.deps_of(me));
                let import = ctx.b.transfer(
                    peer,
                    me,
                    ctx.recv_block(peer, first_block),
                    ctx.recv_block(me, first_block),
                    region_bytes,
                    channel,
                    &deps,
                    100 + other,
                );
                if channel == Channel::Cma {
                    ctx.cur.advance(me, import);
                }
                if sck == 0 {
                    done.push(import);
                }
                // Socket members pull the imported region from their
                // leader (same-socket CMA), pipelined per member.
                for j in 1..ls {
                    let member = grid.rank_on(node, sck * ls + j);
                    let deps = ctx.cur.deps_with(member, &[import]);
                    let t = ctx.b.transfer(
                        me,
                        member,
                        ctx.recv_block(me, first_block),
                        ctx.recv_block(member, first_block),
                        region_bytes,
                        Channel::Cma,
                        &deps,
                        200 + other,
                    );
                    ctx.cur.advance(member, t);
                }
            }
        }
        node_done.push(done);
    }
    if n == 1 {
        return Ok(ctx.finish());
    }

    // ---- Level 3: inter-node Ring + per-socket shm distribution ----------
    let node_block = l as usize * msg;
    let leader = |nd: u32| grid.leader_of(NodeId(nd));
    // Per-(node, socket) shm segments, homed on their socket.
    let shm: Vec<Vec<_>> = grid
        .node_ids()
        .map(|node| {
            (0..s)
                .map(|sck| {
                    ctx.b.shared_buf_homed(
                        node,
                        sck,
                        grid.nranks() as usize * msg,
                        format!("shm/{node}/s{sck}"),
                    )
                })
                .collect()
        })
        .collect();

    let mut arrivals: Vec<Vec<(u32, OpId)>> = (0..n).map(|_| Vec::new()).collect();
    let mut avail: Vec<Vec<OpId>> = node_done;
    let mut prev_recv: Vec<Option<OpId>> = vec![None; n as usize];
    for step in 0..n - 1 {
        let mut next_avail = Vec::with_capacity(n as usize);
        let mut next_recv = Vec::with_capacity(n as usize);
        for nd in 0..n {
            let sender = (nd + n - 1) % n;
            let block_node = (sender + n - step) % n;
            let mut deps = avail[sender as usize].clone();
            deps.extend(prev_recv[nd as usize]);
            let (lsrc, ldst) = (leader(sender), leader(nd));
            let t = ctx.b.transfer(
                lsrc,
                ldst,
                Loc::new(ctx.recv[lsrc.index()], block_node as usize * node_block),
                Loc::new(ctx.recv[ldst.index()], block_node as usize * node_block),
                node_block,
                Channel::AllRails,
                &deps,
                1000 + step,
            );
            arrivals[nd as usize].push((block_node, t));
            next_avail.push(vec![t]);
            next_recv.push(Some(t));
        }
        avail = next_avail;
        prev_recv = next_recv;
    }

    for node in grid.node_ids() {
        let nd = node.index();
        for (idx, &(block_node, gate)) in arrivals[nd].iter().enumerate() {
            let off = block_node as usize * node_block;
            // Socket-0 leader (= node leader) publishes into its socket's
            // shm; each other socket's leader relays into its own shm
            // (one interconnect crossing per chunk per socket).
            let mut publish: Vec<OpId> = Vec::with_capacity(s as usize);
            for sck in 0..s {
                let actor = sleader(node, sck);
                let (src, dep): (Loc, Vec<OpId>) = if sck == 0 {
                    (
                        Loc::new(ctx.recv[actor.index()], off),
                        ctx.cur.deps_with(actor, &[gate]),
                    )
                } else {
                    (
                        Loc::new(shm[nd][0], off),
                        ctx.cur.deps_with(actor, &[publish[0]]),
                    )
                };
                let cin = ctx.b.copy(
                    actor,
                    src,
                    Loc::new(shm[nd][sck as usize], off),
                    node_block,
                    &dep,
                    2000 + idx as u32,
                );
                ctx.cur.advance(actor, cin);
                publish.push(cin);
                // Non-leader ranks of the socket copy out locally; the
                // relayed chunk also completes the relaying leader's recv.
                if sck > 0 {
                    let deps = ctx.cur.deps_with(actor, &[cin]);
                    let own = ctx.b.copy(
                        actor,
                        Loc::new(shm[nd][sck as usize], off),
                        Loc::new(ctx.recv[actor.index()], off),
                        node_block,
                        &deps,
                        3000 + idx as u32,
                    );
                    ctx.cur.advance(actor, own);
                }
                for j in 1..ls {
                    let member = grid.rank_on(node, sck * ls + j);
                    let deps = ctx.cur.deps_with(member, &[cin]);
                    let cout = ctx.b.copy(
                        member,
                        Loc::new(shm[nd][sck as usize], off),
                        Loc::new(ctx.recv[member.index()], off),
                        node_block,
                        &deps,
                        3000 + idx as u32,
                    );
                    ctx.cur.advance(member, cout);
                }
            }
        }
    }
    Ok(ctx.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use crate::mha::{build_mha_inter, MhaInterConfig};
    use mha_simnet::Simulator;

    fn numa_spec() -> ClusterSpec {
        ClusterSpec::thor_numa()
    }

    #[test]
    fn numa3_is_correct() {
        for (nodes, ppn) in [(1u32, 4u32), (1, 8), (2, 4), (3, 4), (4, 8), (2, 2)] {
            let built = build_mha_numa3(
                ProcGrid::new(nodes, ppn),
                24,
                Numa3Config::default(),
                &numa_spec(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn numa3_without_offload_is_also_correct() {
        let built = build_mha_numa3(
            ProcGrid::new(2, 8),
            16,
            Numa3Config {
                offload_xsocket: false,
            },
            &numa_spec(),
        )
        .unwrap();
        assert_allgather_correct(&built);
    }

    #[test]
    fn numa3_requires_numa_spec_and_divisible_ppn() {
        assert!(matches!(
            build_mha_numa3(
                ProcGrid::new(2, 4),
                8,
                Numa3Config::default(),
                &ClusterSpec::thor()
            ),
            Err(BuildError::BadParameter(_))
        ));
        assert!(matches!(
            build_mha_numa3(ProcGrid::new(2, 5), 8, Numa3Config::default(), &numa_spec()),
            Err(BuildError::BadParameter(_))
        ));
    }

    #[test]
    fn numa3_beats_numa_blind_mha_inter_on_numa_hardware() {
        // The point of the future-work design: on a NUMA node, the 2-level
        // design's phase 1 bounces half its CMA fetches across the
        // interconnect; the 3-level design crosses it once per region.
        let spec = numa_spec();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(2, 16);
        let msg = 512 * 1024;
        let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
        let t_blind = sim.run(&blind.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();
        assert!(
            t_aware < t_blind,
            "numa3 {t_aware} should beat numa-blind {t_blind}"
        );
    }

    #[test]
    fn numa3_matches_2level_when_interconnect_is_free() {
        // With an (unphysically) fast interconnect the two designs price
        // similarly — the gap really is the cross-socket path.
        let mut spec = numa_spec();
        if let Some(numa) = spec.numa.as_mut() {
            numa.xsocket_bw = 1e12;
            numa.xsocket_alpha = 0.0;
        }
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(2, 8);
        let msg = 256 * 1024;
        let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
        let t_blind = sim.run(&blind.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();
        let ratio = t_aware / t_blind;
        assert!(ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn single_node_numa3_works_as_socket_hierarchy() {
        let spec = numa_spec();
        let sim = Simulator::new(spec.clone()).unwrap();
        let built = build_mha_numa3(
            ProcGrid::new(1, 16),
            64 * 1024,
            Numa3Config::default(),
            &spec,
        )
        .unwrap();
        assert_allgather_correct(&built);
        assert!(sim.run(&built.sched).unwrap().makespan > 0.0);
    }
}
