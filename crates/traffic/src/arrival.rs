//! Arrival processes: when jobs enter the shared cluster.
//!
//! [`sample_jobs`] expands a [`TrafficSpec`](crate::TrafficSpec) into a
//! concrete job list — a pure function of the spec (seed included), so the
//! same spec always yields byte-identical job streams regardless of
//! worker counts or host. Two shapes are supported:
//!
//! * **open loop** — [`Arrival::Poisson`] / [`Arrival::Trace`]: jobs carry
//!   absolute arrival times, independent of completions. Arrival time is
//!   realized as a release delay on the job's root ops.
//! * **closed loop** — [`Arrival::Closed`]: `clients` clients each submit
//!   `jobs_per_client` jobs back-to-back; job `k+1` *chains* on job `k`
//!   (its roots depend on the predecessor's sinks) plus a think-time
//!   release, so the feedback loop is encoded in the merged DAG and needs
//!   no iteration to resolve.

use mha_collectives::AlgoConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::placement::place;
use crate::TrafficSpec;

/// The arrival process of one traffic scenario.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Closed loop: `clients` clients, each a serial chain of
    /// `jobs_per_client` jobs separated by `think` seconds.
    Closed {
        /// Concurrent clients (= tenants).
        clients: u32,
        /// Jobs each client submits, one after the other.
        jobs_per_client: u32,
        /// Seconds between a completion and the next submission.
        think: f64,
    },
    /// Open loop: Poisson arrivals at `rate_hz` jobs/second, `jobs` total.
    Poisson {
        /// Mean arrival rate in jobs per second (the offered load knob).
        rate_hz: f64,
        /// Number of jobs to draw.
        jobs: u32,
    },
    /// Open loop: explicit arrival times in seconds (trace-driven).
    Trace(Vec<f64>),
}

/// One concrete job of a sampled traffic scenario.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Dense job id (index into the sampled stream).
    pub id: u32,
    /// Tenant the job belongs to (client id for closed loop).
    pub tenant: u32,
    /// The collective to run, already coerced onto the job grid.
    pub cfg: AlgoConfig,
    /// Per-rank contribution in bytes.
    pub msg: usize,
    /// Cluster nodes the job occupies (distinct, placement order).
    pub nodes: Vec<u32>,
    /// Release delay in seconds: absolute arrival time for unchained
    /// jobs (ready at t=0), think time past the predecessor's completion
    /// for chained ones.
    pub release: f64,
    /// Id of the job this one chains on (same tenant, smaller id).
    pub after: Option<u32>,
}

impl JobSpec {
    /// The job's own process grid (`nodes.len() × ppn`).
    pub fn grid(&self, ppn: u32) -> mha_sched::ProcGrid {
        mha_sched::ProcGrid::new(self.nodes.len() as u32, ppn)
    }

    /// Payload bytes the collective delivers (per-rank contribution times
    /// rank count) — the unit of the throughput metrics.
    pub fn payload(&self, ppn: u32) -> f64 {
        self.msg as f64 * (self.nodes.len() as u32 * ppn) as f64
    }

    /// A short, greppable description (determinism tests byte-compare it).
    pub fn describe(&self) -> String {
        format!(
            "job={} tenant={} cfg={} msg={} nodes={:?} release={:e} after={:?}",
            self.id,
            self.tenant,
            self.cfg.to_kv(),
            self.msg,
            self.nodes,
            self.release,
            self.after
        )
    }
}

/// Expands `spec` into its deterministic job stream.
///
/// # Panics
///
/// Panics on malformed specs (zero clients/jobs, non-finite rates or
/// think times, negative trace times) — traffic specs are programmer
/// input, not user data.
pub fn sample_jobs(spec: &TrafficSpec) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut jobs = Vec::new();
    match &spec.arrival {
        Arrival::Closed {
            clients,
            jobs_per_client,
            think,
        } => {
            assert!(*clients >= 1 && *jobs_per_client >= 1, "empty closed loop");
            assert!(think.is_finite() && *think >= 0.0, "bad think time");
            for client in 0..*clients {
                // One allocation per client: the chain stays on its nodes.
                let (_, width0, _) = spec.mix.sample(spec.ppn, &mut rng);
                let nodes = place(spec.policy, spec.nodes, width0, &mut rng);
                let mut prev: Option<u32> = None;
                for _ in 0..*jobs_per_client {
                    let grid = mha_sched::ProcGrid::new(width0, spec.ppn);
                    let (cfg, _, msg) = spec.mix.sample(spec.ppn, &mut rng);
                    let id = jobs.len() as u32;
                    jobs.push(JobSpec {
                        id,
                        tenant: client,
                        cfg: cfg.coerce_for(grid),
                        msg,
                        nodes: nodes.clone(),
                        release: if prev.is_some() { *think } else { 0.0 },
                        after: prev,
                    });
                    prev = Some(id);
                }
            }
        }
        Arrival::Poisson { rate_hz, jobs: n } => {
            assert!(rate_hz.is_finite() && *rate_hz > 0.0, "bad Poisson rate");
            assert!(*n >= 1, "empty Poisson stream");
            let mut t = 0.0f64;
            for i in 0..*n {
                t += -(1.0 - rng.gen_f64()).ln() / rate_hz;
                push_open_job(spec, &mut rng, &mut jobs, i, t);
            }
        }
        Arrival::Trace(times) => {
            assert!(!times.is_empty(), "empty trace");
            for (i, &t) in times.iter().enumerate() {
                assert!(t.is_finite() && t >= 0.0, "bad trace time {t}");
                push_open_job(spec, &mut rng, &mut jobs, i as u32, t);
            }
        }
    }
    jobs
}

fn push_open_job(
    spec: &TrafficSpec,
    rng: &mut StdRng,
    jobs: &mut Vec<JobSpec>,
    i: u32,
    arrival: f64,
) {
    let (cfg, width, msg) = spec.mix.sample(spec.ppn, rng);
    let nodes = place(spec.policy, spec.nodes, width, rng);
    jobs.push(JobSpec {
        id: i,
        tenant: i % spec.tenants.max(1),
        cfg,
        msg,
        nodes,
        release: arrival,
        after: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMix;
    use crate::PlacementPolicy;
    use mha_simnet::ClusterSpec;

    fn spec(arrival: Arrival, seed: u64) -> TrafficSpec {
        TrafficSpec {
            cluster: ClusterSpec::thor(),
            nodes: 8,
            ppn: 4,
            arrival,
            mix: WorkloadMix::paper_default(8),
            policy: PlacementPolicy::Random,
            tenants: 3,
            seed,
        }
    }

    #[test]
    fn closed_loops_chain_per_client() {
        let jobs = sample_jobs(&spec(
            Arrival::Closed {
                clients: 3,
                jobs_per_client: 4,
                think: 1e-3,
            },
            9,
        ));
        assert_eq!(jobs.len(), 12);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id as usize, i);
            assert_eq!(j.tenant, (i / 4) as u32);
            if i % 4 == 0 {
                assert_eq!(j.after, None);
                assert_eq!(j.release, 0.0);
            } else {
                assert_eq!(j.after, Some(j.id - 1));
                assert_eq!(j.release, 1e-3);
                // Chains stay on their client's allocation.
                assert_eq!(j.nodes, jobs[i - 1].nodes);
            }
        }
    }

    #[test]
    fn poisson_arrivals_increase_and_depend_on_seed() {
        let draw = |seed| {
            sample_jobs(&spec(
                Arrival::Poisson {
                    rate_hz: 1e4,
                    jobs: 10,
                },
                seed,
            ))
        };
        let a = draw(1);
        assert!(a.windows(2).all(|w| w[0].release < w[1].release));
        assert!(a.iter().all(|j| j.after.is_none()));
        assert_eq!(a[4].tenant, 4 % 3);
        let b = draw(2);
        assert_ne!(
            a.iter().map(|j| j.release.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|j| j.release.to_bits()).collect::<Vec<_>>(),
            "different seeds must move the arrival sequence"
        );
        let a2 = draw(1);
        assert_eq!(
            a.iter().map(JobSpec::describe).collect::<Vec<_>>(),
            a2.iter().map(JobSpec::describe).collect::<Vec<_>>(),
            "same seed must reproduce the stream byte-identically"
        );
    }

    #[test]
    fn traces_are_taken_verbatim() {
        let jobs = sample_jobs(&spec(Arrival::Trace(vec![0.0, 5e-4, 5e-4, 2e-3]), 4));
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            jobs.iter().map(|j| j.release).collect::<Vec<_>>(),
            vec![0.0, 5e-4, 5e-4, 2e-3]
        );
    }
}
