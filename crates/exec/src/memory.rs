//! Real byte storage for schedule execution.
//!
//! Each declared buffer becomes a lock-protected `Vec<u8>`. The executors
//! lock the (at most two) buffers an op touches in id order, so no deadlock
//! is possible; for schedules that pass `mha_sched::check_races`, the result
//! is additionally independent of scheduling order.

use parking_lot::Mutex;

use mha_sched::{BufId, Loc, Schedule};

/// The materialized buffers of one schedule.
pub struct BufferStore {
    bufs: Vec<Mutex<Vec<u8>>>,
}

impl BufferStore {
    /// Allocates zero-filled storage for every buffer in `sch`.
    pub fn new(sch: &Schedule) -> Self {
        BufferStore {
            bufs: sch
                .buffers()
                .iter()
                .map(|b| Mutex::new(vec![0u8; b.len]))
                .collect(),
        }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the store holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Overwrites `buf[offset..offset + data.len()]` with `data`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn fill(&self, buf: BufId, offset: usize, data: &[u8]) {
        let mut guard = self.bufs[buf.index()].lock();
        guard[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Returns a copy of `buf[offset..offset + len]`.
    pub fn read(&self, buf: BufId, offset: usize, len: usize) -> Vec<u8> {
        let guard = self.bufs[buf.index()].lock();
        guard[offset..offset + len].to_vec()
    }

    /// Returns a full copy of `buf`.
    pub fn read_all(&self, buf: BufId) -> Vec<u8> {
        self.bufs[buf.index()].lock().clone()
    }

    /// Copies `len` bytes from `src` to `dst`, locking in id order.
    /// Used for transfers and copies alike (the executors model both as a
    /// memcpy; timing differences are the simulator's concern).
    pub fn copy_bytes(&self, src: Loc, dst: Loc, len: usize) {
        if src.buf == dst.buf {
            let mut guard = self.bufs[src.buf.index()].lock();
            // Validation forbids overlapping same-buffer copies, so a
            // temporary split via copy_within is safe.
            guard.copy_within(src.offset..src.offset + len, dst.offset);
        } else {
            // Lock in id order to avoid deadlock between concurrent ops.
            let (first, second) = if src.buf < dst.buf {
                (src.buf, dst.buf)
            } else {
                (dst.buf, src.buf)
            };
            let g1 = self.bufs[first.index()].lock();
            let g2 = self.bufs[second.index()].lock();
            let (sg, mut dg) = if src.buf == first { (g1, g2) } else { (g2, g1) };
            dg[dst.offset..dst.offset + len].copy_from_slice(&sg[src.offset..src.offset + len]);
        }
    }

    /// Applies `acc[i] = combine(acc[i], operand[i])` elementwise over `len`
    /// bytes, where `elem_size`-byte chunks are combined by `combine`.
    pub fn combine_bytes(
        &self,
        acc: Loc,
        operand: Loc,
        len: usize,
        elem_size: usize,
        combine: impl Fn(&mut [u8], &[u8]),
    ) {
        assert_eq!(len % elem_size, 0);
        if acc.buf == operand.buf {
            let mut guard = self.bufs[acc.buf.index()].lock();
            // Ranges are validated non-overlapping only for Copy; reduce may
            // legally read and write the same buffer at disjoint offsets.
            // Work on a copied operand to sidestep aliasing.
            let op_copy = guard[operand.offset..operand.offset + len].to_vec();
            let acc_slice = &mut guard[acc.offset..acc.offset + len];
            for (a, o) in acc_slice
                .chunks_exact_mut(elem_size)
                .zip(op_copy.chunks_exact(elem_size))
            {
                combine(a, o);
            }
        } else {
            let (first, second) = if acc.buf < operand.buf {
                (acc.buf, operand.buf)
            } else {
                (operand.buf, acc.buf)
            };
            let g1 = self.bufs[first.index()].lock();
            let g2 = self.bufs[second.index()].lock();
            let (mut ag, og) = if acc.buf == first { (g1, g2) } else { (g2, g1) };
            let acc_slice = &mut ag[acc.offset..acc.offset + len];
            let op_slice = &og[operand.offset..operand.offset + len];
            for (a, o) in acc_slice
                .chunks_exact_mut(elem_size)
                .zip(op_slice.chunks_exact(elem_size))
            {
                combine(a, o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_sched::{ProcGrid, RankId, ScheduleBuilder};

    fn store_with(lens: &[usize]) -> (Schedule, BufferStore) {
        let mut b = ScheduleBuilder::new(ProcGrid::single_node(1), "t");
        for (i, &l) in lens.iter().enumerate() {
            b.private_buf(RankId(0), l, format!("b{i}"));
        }
        // A schedule must not be empty of buffers for these tests; ops not
        // needed here.
        let sch = b.finish();
        let store = BufferStore::new(&sch);
        (sch, store)
    }

    #[test]
    fn buffers_start_zeroed() {
        let (_s, st) = store_with(&[4, 8]);
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        assert_eq!(st.read_all(BufId(0)), vec![0; 4]);
        assert_eq!(st.read(BufId(1), 2, 3), vec![0; 3]);
    }

    #[test]
    fn fill_then_read_round_trips() {
        let (_s, st) = store_with(&[8]);
        st.fill(BufId(0), 2, &[1, 2, 3]);
        assert_eq!(st.read_all(BufId(0)), vec![0, 0, 1, 2, 3, 0, 0, 0]);
    }

    #[test]
    fn copy_between_buffers() {
        let (_s, st) = store_with(&[4, 4]);
        st.fill(BufId(0), 0, &[9, 8, 7, 6]);
        st.copy_bytes(Loc::new(BufId(0), 1), Loc::new(BufId(1), 2), 2);
        assert_eq!(st.read_all(BufId(1)), vec![0, 0, 8, 7]);
    }

    #[test]
    fn copy_within_one_buffer() {
        let (_s, st) = store_with(&[8]);
        st.fill(BufId(0), 0, &[1, 2, 3, 4, 0, 0, 0, 0]);
        st.copy_bytes(Loc::new(BufId(0), 0), Loc::new(BufId(0), 4), 4);
        assert_eq!(st.read_all(BufId(0)), vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn combine_sums_f32() {
        let (_s, st) = store_with(&[8, 8]);
        let a: Vec<u8> = [1.5f32, 2.0].iter().flat_map(|v| v.to_ne_bytes()).collect();
        let b: Vec<u8> = [0.5f32, 3.0].iter().flat_map(|v| v.to_ne_bytes()).collect();
        st.fill(BufId(0), 0, &a);
        st.fill(BufId(1), 0, &b);
        st.combine_bytes(
            Loc::new(BufId(0), 0),
            Loc::new(BufId(1), 0),
            8,
            4,
            |acc, op| {
                let x = f32::from_ne_bytes(acc.try_into().unwrap())
                    + f32::from_ne_bytes(op.try_into().unwrap());
                acc.copy_from_slice(&x.to_ne_bytes());
            },
        );
        let out = st.read_all(BufId(0));
        let v0 = f32::from_ne_bytes(out[0..4].try_into().unwrap());
        let v1 = f32::from_ne_bytes(out[4..8].try_into().unwrap());
        assert_eq!((v0, v1), (2.0, 5.0));
    }

    #[test]
    fn combine_within_one_buffer_disjoint_ranges() {
        let (_s, st) = store_with(&[16]);
        let vals: Vec<u8> = [1.0f32, 2.0, 10.0, 20.0]
            .iter()
            .flat_map(|v| v.to_ne_bytes())
            .collect();
        st.fill(BufId(0), 0, &vals);
        st.combine_bytes(
            Loc::new(BufId(0), 0),
            Loc::new(BufId(0), 8),
            8,
            4,
            |acc, op| {
                let x = f32::from_ne_bytes(acc.try_into().unwrap())
                    + f32::from_ne_bytes(op.try_into().unwrap());
                acc.copy_from_slice(&x.to_ne_bytes());
            },
        );
        let out = st.read_all(BufId(0));
        let v0 = f32::from_ne_bytes(out[0..4].try_into().unwrap());
        let v1 = f32::from_ne_bytes(out[4..8].try_into().unwrap());
        assert_eq!((v0, v1), (11.0, 22.0));
    }
}
