//! Offline shim for `proptest` 1.x.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of proptest it uses: the [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, tuples, ranges, [`Just`], `any::<bool>()`),
//! `proptest::collection::{vec, btree_set}`, the `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!` and `proptest!` macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name) and there is **no shrinking** —
//! a failing case reports its case number and message only. That trades
//! minimal counterexamples for zero dependencies, which is the right trade
//! inside this offline workspace.

// The `Vec<Box<dyn Fn…>>` strategy arms mirror real proptest's erased
// internals; aliasing them here would only obscure the shim.
#![allow(clippy::type_complexity)]

/// Test-case driving machinery: RNG, config, failure type.
pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so every test
        /// gets a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Runner configuration (`cases` = how many random cases per test).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed assertion inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a second, dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen_fn: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        gen_fn: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen_fn)(rng)
        }
    }

    // Like upstream proptest: a Vec of strategies generates a Vec of one
    // value per element, in order.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-valued strategies (see `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from boxed generator arms.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Strategies producing collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`, sized within `size` where the
    /// element domain allows (duplicates are retried a bounded number of
    /// times, then the smaller set is returned).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut misses = 0usize;
            while out.len() < target && misses < 64 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The full-domain strategy of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            // A tuple of strategies is itself a strategy; build it once.
            let strategy = ( $( $strat, )+ );
            for case in 0..config.cases {
                let ( $( $pat, )+ ) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B(bool),
        C(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..6, 10u32..=12), f in 0.5f64..2.0) {
            prop_assert!((1..6).contains(&a));
            prop_assert!((10..=12).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..100, 3usize),
            s in crate::collection::btree_set(0u32..50, 1..=4usize),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }

        #[test]
        fn oneof_and_flat_map(
            t in prop_oneof![
                Just(Tag::A),
                any::<bool>().prop_map(Tag::B),
                (0u32..7).prop_map(Tag::C),
            ],
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n)),
        ) {
            match t {
                Tag::A | Tag::B(_) => {}
                Tag::C(x) => prop_assert!(x < 7),
            }
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn failures_carry_case_info() {
        let err = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x was"), "{msg}");
    }
}
