//! Multi-tenant traffic figure: throughput vs offered load on a shared
//! cluster. Sweeps Poisson arrival rates over an 8-node Thor cluster with
//! randomly placed jobs from the paper-default workload mix, all priced in
//! one merged simulation per level, and reports per-tenant p50/p95/p99
//! job latency, delivered throughput and Jain's fairness index
//! (`results/fig_traffic.csv`). A second emission carries the raw per-job
//! trace of the heaviest load level. Deterministic: the CSVs are
//! byte-identical for any `MHA_CAMPAIGN_WORKERS`, which CI diffs.

use mha_bench::campaign::{CampaignConfig, ScheduleCache};
use mha_bench::traffic::{offered_load_table, run_traffic_cached, TrafficSweep};
use mha_traffic::{job_trace_csv, tenant_csv, tenant_stats};

fn main() {
    mha_bench::apply_check_flag();
    let cfg = CampaignConfig::from_env();
    let sweep = TrafficSweep::thor_default();

    let table = offered_load_table(&sweep, &cfg).unwrap();
    mha_bench::emit(&table, "fig_traffic");

    // Raw artifacts for the heaviest level: the per-job trace and the
    // tenant summary the table aggregates.
    let heaviest = sweep
        .loads_hz
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let spec = sweep.spec_at(heaviest, cfg.seed);
    let cache = ScheduleCache::new(cfg.cache);
    let report = run_traffic_cached(&spec, &cache).unwrap();
    mha_bench::emit_text(&job_trace_csv(&report), "fig_traffic_jobs");
    mha_bench::emit_text(
        &tenant_csv(&tenant_stats(&report, spec.ppn)),
        "fig_traffic_tenants",
    );
}
