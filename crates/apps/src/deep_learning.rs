//! Synthetic data-parallel DL training (paper Section 5.6).
//!
//! Reproduces the Horovod synthetic benchmark's structure: every training
//! step is a fixed per-rank compute phase (forward + backward over a local
//! batch) followed by a Ring-Allreduce of the full fp32 gradient vector.
//! The paper trains ResNet-50/101/152 (25.6 / 44.7 / 60.4 M parameters)
//! with batch 16 per worker and reports images/second — MVAPICH2-X versus
//! the MHA-accelerated Allreduce (HPC-X could not be made to run with
//! Horovod, Section 5.6, so the figure has two bars; we reproduce that
//! pairing).
//!
//! As with the paper's own synthetic benchmark, images/second here
//! measures steady-state step throughput: `ranks · batch / t_step`.

use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::osu::{AppError, Contestant};

/// A neural network model, by its data-parallel footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DlModel {
    /// Display name.
    pub name: &'static str,
    /// Trainable parameters (each a 4-byte fp32 gradient).
    pub params: usize,
    /// Forward-pass cost per image in FLOPs; backward ≈ 2× forward, so a
    /// training step costs `3 × forward` per image.
    pub forward_flops_per_image: f64,
}

/// ResNet-50: 25.6 M parameters (Section 5.6).
pub const RESNET50: DlModel = DlModel {
    name: "ResNet-50",
    params: 25_600_000,
    forward_flops_per_image: 3.9e9,
};

/// ResNet-101: 44.7 M parameters.
pub const RESNET101: DlModel = DlModel {
    name: "ResNet-101",
    params: 44_700_000,
    forward_flops_per_image: 7.6e9,
};

/// ResNet-152: 60.4 M parameters.
pub const RESNET152: DlModel = DlModel {
    name: "ResNet-152",
    params: 60_400_000,
    forward_flops_per_image: 11.3e9,
};

/// One training-benchmark point.
#[derive(Debug, Clone, Copy)]
pub struct DlConfig {
    /// Process layout (one worker per rank).
    pub grid: ProcGrid,
    /// Model being trained.
    pub model: DlModel,
    /// Per-worker batch size (the paper uses 16 — the largest that fits).
    pub batch: usize,
}

/// Outcome of one step.
#[derive(Debug, Clone, Copy)]
pub struct DlResult {
    /// Aggregate images/second (the Figure 17 metric).
    pub images_per_sec: f64,
    /// Seconds per step.
    pub step_time_s: f64,
    /// Gradient Allreduce time (µs).
    pub comm_us: f64,
    /// Compute time (µs).
    pub compute_us: f64,
}

/// Simulates one synchronous training step.
pub fn run_training_step(
    cfg: DlConfig,
    contestant: Contestant,
    spec: &ClusterSpec,
) -> Result<DlResult, AppError> {
    let r = cfg.grid.nranks() as usize;
    // Pad gradients to divide evenly (Horovod's fusion buffer does the
    // same rounding).
    let elems = cfg.model.params.div_ceil(r) * r;
    let comm_us = contestant.allreduce_latency_us(cfg.grid, elems, spec)?;
    let compute_us =
        3.0 * cfg.model.forward_flops_per_image * cfg.batch as f64 / spec.flops_rate * 1e6;
    let step_time_s = (comm_us + compute_us) * 1e-6;
    Ok(DlResult {
        images_per_sec: (r * cfg.batch) as f64 / step_time_s,
        step_time_s,
        comm_us,
        compute_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_collectives::Library;

    #[test]
    fn model_sizes_match_section_5_6() {
        assert_eq!(RESNET50.params, 25_600_000);
        assert_eq!(RESNET101.params, 44_700_000);
        assert_eq!(RESNET152.params, 60_400_000);
    }

    #[test]
    fn mha_improves_images_per_second() {
        // The Figure 17 qualitative claim at a reduced scale.
        let spec = ClusterSpec::thor();
        let cfg = DlConfig {
            grid: ProcGrid::new(4, 8),
            model: RESNET50,
            batch: 16,
        };
        let mva = run_training_step(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
        let mha = run_training_step(cfg, Contestant::MhaTuned, &spec).unwrap();
        assert!(
            mha.images_per_sec > mva.images_per_sec,
            "mha {} vs mvapich {}",
            mha.images_per_sec,
            mva.images_per_sec
        );
        // The gain is a modest single-digit-to-low-teens percentage — the
        // step is compute-dominated, as in the paper.
        let gain = mha.images_per_sec / mva.images_per_sec - 1.0;
        assert!(gain < 0.3, "gain suspiciously large: {gain}");
        assert!(mha.compute_us > mha.comm_us);
    }

    #[test]
    fn bigger_models_train_slower_but_keep_the_benefit() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(4, 8);
        let mut prev_ips = f64::INFINITY;
        for model in [RESNET50, RESNET101, RESNET152] {
            let cfg = DlConfig {
                grid,
                model,
                batch: 16,
            };
            let mva =
                run_training_step(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
            let mha = run_training_step(cfg, Contestant::MhaTuned, &spec).unwrap();
            assert!(mha.images_per_sec >= mva.images_per_sec);
            assert!(mva.images_per_sec < prev_ips);
            prev_ips = mva.images_per_sec;
        }
    }

    #[test]
    fn throughput_scales_with_workers() {
        let spec = ClusterSpec::thor();
        let small = run_training_step(
            DlConfig {
                grid: ProcGrid::new(2, 8),
                model: RESNET50,
                batch: 16,
            },
            Contestant::MhaTuned,
            &spec,
        )
        .unwrap();
        let large = run_training_step(
            DlConfig {
                grid: ProcGrid::new(4, 8),
                model: RESNET50,
                batch: 16,
            },
            Contestant::MhaTuned,
            &spec,
        )
        .unwrap();
        assert!(large.images_per_sec > 1.5 * small.images_per_sec);
    }
}
