//! The paper's multi-HCA aware Allgather designs (Section 3).
//!
//! The 3-level NUMA-aware variant — the paper's stated future work: *"We
//! can have a 3-level design with the overlapping of intra-socket,
//! inter-socket, and inter-node communication"* (Section 7) — lives here
//! as [`build_mha_numa3`], a thin wrapper instantiating the generic
//! composer on the (node × socket × rank) topology tree with the
//! `[Exchange, Import, Gather]` plan (see [`crate::ComposePlan::numa3`]).

mod inter;
mod intra;
mod offload;

pub(crate) use inter::emit_mha_inter;
pub use inter::{build_mha_inter, build_mha_inter_degraded, InterAlgo, MhaInterConfig};
pub use intra::build_mha_intra;
pub use offload::{optimal_offload, resolve_offload, tune_offload, Offload, OffloadSweep};

use mha_sched::{ProcGrid, Topology};
use mha_simnet::ClusterSpec;

use crate::compose::{emit_plan, ComposePlan};
use crate::ctx::{BuildError, Built, Ctx};

/// Configuration of the 3-level design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Numa3Config {
    /// Import other-socket regions via NIC loopback (true — the
    /// multi-HCA-aware choice) or over the inter-socket link (false).
    pub offload_xsocket: bool,
}

impl Default for Numa3Config {
    fn default() -> Self {
        Numa3Config {
            offload_xsocket: true,
        }
    }
}

/// Builds the 3-level NUMA-aware Allgather: intra-socket Direct Spread,
/// one inter-socket import per region (across the interconnect once, or
/// offloaded to the HCAs), and the overlapped inter-node Ring exchange
/// distributing through per-socket shm segments homed on their sockets.
///
/// # Errors
///
/// [`BuildError::BadParameter`] unless the cluster spec carries a NUMA
/// layout and the socket count divides the processes per node.
pub fn build_mha_numa3(
    grid: ProcGrid,
    msg: usize,
    cfg: Numa3Config,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let Some(numa) = spec.numa.as_ref() else {
        return Err(BuildError::BadParameter(
            "the 3-level design needs a cluster spec with NUMA modeling (ClusterSpec::thor_numa)"
                .into(),
        ));
    };
    let l = grid.ppn();
    let s = numa.sockets;
    if !l.is_multiple_of(s) {
        return Err(BuildError::BadParameter(format!(
            "{s} sockets do not divide {l} processes per node"
        )));
    }
    let mut ctx = Ctx::new(grid, msg, "mha-numa3");
    let topo = Topology::three_level(grid.nodes(), s, l / s);
    emit_plan(
        &mut ctx,
        &topo,
        &ComposePlan::numa3(cfg.offload_xsocket),
        Some(spec),
        None,
    )?;
    Ok(ctx.finish())
}

#[cfg(test)]
mod numa3_tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_simnet::Simulator;

    fn numa_spec() -> ClusterSpec {
        ClusterSpec::thor_numa()
    }

    #[test]
    fn numa3_is_correct() {
        for (nodes, ppn) in [(1u32, 4u32), (1, 8), (2, 4), (3, 4), (4, 8), (2, 2)] {
            let built = build_mha_numa3(
                ProcGrid::new(nodes, ppn),
                24,
                Numa3Config::default(),
                &numa_spec(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn numa3_without_offload_is_also_correct() {
        let built = build_mha_numa3(
            ProcGrid::new(2, 8),
            16,
            Numa3Config {
                offload_xsocket: false,
            },
            &numa_spec(),
        )
        .unwrap();
        assert_allgather_correct(&built);
    }

    #[test]
    fn numa3_requires_numa_spec_and_divisible_ppn() {
        assert!(matches!(
            build_mha_numa3(
                ProcGrid::new(2, 4),
                8,
                Numa3Config::default(),
                &ClusterSpec::thor()
            ),
            Err(BuildError::BadParameter(_))
        ));
        assert!(matches!(
            build_mha_numa3(ProcGrid::new(2, 5), 8, Numa3Config::default(), &numa_spec()),
            Err(BuildError::BadParameter(_))
        ));
    }

    #[test]
    fn numa3_beats_numa_blind_mha_inter_on_numa_hardware() {
        // The point of the future-work design: on a NUMA node, the 2-level
        // design's phase 1 bounces half its CMA fetches across the
        // interconnect; the 3-level design crosses it once per region.
        let spec = numa_spec();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(2, 16);
        let msg = 512 * 1024;
        let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
        let t_blind = sim.run(&blind.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();
        assert!(
            t_aware < t_blind,
            "numa3 {t_aware} should beat numa-blind {t_blind}"
        );
    }

    #[test]
    fn numa3_matches_2level_when_interconnect_is_free() {
        // With an (unphysically) fast interconnect the two designs price
        // similarly — the gap really is the cross-socket path.
        let mut spec = numa_spec();
        if let Some(numa) = spec.numa.as_mut() {
            numa.xsocket_bw = 1e12;
            numa.xsocket_alpha = 0.0;
        }
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(2, 8);
        let msg = 256 * 1024;
        let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
        let t_blind = sim.run(&blind.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();
        let ratio = t_aware / t_blind;
        assert!(ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn single_node_numa3_works_as_socket_hierarchy() {
        let spec = numa_spec();
        let sim = Simulator::new(spec.clone()).unwrap();
        let built = build_mha_numa3(
            ProcGrid::new(1, 16),
            64 * 1024,
            Numa3Config::default(),
            &spec,
        )
        .unwrap();
        assert_allgather_correct(&built);
        assert!(sim.run(&built.sched).unwrap().makespan > 0.0);
    }
}
